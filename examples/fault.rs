//! Seeded fault-injection audit of the conformance oracle.
//!
//! Compiles the standard corpus on the fixed audio core, injects one
//! seeded fault per `(seed, app, kind)` cell — microcode bit-flips,
//! ROM corruption, schedule cycle swaps, register redirects — and
//! demands that every mutant is either *detected* by the differential
//! oracle or *proven benign* by a static witness. A silent survivor is
//! a hole in the fleet and exits non-zero with a reproduction command.
//!
//! `--paranoid` additionally re-runs the differential on every benign
//! verdict, so a refuted witness also fails the audit.
//!
//! ```text
//! cargo run --release --example fault -- [--seeds N] [--start S]
//!     [--apps fir8,biquad3,sop6,addtree8,audio]
//!     [--kinds bitflip,romcorrupt,cycleswap,regredirect]
//!     [--frames F] [--threads T] [--paranoid]
//! ```

use dspcc::conform::standard_corpus;
use dspcc::fault::{FaultAudit, MutationKind};

fn main() {
    let mut seeds = 32u64;
    let mut start = 0u64;
    let mut frames = 12u32;
    let mut threads = 0usize;
    let mut paranoid = false;
    let mut apps: Option<Vec<String>> = None;
    let mut kinds: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds").parse().expect("--seeds: integer"),
            "--start" => start = value("--start").parse().expect("--start: integer"),
            "--frames" => frames = value("--frames").parse().expect("--frames: integer"),
            "--threads" => threads = value("--threads").parse().expect("--threads: integer"),
            "--paranoid" => paranoid = true,
            "--apps" => {
                apps = Some(value("--apps").split(',').map(str::to_owned).collect());
            }
            "--kinds" => {
                kinds = Some(value("--kinds").split(',').map(str::to_owned).collect());
            }
            other => panic!("unknown argument `{other}` (see the example's docs)"),
        }
    }

    let mut audit = FaultAudit::new()
        .seed_range(start..start + seeds)
        .frames(frames)
        .threads(threads)
        .paranoid(paranoid);
    let corpus = standard_corpus();
    match &apps {
        None => audit = audit.standard_corpus(),
        Some(names) => {
            for name in names {
                let (n, src) = corpus
                    .iter()
                    .find(|(n, _)| n == name)
                    .unwrap_or_else(|| panic!("unknown app `{name}` (corpus: {corpus:?})"));
                audit = audit.app(n.clone(), src.clone());
            }
        }
    }
    if let Some(names) = &kinds {
        let parsed: Vec<MutationKind> = names
            .iter()
            .map(|name| {
                MutationKind::ALL
                    .iter()
                    .copied()
                    .find(|k| k.name() == name)
                    .unwrap_or_else(|| panic!("unknown kind `{name}` (see --help text)"))
            })
            .collect();
        audit = audit.kinds(parsed);
    }

    let report = audit.run();
    println!("{report}");
    let survivors: Vec<_> = report.survived().collect();
    if !survivors.is_empty() {
        eprintln!("\nfault audit FAILED — reproduce with:");
        for cell in &survivors {
            eprintln!(
                "  cargo run --release --example fault -- --start {} --seeds 1 --apps {} \
                 --kinds {} --frames {frames}{}",
                cell.seed,
                cell.app,
                cell.kind.name(),
                if paranoid { " --paranoid" } else { "" }
            );
        }
        std::process::exit(1);
    }
}
