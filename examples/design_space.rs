//! Design-space exploration quickstart — the paper's iteration cycle
//! (figure 1) as one API call.
//!
//! Declare a grid of pipeline variants and run them in parallel through
//! one shared [`dspcc::CompileSession`]:
//!
//! ```no_run
//! use dspcc::{apps, cores, DesignSpace};
//! use dspcc::sched::list::Priority;
//!
//! let table = DesignSpace::new(apps::sum_of_products(4))
//!     .core(cores::audio_core())          // sweep ≥ 1 cores ...
//!     .core(cores::tiny_core())
//!     .budgets([None, Some(16), Some(32)]) // ... × cycle budgets ...
//!     .priorities([Priority::Slack, Priority::SinkAlap]) // ... × priorities
//!     .run();                              // parallel, deterministic
//! println!("{table}");                     // feasibility/cycles/bound table
//! if let Some(best) = table.best() {
//!     println!("best: {} @ {:?}", best.core, best.outcome);
//! }
//! ```
//!
//! Every variant that shares a (core, cse) prefix reuses the session's
//! cached lowering, classification, dependence graph, and conflict
//! matrix — the summary line's shared-artifact count shows it. Rows are
//! emitted in grid-nesting order (cores → budgets → covers → priorities
//! → cse), so the output is byte-stable across runs and thread counts;
//! infeasible variants print their stage error as the paper's
//! feasibility feedback.

use std::time::Instant;

use dspcc::isa::CoverStrategy;
use dspcc::sched::list::Priority;
use dspcc::{apps, cores, DesignSpace};

fn main() {
    // One application, two cores (the figure-8 audio core and the tiny
    // teaching core), and a schedule-level grid: the classic "which core
    // and what budget do I actually need?" sweep.
    let source = apps::sum_of_products(4);
    let space = DesignSpace::new(source)
        .core(cores::audio_core())
        .core(cores::tiny_core())
        .budgets([None, Some(16), Some(32)])
        .covers([CoverStrategy::GreedyMaximal, CoverStrategy::PerEdge])
        .priorities([Priority::Slack, Priority::SinkAlap]);

    let t = Instant::now();
    let table = space.run();
    let elapsed = t.elapsed();

    println!("{table}");
    println!();
    match table.best() {
        Some(best) => {
            let metrics = best.outcome.as_ref().expect("best row is feasible");
            println!(
                "best variant: {} (budget {:?}, {} cover, {} priority) — {} cycles (bound {})",
                best.core,
                best.budget,
                best.cover.map(|c| c.to_string()).unwrap_or_default(),
                best.priority,
                metrics.cycles,
                metrics.bound
            );
        }
        None => println!("no feasible variant — iterate on the source (section 4)"),
    }
    println!("swept {} variants in {elapsed:.2?}", table.rows.len());
}
