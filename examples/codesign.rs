//! HW/SW co-design Pareto sweep over generated cores.
//!
//! Sweeps a seed block of generated cores — plus adjacent-seed unions
//! and intra-core merge moves — over an application corpus, scoring each
//! feasible point on (total corpus cycles, hardware cost) and printing
//! the Pareto frontier. Every feasible point (and therefore every
//! frontier point) is verified bit-exact against the
//! `dspcc_dfg::Interpreter` golden model; a `MISMATCH` point is a
//! compiler bug by construction and exits the process non-zero, as does
//! an empty frontier (the sweep found nothing it could verify).
//!
//! ```text
//! cargo run --release --example codesign -- [--seeds N] [--start S]
//!     [--apps fir8,biquad3,sop6,addtree8,audio] [--frames F]
//!     [--threads T] [--budget CYCLES] [--no-unions] [--no-merge-moves]
//! ```

use dspcc::codesign::Codesign;
use dspcc::conform::standard_corpus;

fn main() {
    let mut seeds = 8u64;
    let mut start = 0u64;
    let mut frames = 6u32;
    let mut threads = 0usize;
    let mut budget: Option<u32> = None;
    let mut apps: Option<Vec<String>> = None;
    let mut unions = true;
    let mut merge_moves = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds").parse().expect("--seeds: integer"),
            "--start" => start = value("--start").parse().expect("--start: integer"),
            "--frames" => frames = value("--frames").parse().expect("--frames: integer"),
            "--threads" => threads = value("--threads").parse().expect("--threads: integer"),
            "--budget" => budget = Some(value("--budget").parse().expect("--budget: integer")),
            "--apps" => {
                apps = Some(value("--apps").split(',').map(str::to_owned).collect());
            }
            "--no-unions" => unions = false,
            "--no-merge-moves" => merge_moves = false,
            other => panic!("unknown argument `{other}` (see the example's docs)"),
        }
    }

    let mut sweep = Codesign::new()
        .seed_range(start..start + seeds)
        .merge_moves(merge_moves)
        .frames(frames)
        .threads(threads);
    if unions {
        sweep = sweep.union_adjacent();
    }
    if let Some(b) = budget {
        sweep = sweep.budgets([None, Some(b)]);
    }
    let corpus = standard_corpus();
    let names = apps.unwrap_or_else(|| vec!["fir8".to_owned(), "sop6".to_owned()]);
    for name in &names {
        let (n, src) = corpus
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown app `{name}` (corpus: {corpus:?})"));
        sweep = sweep.app(n.clone(), src.clone());
    }

    let report = sweep.run();
    println!("{report}");
    let mismatches = report.mismatches().count();
    if mismatches > 0 {
        eprintln!(
            "\nco-design sweep FAILED: {mismatches} mismatch point(s) — each is a compiler bug"
        );
        std::process::exit(1);
    }
    if report.frontier.is_empty() {
        eprintln!("\nco-design sweep FAILED: empty frontier — no point verified bit-exact");
        std::process::exit(1);
    }
}
