//! Cross-core differential conformance sweep.
//!
//! Compiles the standard application corpus on a block of generated cores
//! and pins the simulated microcode bit-exact against the
//! `dspcc_dfg::Interpreter` golden model. Any `MISMATCH` cell is a
//! compiler bug by construction; the process exits non-zero and prints
//! the offending `(seed, app)` pair for reproduction.
//!
//! Cells that pass *degraded* — bit-exact, but served by a fuel-truncated
//! scheduling search (`ok*` in the table) — are counted separately so a
//! tightly-fueled sweep cannot masquerade as a full-quality one.
//!
//! ```text
//! cargo run --release --example conform -- [--seeds N] [--start S]
//!     [--apps fir8,biquad3,sop6,addtree8,audio] [--frames F] [--threads T]
//!     [--fuel UNITS]
//! ```

use dspcc::conform::{standard_corpus, ConformFleet};
use dspcc::CompileOptions;

fn main() {
    let mut seeds = 64u64;
    let mut start = 0u64;
    let mut frames = 8u32;
    let mut threads = 0usize;
    let mut fuel: Option<u64> = None;
    let mut apps: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds").parse().expect("--seeds: integer"),
            "--start" => start = value("--start").parse().expect("--start: integer"),
            "--frames" => frames = value("--frames").parse().expect("--frames: integer"),
            "--threads" => threads = value("--threads").parse().expect("--threads: integer"),
            "--fuel" => fuel = Some(value("--fuel").parse().expect("--fuel: integer")),
            "--apps" => {
                apps = Some(value("--apps").split(',').map(str::to_owned).collect());
            }
            other => panic!("unknown argument `{other}` (see the example's docs)"),
        }
    }

    let mut fleet = ConformFleet::new()
        .seed_range(start..start + seeds)
        .frames(frames)
        .threads(threads);
    if let Some(units) = fuel {
        fleet = fleet.options(CompileOptions {
            fuel: Some(units),
            ..CompileOptions::default()
        });
    }
    let corpus = standard_corpus();
    match &apps {
        None => fleet = fleet.standard_corpus(),
        Some(names) => {
            for name in names {
                let (n, src) = corpus
                    .iter()
                    .find(|(n, _)| n == name)
                    .unwrap_or_else(|| panic!("unknown app `{name}` (corpus: {corpus:?})"));
                fleet = fleet.app(n.clone(), src.clone());
            }
        }
    }

    let report = fleet.run();
    println!("{report}");
    let degraded = report.degraded_passes().count();
    if degraded > 0 {
        eprintln!(
            "\nnote: {degraded} cell(s) passed degraded (`ok*`): bit-exact, but the \
             scheduling search was fuel-truncated — rerun with more --fuel for \
             full-quality schedules"
        );
    }
    let mismatches: Vec<_> = report.mismatches().collect();
    if !mismatches.is_empty() {
        eprintln!("\nconformance FAILED — reproduce with:");
        for cell in &mismatches {
            eprintln!(
                "  cargo run --release --example conform -- --start {} --seeds 1 --apps {} --frames {frames}",
                cell.seed, cell.app
            );
        }
        std::process::exit(1);
    }
}
