//! Cross-core differential conformance sweep.
//!
//! Compiles the standard application corpus on a block of generated cores
//! and pins the simulated microcode bit-exact against the
//! `dspcc_dfg::Interpreter` golden model. Any `MISMATCH` cell is a
//! compiler bug by construction; the process exits non-zero and prints
//! the offending `(seed, app)` pair for reproduction.
//!
//! Cells that pass *degraded* — bit-exact, but served by a fuel-truncated
//! scheduling search (`ok*` in the table) — are counted separately so a
//! tightly-fueled sweep cannot masquerade as a full-quality one.
//!
//! Merged-core cells (`--merge-pairs a+b,c+d`) run the corpus on the
//! structural union of two generated cores with a re-derived instruction
//! set — the co-design search's cross-core move, differentially verified.
//! When `--merge-pairs` is given and `--seeds` is not, the sweep runs the
//! pairs alone.
//!
//! ```text
//! cargo run --release --example conform -- [--seeds N] [--start S]
//!     [--merge-pairs A+B,C+D] [--apps fir8,biquad3,sop6,addtree8,audio]
//!     [--frames F] [--threads T] [--fuel UNITS]
//! ```

use dspcc::conform::{standard_corpus, ConformFleet};
use dspcc::CompileOptions;

fn main() {
    let mut seeds: Option<u64> = None;
    let mut start = 0u64;
    let mut frames = 8u32;
    let mut threads = 0usize;
    let mut fuel: Option<u64> = None;
    let mut apps: Option<Vec<String>> = None;
    let mut merge_pairs: Vec<(u64, u64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => seeds = Some(value("--seeds").parse().expect("--seeds: integer")),
            "--start" => start = value("--start").parse().expect("--start: integer"),
            "--merge-pairs" => {
                for pair in value("--merge-pairs").split(',') {
                    let (a, b) = pair
                        .split_once('+')
                        .unwrap_or_else(|| panic!("--merge-pairs: `{pair}` is not `a+b`"));
                    merge_pairs.push((
                        a.parse().expect("--merge-pairs: integer seed"),
                        b.parse().expect("--merge-pairs: integer seed"),
                    ));
                }
            }
            "--frames" => frames = value("--frames").parse().expect("--frames: integer"),
            "--threads" => threads = value("--threads").parse().expect("--threads: integer"),
            "--fuel" => fuel = Some(value("--fuel").parse().expect("--fuel: integer")),
            "--apps" => {
                apps = Some(value("--apps").split(',').map(str::to_owned).collect());
            }
            other => panic!("unknown argument `{other}` (see the example's docs)"),
        }
    }

    // With only --merge-pairs given, run the pairs alone; otherwise the
    // single-seed block (default 64 seeds) plus any pairs.
    let seeds = seeds.unwrap_or(if merge_pairs.is_empty() { 64 } else { 0 });
    let mut fleet = ConformFleet::new()
        .seed_range(start..start + seeds)
        .merged_pairs(merge_pairs)
        .frames(frames)
        .threads(threads);
    if let Some(units) = fuel {
        fleet = fleet.options(CompileOptions {
            fuel: Some(units),
            ..CompileOptions::default()
        });
    }
    let corpus = standard_corpus();
    match &apps {
        None => fleet = fleet.standard_corpus(),
        Some(names) => {
            for name in names {
                let (n, src) = corpus
                    .iter()
                    .find(|(n, _)| n == name)
                    .unwrap_or_else(|| panic!("unknown app `{name}` (corpus: {corpus:?})"));
                fleet = fleet.app(n.clone(), src.clone());
            }
        }
    }

    let report = fleet.run();
    println!("{report}");
    let degraded = report.degraded_passes().count();
    if degraded > 0 {
        eprintln!(
            "\nnote: {degraded} cell(s) passed degraded (`ok*`): bit-exact, but the \
             scheduling search was fuel-truncated — rerun with more --fuel for \
             full-quality schedules"
        );
    }
    let mismatches: Vec<_> = report.mismatches().collect();
    if !mismatches.is_empty() {
        eprintln!("\nconformance FAILED — reproduce with:");
        for cell in &mismatches {
            match cell.merged_with {
                None => eprintln!(
                    "  cargo run --release --example conform -- --start {} --seeds 1 --apps {} --frames {frames}",
                    cell.seed, cell.app
                ),
                Some(b) => eprintln!(
                    "  cargo run --release --example conform -- --merge-pairs {}+{b} --apps {} --frames {frames}",
                    cell.seed, cell.app
                ),
            }
        }
        std::process::exit(1);
    }
}
