//! Per-stage timing for the audio-application compile.
//!
//! Prints the [`dspcc::CompileStats`] profile (parse / sema / lower /
//! modify / deps / matrix / schedule / regalloc / encode) alongside the
//! end-to-end wall time, a warm-session reuse demonstration (the
//! `cache_hits` counter), then a few substrate micro-timings. Run in
//! CI's bench-smoke job so the stats path is exercised on every push.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dspcc::dfg::{parse, Dfg};
use dspcc::rtgen::{lower, LowerOptions};
use dspcc::sched::bounds::length_lower_bound;
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::ConflictMatrix;
use dspcc::{apps, cores, CompileOptions, CompileSession, CompileStats, Compiler};

fn main() {
    let core = cores::audio_core();
    let src = apps::audio_application();
    for restarts in [1u32, 2, 6] {
        let n = 5u32;
        let mut acc = CompileStats::default();
        let t = Instant::now();
        for _ in 0..n {
            let compiled = Compiler::new(&core)
                .restarts(restarts)
                .compile(&src)
                .unwrap();
            let s = compiled.stats;
            acc.parse += s.parse;
            acc.sema += s.sema;
            acc.lower += s.lower;
            acc.modify += s.modify;
            acc.deps += s.deps;
            acc.matrix += s.matrix;
            acc.schedule += s.schedule;
            acc.regalloc += s.regalloc;
            acc.encode += s.encode;
        }
        let wall = t.elapsed() / n;
        println!("compile restarts={restarts}: {wall:?}/iter");
        let per = |d: Duration| d / n;
        println!(
            "  stages: parse {:?} | sema {:?} | lower {:?} | modify {:?} | deps {:?} | \
             matrix {:?} | schedule {:?} | regalloc {:?} | encode {:?}",
            per(acc.parse),
            per(acc.sema),
            per(acc.lower),
            per(acc.modify),
            per(acc.deps),
            per(acc.matrix),
            per(acc.schedule),
            per(acc.regalloc),
            per(acc.encode),
        );
    }

    // Warm-session reuse: the design-iteration loop re-schedules under
    // shrinking budgets; everything up to the conflict matrix is served
    // from the session's artifact cache (cache_hits = 4 per re-compile).
    let session = CompileSession::new();
    let shared_core = Arc::new(core.clone());
    let cold_opts = CompileOptions {
        restarts: 1,
        ..CompileOptions::default()
    };
    let t = Instant::now();
    let cold = session.compile(&shared_core, &src, &cold_opts).unwrap();
    println!(
        "session cold : {:?} (cache hits {})",
        t.elapsed(),
        cold.stats.cache_hits
    );
    for budget in [cold.cycles() + 16, cold.cycles() + 8, cold.cycles()] {
        let opts = CompileOptions {
            budget: Some(budget),
            restarts: 1,
            ..CompileOptions::default()
        };
        let t = Instant::now();
        let warm = session.compile(&shared_core, &src, &opts).unwrap();
        println!(
            "session warm : {:?} re-schedule at budget {budget} (cache hits {})",
            t.elapsed(),
            warm.stats.cache_hits,
        );
    }
    let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
    let n = 20;
    let t = Instant::now();
    for _ in 0..n {
        let _ = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    }
    println!("lower: {:?}/iter", t.elapsed() / n);
    let compiled = Compiler::new(&core).restarts(1).compile(&src).unwrap();
    let prog = &compiled.lowering.program;
    let deps = DependenceGraph::build_with_edges(prog, &compiled.lowering.sequence_edges).unwrap();
    println!("rts: {}", prog.rt_count());
    let t = Instant::now();
    for _ in 0..n {
        let _ = ConflictMatrix::build(prog);
    }
    println!("matrix: {:?}/iter", t.elapsed() / n);
    let matrix = ConflictMatrix::build(prog);
    let t = Instant::now();
    for _ in 0..n {
        let _ = length_lower_bound(prog, &deps, &matrix);
    }
    println!(
        "bound: {:?}/iter  (bound={}, sched len={})",
        t.elapsed() / n,
        length_lower_bound(prog, &deps, &matrix),
        compiled.schedule.length()
    );
}
