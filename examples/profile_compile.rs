//! Ad-hoc stage timing for the audio-application compile (dev aid).
use std::time::Instant;

use dspcc::dfg::{parse, Dfg};
use dspcc::rtgen::{lower, LowerOptions};
use dspcc::sched::bounds::length_lower_bound;
use dspcc::sched::compact::schedule_and_compact_threaded;
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::ConflictMatrix;
use dspcc::{apps, cores, Compiler};

fn main() {
    let core = cores::audio_core();
    let src = apps::audio_application();
    for restarts in [1u32, 2] {
        let t = Instant::now();
        let n = 5;
        for _ in 0..n {
            Compiler::new(&core)
                .restarts(restarts)
                .compile(&src)
                .unwrap();
        }
        println!("compile restarts={restarts}: {:?}/iter", t.elapsed() / n);
    }
    let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
    let n = 20;
    let t = Instant::now();
    for _ in 0..n {
        let _ = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    }
    println!("lower: {:?}/iter", t.elapsed() / n);
    let compiled = Compiler::new(&core).restarts(1).compile(&src).unwrap();
    let prog = &compiled.lowering.program;
    let deps = DependenceGraph::build_with_edges(prog, &compiled.lowering.sequence_edges).unwrap();
    println!("rts: {}", prog.rt_count());
    let t = Instant::now();
    for _ in 0..n {
        let _ = ConflictMatrix::build(prog);
    }
    println!("matrix: {:?}/iter", t.elapsed() / n);
    let matrix = ConflictMatrix::build(prog);
    let t = Instant::now();
    for _ in 0..n {
        let _ = length_lower_bound(prog, &deps, &matrix);
    }
    println!(
        "bound: {:?}/iter  (bound={}, sched len={})",
        t.elapsed() / n,
        length_lower_bound(prog, &deps, &matrix),
        compiled.schedule.length()
    );
    for threads in [1usize, 4, 8] {
        let t = Instant::now();
        for _ in 0..n {
            let _ = schedule_and_compact_threaded(prog, &deps, None, 1, threads).unwrap();
        }
        println!(
            "sched_and_compact threads={threads}: {:?}/iter",
            t.elapsed() / n
        );
    }
}
