//! Per-stage timing for the audio-application compile.
//!
//! Prints the [`dspcc::CompileStats`] profile (lower / modify / deps /
//! matrix / schedule / regalloc / encode) alongside the end-to-end wall
//! time, then a few substrate micro-timings. Run in CI's bench-smoke job
//! so the stats path is exercised on every push.

use std::time::{Duration, Instant};

use dspcc::dfg::{parse, Dfg};
use dspcc::rtgen::{lower, LowerOptions};
use dspcc::sched::bounds::length_lower_bound;
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::ConflictMatrix;
use dspcc::{apps, cores, CompileStats, Compiler};

fn main() {
    let core = cores::audio_core();
    let src = apps::audio_application();
    for restarts in [1u32, 2, 6] {
        let n = 5u32;
        let mut acc = CompileStats::default();
        let t = Instant::now();
        for _ in 0..n {
            let compiled = Compiler::new(&core)
                .restarts(restarts)
                .compile(&src)
                .unwrap();
            let s = compiled.stats;
            acc.lower += s.lower;
            acc.modify += s.modify;
            acc.deps += s.deps;
            acc.matrix += s.matrix;
            acc.schedule += s.schedule;
            acc.regalloc += s.regalloc;
            acc.encode += s.encode;
        }
        let wall = t.elapsed() / n;
        println!("compile restarts={restarts}: {wall:?}/iter");
        let per = |d: Duration| d / n;
        println!(
            "  stages: lower {:?} | modify {:?} | deps {:?} | matrix {:?} | schedule {:?} | \
             regalloc {:?} | encode {:?}",
            per(acc.lower),
            per(acc.modify),
            per(acc.deps),
            per(acc.matrix),
            per(acc.schedule),
            per(acc.regalloc),
            per(acc.encode),
        );
    }
    let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
    let n = 20;
    let t = Instant::now();
    for _ in 0..n {
        let _ = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    }
    println!("lower: {:?}/iter", t.elapsed() / n);
    let compiled = Compiler::new(&core).restarts(1).compile(&src).unwrap();
    let prog = &compiled.lowering.program;
    let deps = DependenceGraph::build_with_edges(prog, &compiled.lowering.sequence_edges).unwrap();
    println!("rts: {}", prog.rt_count());
    let t = Instant::now();
    for _ in 0..n {
        let _ = ConflictMatrix::build(prog);
    }
    println!("matrix: {:?}/iter", t.elapsed() / n);
    let matrix = ConflictMatrix::build(prog);
    let t = Instant::now();
    for _ in 0..n {
        let _ = length_lower_bound(prog, &deps, &matrix);
    }
    println!(
        "bound: {:?}/iter  (bound={}, sched len={})",
        t.elapsed() / n,
        length_lower_bound(prog, &deps, &matrix),
        compiled.schedule.length()
    );
}
