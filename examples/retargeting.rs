//! Retargetability (the point of the whole exercise): the same source
//! compiled onto three different cores, with the efficiency/flexibility
//! trade-offs visible in cycles and instruction-word width.
//!
//! ```sh
//! cargo run --example retargeting
//! ```

use dspcc::arch::merge::MergePlan;
use dspcc::dfg::{parse, Dfg, Interpreter};
use dspcc::rtgen::{apply_merge_plan, lower, LowerOptions};
use dspcc::sched::compact::schedule_and_compact;
use dspcc::sched::deps::DependenceGraph;
use dspcc::{apps, cores, Compiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = apps::sum_of_products(8);
    println!("one source ({} chars), three targets:\n", source.len());

    // Target 1: the tiny general core.
    let tiny = cores::tiny_core();
    let on_tiny = Compiler::new(&tiny).compile(&source)?;
    println!(
        "{:<26} {:>7} cycles  {:>4}-bit words  {:>6} ROM bits",
        "tiny core",
        on_tiny.cycles(),
        on_tiny.microcode.layout.width(),
        on_tiny.microcode.rom_bits()
    );

    // Target 2: the audio core (more units, wider words).
    let audio = cores::audio_core();
    let on_audio = Compiler::new(&audio).compile(&source)?;
    println!(
        "{:<26} {:>7} cycles  {:>4}-bit words  {:>6} ROM bits",
        "audio core",
        on_audio.cycles(),
        on_audio.microcode.layout.width(),
        on_audio.microcode.rom_bits()
    );

    // Both targets compute the same function.
    let mut sim_tiny = on_tiny.simulator()?;
    let mut sim_audio = on_audio.simulator()?;
    let mut reference = Interpreter::new(&on_tiny.dfg, tiny.format);
    for x in [500i64, -1500, 20000] {
        let a = sim_tiny.step_frame(&[x])?;
        let b = sim_audio.step_frame(&[x])?;
        let c = reference.step(&[x]);
        assert_eq!(a, c);
        assert_eq!(b, c);
    }
    println!("\nboth cores produce bit-identical outputs.\n");

    // Target 3: the intermediate two-ALU architecture, before and after
    // merging its result buses (the architecture-modification dial).
    let intermediate = cores::unmerged_intermediate();
    let tree = apps::add_tree(10);
    let dfg = Dfg::build(&parse(&tree)?)?;
    let unmerged = lower(&dfg, &intermediate.datapath, &LowerOptions::default())?;
    let deps = DependenceGraph::build_with_edges(&unmerged.program, &unmerged.sequence_edges)?;
    let fast = schedule_and_compact(&unmerged.program, &deps, None, 4)?;

    let mut merged = lower(&dfg, &intermediate.datapath, &LowerOptions::default())?;
    let mut plan = MergePlan::new();
    plan.merge_buses(&["bus_alu_1", "bus_alu_2"], "bus_alu");
    apply_merge_plan(&mut merged, &intermediate.datapath, &plan)?;
    let deps2 = DependenceGraph::build_with_edges(&merged.program, &merged.sequence_edges)?;
    let slow = schedule_and_compact(&merged.program, &deps2, None, 4)?;

    println!("architecture modification on the 2-ALU intermediate core (add tree):");
    println!("  dedicated buses : {:>3} cycles", fast.length());
    println!(
        "  merged bus      : {:>3} cycles (cheaper silicon, less parallelism)",
        slow.length()
    );
    Ok(())
}
