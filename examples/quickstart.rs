//! Quickstart: define a core, compile a filter, inspect the schedule, run
//! the generated microcode on the cycle-accurate simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dspcc::dfg::Interpreter;
use dspcc::{cores, Compiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small in-house core: IPB → MULT/ALU → OPB (no delay lines).
    let core = cores::tiny_core();

    // The application source, in the paper's own language.
    let source = "
        input u;
        coeff k = 0.5;
        output y;
        /* y = clip(k*u + u) */
        m := mlt(k, u);
        y = add_clip(m, u);
    ";

    // The figure-1b pipeline: RT generation → RT modification →
    // scheduling → register allocation → instruction encoding.
    let compiled = Compiler::new(&core).budget(16).compile(source)?;

    println!("compiled quickstart for core `{}`:", core.name);
    println!("  RTs        : {}", compiled.lowering.program.rt_count());
    println!("  cycles     : {}", compiled.cycles());
    println!("  word width : {} bits", compiled.microcode.layout.width());
    println!("  ROM bits   : {}", compiled.microcode.rom_bits());

    println!("\nthe register transfers (figure-2 notation):");
    for (id, rt) in compiled.lowering.program.rts() {
        println!("/* {id}: {} */", rt.name());
        print!("{rt}");
    }

    println!("\nthe schedule:");
    print!("{}", compiled.schedule);

    // Execute the microcode and cross-check against the reference
    // interpreter, sample by sample.
    let mut sim = compiled.simulator()?;
    let mut reference = Interpreter::new(&compiled.dfg, core.format);
    println!("\nsimulation vs reference:");
    for x in [1000i64, -2000, 30000, -32768] {
        let hw = sim.step_frame(&[x])?;
        let sw = reference.step(&[x]);
        assert_eq!(hw, sw, "generated code must match the reference");
        println!("  u={x:>7}  ->  y={:>7}  (reference agrees)", hw[0]);
    }
    println!("\nall outputs bit-exact.");
    Ok(())
}
