//! Compile-service soak under chaos-injected cache I/O.
//!
//! Drives hundreds of interleaved requests from the standard application
//! corpus through a [`dspcc::CompileService`] whose persistent artifact
//! cache sits on a fault-injecting backend. Every served artifact is
//! compared bit-exact (microcode words, ROM image, schedule, register
//! assignment) against a cache-less reference compile: **one wrong serve
//! fails the soak** and exits non-zero with the offending
//! `(seed, kind, app)` triple.
//!
//! Saturated submits are expected — the queue is deliberately shallow so
//! admission control actually fires — and are absorbed by waiting out an
//! outstanding ticket before resubmitting; admitted work is never
//! dropped.
//!
//! ```text
//! cargo run --release --example service_soak -- [--requests N]
//!     [--chaos-start S] [--chaos-seeds K] [--workers W] [--queue Q]
//! ```
//!
//! The default chaos window (seeds 32..40) is disjoint from the block
//! `tests/io_fault.rs` pins under tier-1 (seeds 0..7), so CI buys fresh
//! fault coverage rather than a re-run.

use std::collections::VecDeque;
use std::sync::Arc;

use dspcc::conform::standard_corpus;
use dspcc::{
    cores, ChaosBackend, CompileOptions, CompileService, CompileSession, Compiled, DiskCache,
    IoFaultKind, Rejected, ServiceConfig, ServiceOutcome, StdFs, Ticket,
};

fn main() {
    let mut requests = 300usize;
    let mut chaos_start = 32u64;
    let mut chaos_seeds = 8u64;
    let mut workers = 4usize;
    let mut queue = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--requests" => requests = value("--requests").parse().expect("--requests: integer"),
            "--chaos-start" => {
                chaos_start = value("--chaos-start")
                    .parse()
                    .expect("--chaos-start: integer")
            }
            "--chaos-seeds" => {
                chaos_seeds = value("--chaos-seeds")
                    .parse()
                    .expect("--chaos-seeds: integer")
            }
            "--workers" => workers = value("--workers").parse().expect("--workers: integer"),
            "--queue" => queue = value("--queue").parse().expect("--queue: integer"),
            other => panic!("unknown argument `{other}` (see the example's docs)"),
        }
    }

    let core = Arc::new(cores::audio_core());
    let corpus = standard_corpus();
    let options = CompileOptions {
        restarts: 2,
        sched_threads: 1,
        fuel: Some(100_000),
        ..CompileOptions::default()
    };

    // Cache-less reference artifacts: what every serve must equal.
    let reference_session = CompileSession::new();
    let references: Vec<Compiled> = corpus
        .iter()
        .map(|(name, src)| {
            reference_session
                .compile(&core, src, &options)
                .unwrap_or_else(|e| panic!("reference compile of {name} failed: {e}"))
        })
        .collect();

    let per_seed = requests.div_ceil(chaos_seeds.max(1) as usize);
    let mut total_submitted = 0usize;
    let mut total_served = 0u64;
    let mut total_saturated = 0u64;
    let mut total_retries = 0u64;
    let mut total_disk_hits = 0u64;
    let mut total_injected = 0u64;
    let mut total_quarantined = 0u64;
    let mut wrong: Vec<String> = Vec::new();
    let mut failed: Vec<String> = Vec::new();

    for seed in chaos_start..chaos_start + chaos_seeds {
        // Each seed gets a fresh service over a private chaos-backed
        // cache; the fault kind cycles through the full taxonomy.
        let kind = IoFaultKind::ALL[(seed % IoFaultKind::ALL.len() as u64) as usize];
        let chaos = Arc::new(ChaosBackend::new(Arc::new(StdFs), kind, seed));
        let dir = std::env::temp_dir().join(format!(
            "dspcc-service-soak-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(DiskCache::with_backend(&dir, Arc::clone(&chaos) as _));
        let session = Arc::new(CompileSession::with_disk_cache(Arc::clone(&cache)));
        let mut service = CompileService::new(
            session,
            ServiceConfig {
                workers,
                queue_depth: queue,
                ..ServiceConfig::default()
            },
        );

        // Interleave the corpus round-robin; on saturation, drain the
        // oldest outstanding ticket and resubmit — backpressure, not
        // loss.
        let mut outstanding: VecDeque<(usize, Ticket)> = VecDeque::new();
        let mut settle = |(app, ticket): (usize, Ticket),
                          served: &mut u64,
                          retries: &mut u64,
                          disk_hits: &mut u64| {
            match ticket.wait() {
                ServiceOutcome::Served {
                    compiled,
                    retries: r,
                    disk_hits: d,
                    ..
                } => {
                    *served += 1;
                    *retries += u64::from(r);
                    *disk_hits += u64::from(d);
                    if let Some(detail) = diverges(&references[app], &compiled) {
                        wrong.push(format!(
                            "seed {seed:#x} kind {kind} app {}: {detail}",
                            corpus[app].0
                        ));
                    }
                }
                ServiceOutcome::Failed(e) => failed.push(format!(
                    "seed {seed:#x} kind {kind} app {}: {e}",
                    corpus[app].0
                )),
                ServiceOutcome::ShutDown => failed.push(format!(
                    "seed {seed:#x} kind {kind} app {}: shut down mid-soak",
                    corpus[app].0
                )),
            }
        };
        for i in 0..per_seed {
            let app = i % corpus.len();
            loop {
                match service.submit(&core, &corpus[app].1, options.clone()) {
                    Ok(ticket) => {
                        total_submitted += 1;
                        outstanding.push_back((app, ticket));
                        break;
                    }
                    Err(Rejected::Saturated { .. }) => {
                        total_saturated += 1;
                        if let Some(front) = outstanding.pop_front() {
                            settle(
                                front,
                                &mut total_served,
                                &mut total_retries,
                                &mut total_disk_hits,
                            );
                        }
                    }
                    Err(Rejected::ShutDown) => unreachable!("service not shut down"),
                }
            }
        }
        for t in outstanding.drain(..) {
            settle(
                t,
                &mut total_served,
                &mut total_retries,
                &mut total_disk_hits,
            );
        }
        let stats = service.stats();
        assert!(
            stats.peak_queue <= queue as u64,
            "queue bound violated: peak {} > {queue}",
            stats.peak_queue
        );
        service.shutdown();
        total_injected += chaos.injected();
        total_quarantined += cache.stats().quarantined;
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!(
        "service soak: {total_submitted} requests over {chaos_seeds} chaos seed(s) \
         ({chaos_start}..{})",
        chaos_start + chaos_seeds
    );
    println!(
        "  served {total_served} | saturated-backoffs {total_saturated} | \
         transient retries {total_retries} | disk hits {total_disk_hits}"
    );
    println!(
        "  faults injected {total_injected} | entries quarantined {total_quarantined} | \
         wrong serves {} | failures {}",
        wrong.len(),
        failed.len()
    );
    if total_injected == 0 {
        eprintln!("\nsoak FAILED — the chaos backend never fired; the run proved nothing");
        std::process::exit(1);
    }
    if !wrong.is_empty() || !failed.is_empty() {
        eprintln!("\nsoak FAILED:");
        for w in &wrong {
            eprintln!("  WRONG ARTIFACT {w}");
        }
        for e in &failed {
            eprintln!("  FAILURE {e}");
        }
        std::process::exit(1);
    }
}

/// First bit-level divergence between the reference and a served
/// artifact, if any.
fn diverges(reference: &Compiled, got: &Compiled) -> Option<String> {
    if reference.microcode.words != got.microcode.words {
        return Some("microcode words diverged".to_owned());
    }
    if reference.microcode.rom_image != got.microcode.rom_image {
        return Some("coefficient ROM diverged".to_owned());
    }
    if *reference.schedule != *got.schedule {
        return Some("schedule diverged".to_owned());
    }
    if reference.assignment.mapping != got.assignment.mapping {
        return Some("register assignment diverged".to_owned());
    }
    None
}
