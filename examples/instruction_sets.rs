//! A walkthrough of the paper's section 6: instruction-set construction
//! rules, conflict graphs, clique covers, and artificial resources.
//!
//! ```sh
//! cargo run --example instruction_sets
//! ```

use dspcc::graph::cover::greedy_edge_clique_cover;
use dspcc::ir::{Program, Rt, Usage};
use dspcc::isa::classes::RtClass;
use dspcc::isa::iset::InstructionSet;
use dspcc::isa::{apply_artificial_resources, artificial_resources, Classification, CoverStrategy};

const NAMES: [&str; 6] = ["S", "T", "U", "V", "X", "Y"];

fn main() {
    // The paper's example: classes S,T,U,V,X,Y, desired instruction types
    // {S,T}, {S,U,V}, {X,Y}.
    println!("desired instruction types: {{S,T}} {{S,U,V}} {{X,Y}}\n");
    let iset = InstructionSet::closure(6, &[vec![0, 1], vec![0, 2, 3], vec![4, 5]]);
    iset.validate().expect("closure obeys rules 1-4");

    println!("rule 1: the NOP is an instruction type        -> included");
    println!("rule 2: every single class is a type          -> included");
    println!("rule 3: subsets of valid types are valid      -> included");
    println!("rule 4: pairwise-compatible => jointly valid  -> included\n");

    println!(
        "the closed instruction set I ({} types):",
        iset.types().len()
    );
    for t in iset.types() {
        if t.is_empty() {
            print!("NOP ");
        } else {
            let names: Vec<&str> = t.iter().map(|c| NAMES[c.0]).collect();
            print!("{{{}}} ", names.join(","));
        }
    }
    println!("\n");

    // The conflict graph (figure 6) and a clique cover.
    let g = iset.conflict_graph();
    println!("conflict graph: {} edges (figure 6)", g.edge_count());
    let cover = greedy_edge_clique_cover(&g);
    print!("greedy clique cover: ");
    for clique in &cover {
        let names: Vec<&str> = clique.iter().map(|&c| NAMES[c]).collect();
        print!("{{{}}} ", names.join(","));
    }
    println!("\n");

    // Artificial resources, installed on three RTs like the paper's
    // worked example (RT_1 ∈ S, RT_2 ∈ U, RT_3 ∈ X).
    let mut classification = Classification::new();
    for (i, name) in NAMES.iter().enumerate() {
        classification.add(RtClass::new(name, format!("opu_{i}").as_str(), &["op"]));
    }
    let ars = artificial_resources(&iset, &classification, CoverStrategy::GreedyMaximal);
    let mut program = Program::new();
    let mut ids = Vec::new();
    for (i, class) in [(0usize, "S"), (2, "U"), (4, "X")] {
        let mut rt = Rt::new(format!("RT of class {class}"));
        rt.add_usage(format!("opu_{i}").as_str(), Usage::token("op"));
        ids.push(program.add_rt(rt));
    }
    apply_artificial_resources(&mut program, &classification, &ars);
    println!("after RT modification (section 6.3):");
    for &id in &ids {
        let rt = program.rt(id);
        println!("/* {} */", rt.name());
        print!("{rt}");
    }
    let s_rt = program.rt(ids[0]);
    let u_rt = program.rt(ids[1]);
    let x_rt = program.rt(ids[2]);
    println!("S ∥ U allowed : {}", s_rt.compatible_with(u_rt));
    println!("S ∥ X allowed : {}", s_rt.compatible_with(x_rt));
    println!("\nexactly the instruction set, enforced by ordinary resource conflicts —");
    println!("the scheduler never needs to know the instruction set existed.");
}
