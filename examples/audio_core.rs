//! The paper's real-life example end to end (sections 5–7, figures 7–9):
//! the digital-audio core, the stereo tone-control application, the
//! 64-cycle budget, the occupation chart — and, beyond the paper,
//! bit-exact execution of the generated microcode.
//!
//! ```sh
//! cargo run --release --example audio_core
//! ```

use dspcc::dfg::Interpreter;
use dspcc::num::WordFormat;
use dspcc::{apps, cores, Compiler};

const ROWS: [(&str, &str); 9] = [
    ("PRG_CNST", "prgc"),
    ("ROM", "rom"),
    ("MULT", "mult"),
    ("ALU", "alu"),
    ("ACU", "acu"),
    ("RAM", "ram"),
    ("IPB", "ipb"),
    ("OPB_1", "opb_1"),
    ("OPB_2", "opb_2"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let core = cores::audio_core();
    let source = apps::audio_application();
    println!("compiling the figure-7 stereo audio application…");
    let compiled = Compiler::new(&core).restarts(6).compile(&source)?;

    println!(
        "  RTs                 : {}",
        compiled.lowering.program.rt_count()
    );
    println!("  artificial resources: {:?}", compiled.artificial_names);
    println!("  flat schedule       : {} cycles", compiled.cycles());
    let folded = compiled.fold(2, 16)?;
    println!(
        "  folded (2 stages)   : {} cycles/frame — {} the 64-cycle budget",
        folded.ii(),
        if folded.ii() <= 64 { "meets" } else { "misses" }
    );

    println!("\nfigure-9 occupation (folded kernel):");
    println!("{}", compiled.folded_occupation(&folded, &ROWS).chart());

    // Execute the flat microcode against the reference interpreter with a
    // stereo test signal.
    println!("running 64 frames of stereo audio through the simulator…");
    let q15 = WordFormat::q15();
    let mut sim = compiled.simulator()?;
    let mut reference = Interpreter::new(&compiled.dfg, q15);
    let mut peak: i64 = 0;
    for n in 0..64i64 {
        // A decaying two-tone test signal.
        let l = q15.from_f64(0.5 * (0.2 * n as f64).sin() * 0.98f64.powi(n as i32));
        let r = q15.from_f64(0.4 * (0.31 * n as f64).cos() * 0.97f64.powi(n as i32));
        let hw = sim.step_frame(&[l, r])?;
        let sw = reference.step(&[l, r]);
        assert_eq!(hw, sw, "frame {n} diverged");
        peak = peak.max(hw.iter().map(|v| v.abs()).max().unwrap_or(0));
    }
    println!("64 frames bit-exact across all 8 output ports (peak |y| = {peak}).");
    println!(
        "\nthe paper verified quality via occupation statistics; this reproduction\n\
         additionally proves the generated code correct against the source semantics."
    );
    Ok(())
}
