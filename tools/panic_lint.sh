#!/usr/bin/env bash
# Ratchet lint on panic sites in the user-input-reachable compile path.
#
# Counts `.unwrap()` / `panic!(` occurrences per source file in the
# audited crates (rtgen, sched, encode, isa, sim, arch, ir) and fails
# when any file
# exceeds its recorded budget in tools/panic_budget.txt. Tests and
# examples are exempt by construction: only `crates/*/src` is scanned,
# and in-file `#[cfg(test)]` modules are excluded by stripping
# everything from the test-module marker onward (repo convention keeps
# unit tests in a trailing `mod tests`).
#
# Lowering a count is welcome — regenerate the budget with:
#   tools/panic_lint.sh --regen
set -euo pipefail
cd "$(dirname "$0")/.."

budget_file=tools/panic_budget.txt
scan_dirs=(crates/rtgen/src crates/sched/src crates/encode/src crates/isa/src crates/sim/src crates/arch/src crates/ir/src)

count_file() {
    # Strip the trailing unit-test module and comment lines, then count
    # panic sites.
    awk '/^#\[cfg\(test\)\]$/ { exit } { print }' "$1" |
        grep -v -E '^[[:space:]]*//' |
        grep -c -E '\.unwrap\(\)|panic!\(' || true
}

if [[ "${1:-}" == "--regen" ]]; then
    {
        echo "# Panic-site budget: <count> <file>, one line per file."
        echo "# Regenerate with tools/panic_lint.sh --regen (only to lower counts"
        echo "# or add files — raising a budget needs review)."
        while IFS= read -r file; do
            echo "$(count_file "$file") $file"
        done < <(find "${scan_dirs[@]}" -name '*.rs' | sort)
    } > "$budget_file"
    echo "wrote $budget_file"
    exit 0
fi

declare -A budget
while read -r count file; do
    [[ -z "${file:-}" || "${count:0:1}" == "#" ]] && continue
    budget[$file]=$count
done < "$budget_file"

fail=0
while IFS= read -r file; do
    count=$(count_file "$file")
    allowed=${budget[$file]:-0}
    if (( count > allowed )); then
        echo "panic lint: $file has $count panic site(s), budget is $allowed" >&2
        fail=1
    fi
done < <(find "${scan_dirs[@]}" -name '*.rs' | sort)

if (( fail )); then
    echo >&2
    echo "New .unwrap()/panic! in user-input-reachable code. Convert the" >&2
    echo "site to the typed error taxonomy (see DESIGN.md), or — for a" >&2
    echo "genuine invariant — use .expect(\"why this cannot fail\")." >&2
    exit 1
fi
echo "panic lint: all $(find "${scan_dirs[@]}" -name '*.rs' | wc -l) files within budget"
