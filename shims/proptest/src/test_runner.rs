//! RNG, configuration, and failure type for the shim harness.

use std::fmt;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Reads `PROPTEST_SEED` (decimal or `0x…` hex) or returns the fixed
/// default seed.
pub fn seed_from_env() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable PROPTEST_SEED {s:?}"))
        }
        Err(_) => 0xD5CC_0000_5EED_CAFE,
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(128);
        ProptestConfig { cases }
    }
}

/// A failed (or, in real proptest, rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
