//! The [`Strategy`] trait and the value sources used by this workspace.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values (no shrinking in the shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it — the dependent-generation combinator.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            map: f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.map)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a `[class]{min,max}` pattern — the subset of regex
/// syntax this workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[chars]{min,max}` into (alphabet, min, max). Supports `a-z`
/// ranges and `\n`, `\t`, `\\`, `\]`, `\-` escapes.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = find_unescaped(rest, ']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = match class[i] {
            '\\' => {
                i += 1;
                match *class.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            }
            other => other,
        };
        // `a-z` range (the `-` must not be first or last in the class).
        if i + 2 < class.len() && class[i + 1] == '-' && class[i + 2] != ']' {
            let hi = class[i + 2];
            for x in c..=hi {
                alphabet.push(x);
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if alphabet.is_empty() || min > max {
        return None;
    }
    Some((alphabet, min, max))
}

fn find_unescaped(s: &str, target: char) -> Option<usize> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\\' {
            i += 2;
            continue;
        }
        if chars[i] == target {
            // Byte offset for slicing (the class patterns here are ASCII).
            return Some(s.char_indices().nth(i)?.0);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let v = (-5i64..=5).generate(&mut r);
            assert!((-5..=5).contains(&v));
            let v = (-0.5f64..0.5).generate(&mut r);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0..n));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut r);
            assert!(k < n);
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn collection_vec_sizes() {
        let mut r = rng();
        let s = crate::collection::vec(0u8..4, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let exact = crate::collection::vec(0u8..4, 3usize);
        assert_eq!(exact.generate(&mut r).len(), 3);
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut r = rng();
        let s = crate::collection::btree_set(0usize..6, 1..=5usize);
        for _ in 0..100 {
            let set = s.generate(&mut r);
            assert!(!set.is_empty() && set.len() <= 5);
        }
    }

    #[test]
    fn string_pattern_class() {
        let mut r = rng();
        let s = "[ -~\n]{0,120}";
        for _ in 0..50 {
            let text = Strategy::generate(&s, &mut r);
            assert!(text.chars().count() <= 120);
            for c in text.chars() {
                assert!(c == '\n' || (' '..='~').contains(&c), "bad char {c:?}");
            }
        }
    }

    #[test]
    fn string_pattern_exact_count() {
        let mut r = rng();
        let s = "[a-c]{4,4}";
        let text = Strategy::generate(&s, &mut r);
        assert_eq!(text.len(), 4);
        assert!(text.chars().all(|c| ('a'..='c').contains(&c)));
    }
}
