//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim implements the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, integer/float range strategies, tuples, [`Just`],
//! [`any`], `collection::vec` / `collection::btree_set`, a character-class
//! string strategy, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and RNG seed;
//!   re-run with `PROPTEST_SEED=<seed>` to reproduce deterministically.
//! * `prop_assume!` treats a rejected case as a pass instead of resampling.
//! * String strategies support only `[class]{min,max}` patterns (character
//!   classes with ranges and `\n`/`\t`/`\\` escapes), which covers every
//!   pattern used in this workspace.
//!
//! Case count defaults to 128 and is configurable per block via
//! `ProptestConfig::with_cases` or globally via `PROPTEST_CASES`.

pub mod strategy;
pub mod test_runner;

/// Collection strategies: random `Vec`s and `BTreeSet`s.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; sizes are best-effort (duplicate
    /// draws are retried a bounded number of times).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * target + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The glob import every property test starts from.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_from_env();
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $( let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed (PROPTEST_SEED={:#x}): {}",
                            case + 1,
                            config.cases,
                            seed,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` for property tests: fails the case instead of panicking, so the
/// harness can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the rest of the case when `cond` is false (counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
