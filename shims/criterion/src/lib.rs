//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim implements the (small) subset of the criterion API used by the
//! `dspcc-bench` benches: `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each `Bencher::iter` call calibrates the number of
//! iterations per sample to roughly [`SAMPLE_TARGET_NS`], collects
//! `sample_size` samples, and reports the **median** per-iteration time in
//! nanoseconds. Results are printed to stdout; when the `BENCH_JSON`
//! environment variable names a file, one JSON line per benchmark
//! (`{"name": ..., "median_ns": ...}`) is appended to it, which is how
//! `BENCH_baseline.json` is produced (see DESIGN.md).
//!
//! Command-line: any non-flag argument is a substring filter on benchmark
//! names (flags such as `--bench` passed by cargo are ignored). With
//! `--test`, every routine runs exactly once and nothing is measured.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-sample measurement budget the calibrator aims for.
const SAMPLE_TARGET_NS: f64 = 5_000_000.0;

/// Returns its argument, opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a display-formatted parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("greedy_random", 128)` → `greedy_random/128`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything accepted as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine`, storing per-iteration nanosecond samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: double the batch size until one batch is long enough
        // to time reliably, then derive iterations-per-sample.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 30 {
                break dt.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        let per_sample = ((SAMPLE_TARGET_NS / per_iter_ns).ceil() as u64).max(1);
        // Very slow routines get fewer samples to bound total run time.
        let samples = if per_iter_ns > 50_000_000.0 {
            self.sample_size.min(5)
        } else {
            self.sample_size
        };
        for _ in 0..samples.max(3) {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.samples.push(dt.as_nanos() as f64 / per_sample as f64);
        }
    }
}

/// Top-level harness state: name filter and report sink.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id();
        run_one(self, &name, 20, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Accepted for API compatibility; the shim budgets per sample instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &name, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    sample_size: usize,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode: criterion.test_mode,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("{name}: ok (test mode)");
        return;
    }
    if bencher.samples.is_empty() {
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{name:<56} median {:>14} ns/iter ({} samples)",
        format_ns(median),
        bencher.samples.len()
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(file, "{{\"name\": \"{name}\", \"median_ns\": {median:.1}}}");
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1000.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.1}")
    }
}

/// Bundles benchmark functions into one group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
