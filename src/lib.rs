//! `dspcc-suite` — the workspace-level test-and-example package.
//!
//! This crate intentionally has no code of its own. It exists so that the
//! repository-root `tests/` (end-to-end pipeline tests) and `examples/`
//! (user-facing walkthroughs) are built and run by `cargo test` against the
//! [`dspcc`] facade crate. See `crates/core` for the compiler itself.
