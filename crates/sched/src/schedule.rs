//! The schedule data structure, conflict matrix, and schedule verification.

use std::fmt;

use dspcc_ir::{Program, RtId};

use crate::deps::DependenceGraph;

/// Precomputed pairwise compatibility of all RTs of a program.
///
/// Schedulers query compatibility millions of times; this packs the
/// symmetric conflict relation into a bit matrix once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictMatrix {
    n: usize,
    bits: Vec<u64>,
    /// Per row: the `(first, last+1)` span of nonzero words — conflict
    /// rows are sparse, so the scheduler's innermost `fits_mask` AND only
    /// walks the words that can possibly intersect (derived from `bits`).
    spans: Vec<(u32, u32)>,
    /// Per row: a dense class id such that two RTs share a class iff
    /// their conflict rows are identical (derived from `bits`). Within
    /// one construction pass occupancy only grows, so a cycle that
    /// failed `fits_mask` for a row stays infeasible for every RT of the
    /// same class — schedulers exploit this with per-class probe hints.
    row_class: Vec<u32>,
    /// Number of distinct row classes.
    class_count: u32,
}

impl ConflictMatrix {
    /// Builds the matrix from the (already modified) RTs of `program`.
    ///
    /// Two RTs conflict iff they use some shared resource with *different*
    /// usages, so the matrix is assembled **class-wise** rather than
    /// pairwise: every `(resource id, usage id, rt)` triple is collected
    /// and integer-sorted, so usage classes per resource fall out as
    /// contiguous runs — no string is hashed or compared anywhere. Each
    /// member's row then ORs in "users of this resource outside my class"
    /// with one masked word-copy — `O(Σ usages · words)` instead of
    /// `O(n²)` `compatible_with` walks, which dominated whole-pipeline
    /// profiles at a few hundred RTs.
    pub fn build(program: &Program) -> Self {
        let n = program.rt_count();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        // (resource id, usage id, rt) — sorted, classes are runs.
        let mut triples: Vec<(u32, u32, u32)> = Vec::new();
        for (id, rt) in program.rts() {
            for &(res, usage) in rt.usage_ids() {
                triples.push((res.id().0, usage.0, id.0));
            }
        }
        triples.sort_unstable();
        let mut all = vec![0u64; words];
        let mut class = vec![0u64; words];
        let mut i = 0;
        while i < triples.len() {
            // One resource's run: [i, j).
            let res = triples[i].0;
            let mut j = i;
            for w in all.iter_mut() {
                *w = 0;
            }
            while j < triples.len() && triples[j].0 == res {
                let rt = triples[j].2 as usize;
                all[rt / 64] |= 1 << (rt % 64);
                j += 1;
            }
            // Usage-class sub-runs within [i, j).
            let mut k = i;
            while k < j {
                let usage = triples[k].1;
                let mut m = k;
                for w in class.iter_mut() {
                    *w = 0;
                }
                while m < j && triples[m].1 == usage {
                    let rt = triples[m].2 as usize;
                    class[rt / 64] |= 1 << (rt % 64);
                    m += 1;
                }
                for &(_, _, rt) in &triples[k..m] {
                    let rt = rt as usize;
                    let row = &mut bits[rt * words..(rt + 1) * words];
                    for ((r, &a), &c) in row.iter_mut().zip(&all).zip(class.iter()) {
                        *r |= a & !c;
                    }
                }
                k = m;
            }
            i = j;
        }
        Self::with_spans(n, bits)
    }

    /// The retained string-keyed reference construction: per-RT usage maps
    /// keyed by resource **name** with usage **values** compared
    /// structurally, exactly as the seed implementation did before symbol
    /// interning. Quadratic and allocation-heavy — kept only so the
    /// differential property test can pin [`ConflictMatrix::build`]
    /// bit-identical to the string semantics on random programs.
    pub fn build_reference(program: &Program) -> Self {
        use std::collections::BTreeMap;
        let n = program.rt_count();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        let maps: Vec<BTreeMap<String, dspcc_ir::Usage>> = program
            .rts()
            .map(|(_, rt)| {
                rt.usages()
                    .map(|(r, u)| (r.name().to_owned(), u.clone()))
                    .collect()
            })
            .collect();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let conflict = maps[i]
                    .iter()
                    .any(|(res, u)| maps[j].get(res).map(|v| v != u).unwrap_or(false));
                if conflict {
                    bits[i * words + j / 64] |= 1 << (j % 64);
                }
            }
        }
        Self::with_spans(n, bits)
    }

    fn with_spans(n: usize, bits: Vec<u64>) -> Self {
        let words = n.div_ceil(64);
        let spans = (0..n)
            .map(|i| {
                let row = &bits[i * words..(i + 1) * words];
                let first = row.iter().position(|&w| w != 0).unwrap_or(0);
                let last = row.iter().rposition(|&w| w != 0).map_or(0, |p| p + 1);
                (first as u32, last as u32)
            })
            .collect();
        let (row_class, class_count) = {
            let mut classes: std::collections::HashMap<&[u64], u32> =
                std::collections::HashMap::new();
            let mut row_class = Vec::with_capacity(n);
            for i in 0..n {
                let row = &bits[i * words..(i + 1) * words];
                let next = classes.len() as u32;
                row_class.push(*classes.entry(row).or_insert(next));
            }
            (row_class, classes.len() as u32)
        };
        ConflictMatrix {
            n,
            bits,
            spans,
            row_class,
            class_count,
        }
    }

    /// The row class of `rt`: equal classes ⇔ identical conflict rows.
    pub fn row_class(&self, rt: RtId) -> u32 {
        self.row_class[rt.0 as usize]
    }

    /// Number of distinct conflict-row classes.
    pub fn class_count(&self) -> usize {
        self.class_count as usize
    }

    /// Number of RTs.
    pub fn rt_count(&self) -> usize {
        self.n
    }

    /// Number of `u64` words per conflict row (`⌈rt_count/64⌉`).
    pub fn words_per_row(&self) -> usize {
        self.n.div_ceil(64)
    }

    /// The packed conflict row of `rt`: bit `j` set iff `rt` conflicts with
    /// RT `j`. ANDing this against a cycle's occupancy bitset answers "does
    /// `rt` fit this instruction" in one word-parallel pass — the
    /// scheduler's innermost operation.
    pub fn row(&self, rt: RtId) -> &[u64] {
        let words = self.words_per_row();
        let i = rt.0 as usize;
        &self.bits[i * words..(i + 1) * words]
    }

    /// Whether RTs `a` and `b` conflict (cannot share an instruction).
    pub fn conflicts(&self, a: RtId, b: RtId) -> bool {
        let words = self.words_per_row();
        let (i, j) = (a.0 as usize, b.0 as usize);
        self.bits[i * words + j / 64] & (1 << (j % 64)) != 0
    }

    /// Whether `rt` is compatible with every RT in `instruction`.
    pub fn fits(&self, rt: RtId, instruction: &[RtId]) -> bool {
        instruction.iter().all(|&other| !self.conflicts(rt, other))
    }

    /// Whether `rt` is compatible with every RT in the packed `occupancy`
    /// bitset (one bit per issued RT id): a single row-AND instead of a
    /// per-RT loop, restricted to the row's nonzero-word span.
    pub fn fits_mask(&self, rt: RtId, occupancy: &[u64]) -> bool {
        let (s, e) = self.spans[rt.0 as usize];
        let (s, e) = (s as usize, e as usize);
        let row = self.row(rt);
        row[s..e]
            .iter()
            .zip(&occupancy[s..e])
            .all(|(&c, &o)| c & o == 0)
    }
}

/// A schedule: one (possibly empty) instruction per cycle.
///
/// Cycle `t` holds the RTs *issued* at `t`; an RT with latency `l`
/// delivers its result at `t + l`. The schedule length counts until the
/// last issue plus one — matching the paper's "scheduled in 63 cycles"
/// (the time-loop is re-entered immediately, overlapping drain with the
/// next frame's fill).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    cycles: Vec<Vec<RtId>>,
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// No schedule within the cycle budget was found.
    BudgetExceeded {
        /// The budget that was requested.
        budget: u32,
        /// RTs that could not be placed (diagnostic feedback for the
        /// source-rewrite iteration of figure 1).
        unplaced: usize,
    },
    /// The dependence graph is unschedulable (e.g. a cycle).
    Dependences(String),
    /// The caller's [`crate::fuel::CancelToken`] was raised; the partial
    /// result was discarded.
    Cancelled,
    /// The deterministic compute budget ([`crate::fuel::Fuel`]) ran out
    /// before any schedule within the cycle budget was found. Unlike
    /// [`SchedError::BudgetExceeded`] this is attributable to the fuel
    /// limit, not the program: more fuel may still succeed.
    FuelExhausted {
        /// Work units consumed when the search was cut off.
        spent: u64,
        /// The cycle budget that went unmet.
        budget: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::BudgetExceeded { budget, unplaced } => write!(
                f,
                "no feasible schedule within {budget} cycles ({unplaced} RT(s) unplaced); \
                 rewrite the source or relax the budget"
            ),
            SchedError::Dependences(m) => write!(f, "dependence problem: {m}"),
            SchedError::Cancelled => write!(f, "scheduling cancelled by the caller"),
            SchedError::FuelExhausted { spent, budget } => write!(
                f,
                "compute fuel exhausted after {spent} unit(s) with no schedule within \
                 {budget} cycles; raise the fuel limit or relax the budget"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// Violation found by [`Schedule::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An RT appears zero or multiple times.
    NotExactlyOnce(RtId),
    /// A flow dependence is violated.
    DependenceViolated {
        /// Producer RT.
        producer: RtId,
        /// Consumer RT.
        consumer: RtId,
        /// Cycle the producer issues.
        producer_cycle: u32,
        /// Cycle the consumer issues.
        consumer_cycle: u32,
        /// Required separation.
        latency: u32,
    },
    /// Two conflicting RTs share a cycle.
    ResourceConflict {
        /// First RT.
        a: RtId,
        /// Second RT.
        b: RtId,
        /// The cycle they share.
        cycle: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotExactlyOnce(rt) => {
                write!(f, "{rt} is not scheduled exactly once")
            }
            VerifyError::DependenceViolated {
                producer,
                consumer,
                producer_cycle,
                consumer_cycle,
                latency,
            } => write!(
                f,
                "{consumer}@{consumer_cycle} issues before {producer}@{producer_cycle} \
                 + latency {latency}"
            ),
            VerifyError::ResourceConflict { a, b, cycle } => {
                write!(f, "{a} and {b} conflict in cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Creates a schedule from explicit per-cycle instruction contents.
    pub fn from_cycles(cycles: Vec<Vec<RtId>>) -> Self {
        Schedule { cycles }
    }

    /// Places `rt` at `cycle`, growing the schedule as needed.
    pub fn place(&mut self, rt: RtId, cycle: u32) {
        while self.cycles.len() <= cycle as usize {
            self.cycles.push(Vec::new());
        }
        self.cycles[cycle as usize].push(rt);
    }

    /// Number of cycles (index of last non-empty instruction + 1).
    pub fn length(&self) -> u32 {
        self.cycles
            .iter()
            .rposition(|c| !c.is_empty())
            .map(|i| i as u32 + 1)
            .unwrap_or(0)
    }

    /// The raw per-cycle rows, *including* any trailing empty cycles a
    /// construction pass left behind. [`Schedule::length`] ignores those,
    /// but equality does not — serialization (the persistent artifact
    /// cache) round-trips this exact vector so a deserialized schedule is
    /// `==` to the one that was stored.
    pub fn cycles(&self) -> &[Vec<RtId>] {
        &self.cycles
    }

    /// The instruction (set of RTs issued) at `cycle`.
    pub fn instruction(&self, cycle: u32) -> &[RtId] {
        self.cycles
            .get(cycle as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates `(cycle, instruction)` pairs up to [`Schedule::length`].
    pub fn instructions(&self) -> impl Iterator<Item = (u32, &[RtId])> {
        self.cycles
            .iter()
            .take(self.length() as usize)
            .enumerate()
            .map(|(t, instr)| (t as u32, instr.as_slice()))
    }

    /// The issue cycle of each RT, indexed by RT id; `None` if unscheduled.
    pub fn issue_cycles(&self, rt_count: usize) -> Vec<Option<u32>> {
        let mut cycles = vec![None; rt_count];
        for (t, instr) in self.instructions() {
            for &rt in instr {
                cycles[rt.0 as usize] = Some(t);
            }
        }
        cycles
    }

    /// Average number of RTs per instruction — the parallelism achieved.
    pub fn parallelism(&self) -> f64 {
        let total: usize = self.cycles.iter().map(|c| c.len()).sum();
        if self.length() == 0 {
            0.0
        } else {
            total as f64 / self.length() as f64
        }
    }

    /// Verifies the schedule against the program: every RT exactly once,
    /// all flow dependences separated by the producer latency, and all
    /// same-cycle RT pairs compatible.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self, program: &Program, deps: &DependenceGraph) -> Result<(), VerifyError> {
        let mut seen = vec![0u32; program.rt_count()];
        for (_, instr) in self.instructions() {
            for &rt in instr {
                seen[rt.0 as usize] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            if count != 1 {
                return Err(VerifyError::NotExactlyOnce(RtId(i as u32)));
            }
        }
        let issue = self.issue_cycles(program.rt_count());
        for id in program.rt_ids() {
            let t = issue[id.0 as usize].expect("checked above");
            for (succ, latency) in deps.successors(id) {
                let ts = issue[succ.0 as usize].expect("checked above");
                if ts < t + latency {
                    return Err(VerifyError::DependenceViolated {
                        producer: id,
                        consumer: succ,
                        producer_cycle: t,
                        consumer_cycle: ts,
                        latency,
                    });
                }
            }
        }
        for (t, instr) in self.instructions() {
            for (i, &a) in instr.iter().enumerate() {
                for &b in &instr[i + 1..] {
                    if !program.rt(a).compatible_with(program.rt(b)) {
                        return Err(VerifyError::ResourceConflict { a, b, cycle: t });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, instr) in self.instructions() {
            write!(f, "{t:>4}: ")?;
            if instr.is_empty() {
                writeln!(f, "nop")?;
            } else {
                let names: Vec<String> = instr.iter().map(|r| r.to_string()).collect();
                writeln!(f, "{}", names.join(" | "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_ir::{Rt, Usage};

    fn two_conflicting_rts() -> Program {
        let mut p = Program::new();
        let mut a = Rt::new("a");
        a.add_usage("alu", Usage::token("add"));
        let mut b = Rt::new("b");
        b.add_usage("alu", Usage::token("sub"));
        p.add_rt(a);
        p.add_rt(b);
        p
    }

    #[test]
    fn conflict_matrix_matches_rt_compatibility() {
        let p = two_conflicting_rts();
        let m = ConflictMatrix::build(&p);
        assert!(m.conflicts(RtId(0), RtId(1)));
        assert!(m.conflicts(RtId(1), RtId(0)));
        assert!(!m.fits(RtId(0), &[RtId(1)]));
        assert!(m.fits(RtId(0), &[]));
        assert_eq!(m.rt_count(), 2);
    }

    #[test]
    fn classwise_build_matches_pairwise_definition() {
        // A mix of shared-token, shared-apply, distinct-usage and
        // disjoint-resource RTs, wide enough to span two row words.
        let mut p = Program::new();
        for i in 0..70 {
            let mut rt = Rt::new(format!("rt{i}"));
            match i % 5 {
                0 => rt.add_usage("alu", Usage::token("add")),
                1 => rt.add_usage("alu", Usage::token("sub")),
                2 => rt.add_usage("mult", Usage::apply("mult", [format!("v{}", i % 3)])),
                3 => {
                    rt.add_usage("alu", Usage::token("add"));
                    rt.add_usage("bus", Usage::apply("add", [format!("v{i}")]));
                }
                _ => rt.add_usage(format!("opu_{}", i % 7).as_str(), Usage::token("op")),
            }
            p.add_rt(rt);
        }
        let m = ConflictMatrix::build(&p);
        for i in 0..p.rt_count() {
            for j in 0..p.rt_count() {
                let (a, b) = (RtId(i as u32), RtId(j as u32));
                let expected = i != j && !p.rt(a).compatible_with(p.rt(b));
                assert_eq!(m.conflicts(a, b), expected, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn fits_mask_agrees_with_fits() {
        let p = two_conflicting_rts();
        let m = ConflictMatrix::build(&p);
        assert_eq!(m.words_per_row(), 1);
        // Occupancy with RT 1 issued: RT 0 must not fit, matching fits().
        let occ = vec![1u64 << 1];
        assert!(!m.fits_mask(RtId(0), &occ));
        assert!(m.fits_mask(RtId(0), &[0u64]));
        assert_eq!(m.row(RtId(0)), &[1u64 << 1]);
        assert_eq!(m.row(RtId(1)), &[1u64 << 0]);
    }

    #[test]
    fn schedule_place_and_length() {
        let mut s = Schedule::new();
        assert_eq!(s.length(), 0);
        s.place(RtId(0), 3);
        assert_eq!(s.length(), 4);
        assert_eq!(s.instruction(3), &[RtId(0)]);
        assert_eq!(s.instruction(0), &[] as &[RtId]);
        assert_eq!(s.instruction(99), &[] as &[RtId]);
    }

    #[test]
    fn parallelism_metric() {
        let s = Schedule::from_cycles(vec![vec![RtId(0), RtId(1)], vec![RtId(2)]]);
        assert!((s.parallelism() - 1.5).abs() < 1e-9);
        assert_eq!(Schedule::new().parallelism(), 0.0);
    }

    #[test]
    fn verify_accepts_serial_schedule() {
        let p = two_conflicting_rts();
        let deps = DependenceGraph::build(&p).unwrap();
        let s = Schedule::from_cycles(vec![vec![RtId(0)], vec![RtId(1)]]);
        s.verify(&p, &deps).unwrap();
    }

    #[test]
    fn verify_rejects_conflict_in_cycle() {
        let p = two_conflicting_rts();
        let deps = DependenceGraph::build(&p).unwrap();
        let s = Schedule::from_cycles(vec![vec![RtId(0), RtId(1)]]);
        assert!(matches!(
            s.verify(&p, &deps),
            Err(VerifyError::ResourceConflict { .. })
        ));
    }

    #[test]
    fn verify_rejects_missing_and_duplicate() {
        let p = two_conflicting_rts();
        let deps = DependenceGraph::build(&p).unwrap();
        let missing = Schedule::from_cycles(vec![vec![RtId(0)]]);
        assert_eq!(
            missing.verify(&p, &deps),
            Err(VerifyError::NotExactlyOnce(RtId(1)))
        );
        let dup = Schedule::from_cycles(vec![vec![RtId(0)], vec![RtId(0)], vec![RtId(1)]]);
        assert_eq!(
            dup.verify(&p, &deps),
            Err(VerifyError::NotExactlyOnce(RtId(0)))
        );
    }

    #[test]
    fn verify_rejects_latency_violation() {
        let mut p = Program::new();
        let v = p.add_value("v");
        let mut a = Rt::new("a");
        a.add_def(v);
        a.set_latency(2);
        a.add_usage("mult", Usage::token("mult"));
        let mut b = Rt::new("b");
        b.add_use(v);
        b.add_usage("alu", Usage::token("add"));
        p.add_rt(a);
        p.add_rt(b);
        let deps = DependenceGraph::build(&p).unwrap();
        let bad = Schedule::from_cycles(vec![vec![RtId(0)], vec![RtId(1)]]);
        assert!(matches!(
            bad.verify(&p, &deps),
            Err(VerifyError::DependenceViolated { latency: 2, .. })
        ));
        let good = Schedule::from_cycles(vec![vec![RtId(0)], vec![], vec![RtId(1)]]);
        good.verify(&p, &deps).unwrap();
    }

    #[test]
    fn compatible_rts_may_share_cycle() {
        let mut p = Program::new();
        let mut a = Rt::new("a");
        a.add_usage("alu", Usage::token("add"));
        let mut b = Rt::new("b");
        b.add_usage("mult", Usage::token("mult"));
        p.add_rt(a);
        p.add_rt(b);
        let deps = DependenceGraph::build(&p).unwrap();
        let s = Schedule::from_cycles(vec![vec![RtId(0), RtId(1)]]);
        s.verify(&p, &deps).unwrap();
        assert_eq!(s.length(), 1);
    }

    #[test]
    fn display_shows_nops() {
        let s = Schedule::from_cycles(vec![vec![RtId(0)], vec![], vec![RtId(1)]]);
        let text = s.to_string();
        assert!(text.contains("nop"));
        assert!(text.contains("rt0"));
    }

    #[test]
    fn error_displays() {
        let e = SchedError::BudgetExceeded {
            budget: 64,
            unplaced: 3,
        };
        assert!(e.to_string().contains("64"));
        let e = VerifyError::ResourceConflict {
            a: RtId(0),
            b: RtId(1),
            cycle: 7,
        };
        assert!(e.to_string().contains("cycle 7"));
    }
}
