//! Priority-based list scheduling under a cycle budget.
//!
//! The production scheduler: cycle by cycle, ready RTs are packed into the
//! current instruction in priority order, most-urgent first. Thanks to the
//! RT-modification step, "ready and pairwise compatible" is the *complete*
//! legality condition — datapath and instruction set are both encoded in
//! the usage maps.
//!
//! # Performance notes
//!
//! The innermost operation — "does RT r fit the instruction under
//! construction?" — is answered by ANDing r's packed conflict row against a
//! per-cycle **occupancy bitset** ([`ConflictMatrix::fits_mask`]): one
//! word-parallel pass instead of a loop over the cycle's RTs. The
//! per-schedule priority data (ASAP/ALAP/depth/sink deadlines) is computed
//! once in a [`ScheduleContext`] and shared across all restarts of
//! [`best_effort_schedule`], which also reuses one [`SchedScratch`] buffer
//! set for every attempt, so restarts allocate nothing but the winning
//! schedule.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use dspcc_ir::{Program, RtId};

use crate::bounds::distinct_usage_bound;
use crate::deps::DependenceGraph;
use crate::fuel::{CancelToken, Fuel};
use crate::schedule::{ConflictMatrix, SchedError, Schedule};

/// Priority function for choosing among ready RTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Least slack (ALAP − ASAP) first, then deepest successor chain —
    /// the strongest heuristic for tight budgets.
    #[default]
    Slack,
    /// Earliest deadline (ALAP) first, then deepest successor chain —
    /// saturates pipelined resource chains well.
    Alap,
    /// Deadline of the most urgent transitive *sink* first, then own
    /// deadline. Keeps whole dependence "lanes" together: all feeders of
    /// an urgent output chain go before any feeder of a later one, which
    /// is what lets uniform DSP time-loops finish lanes in deadline order
    /// instead of finishing everything at once.
    SinkAlap,
    /// Deepest successor chain (critical path) first.
    CriticalPath,
    /// Program (source) order — the weakest baseline.
    SourceOrder,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Slack => "slack",
            Priority::Alap => "alap",
            Priority::SinkAlap => "sink-alap",
            Priority::CriticalPath => "critical-path",
            Priority::SourceOrder => "source-order",
        })
    }
}

/// Configuration of [`list_schedule`].
#[derive(Debug, Clone, Default)]
pub struct ListConfig {
    /// Hard cycle budget; `None` schedules without a deadline.
    pub budget: Option<u32>,
    /// Priority function.
    pub priority: Priority,
    /// Deterministic tie-break perturbation; 0 is unperturbed. Randomised
    /// restarts over a handful of seeds recover most of the gap between
    /// one greedy pass and an exact schedule (see
    /// [`best_effort_schedule`]).
    pub jitter_seed: u64,
}

impl ListConfig {
    /// Config with a hard budget and default priority.
    pub fn with_budget(budget: u32) -> Self {
        ListConfig {
            budget: Some(budget),
            ..ListConfig::default()
        }
    }
}

/// Priority data shared by every restart of a scheduling run: ASAP/ALAP
/// windows, critical-path depths, and lane (sink) deadlines, all computed
/// **once** per `(program, deps, budget)` instead of per attempt.
#[derive(Debug, Clone)]
pub struct ScheduleContext {
    asap: Vec<u32>,
    alap: Vec<u32>,
    depth: Vec<u32>,
    sink: Vec<u32>,
    horizon: u32,
}

impl ScheduleContext {
    /// Computes the context for scheduling `program` under `budget`.
    pub fn build(program: &Program, deps: &DependenceGraph, budget: Option<u32>) -> Self {
        let asap = deps.asap();
        let horizon = budget.unwrap_or_else(|| serial_upper_bound(program, deps));
        // Deadlines for the *priority* functions are computed against a
        // tight target — the best conceivable schedule — regardless of the
        // actual budget; loose deadlines make every priority meaningless.
        let target = priority_target(program, deps, budget);
        let alap = deps.alap(target);
        let depth = successor_depths(deps);
        let sink = sink_alaps(deps, &alap);
        ScheduleContext {
            asap,
            alap,
            depth,
            sink,
            horizon,
        }
    }
}

/// A priority key: one tuple comparison orders two RTs completely.
type Key = (i64, i64, i64, i64);

/// Reusable buffers for the scheduler inner loops. One instance serves any
/// number of attempts (sizes are re-established per attempt); restarts in
/// [`best_effort_schedule`] share a single scratch.
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// Priority key per RT for the current attempt.
    keys: Vec<Key>,
    /// Issue cycle per RT (`None` = unplaced).
    issue: Vec<Option<u32>>,
    /// Unscheduled-predecessor counts.
    remaining_preds: Vec<usize>,
    /// Earliest feasible cycle per RT (ASAP ∨ pred issue + latency).
    earliest: Vec<u32>,
    /// Ready min-heap keyed by `(priority key, RT id)` (insertion
    /// scheduling): popping the most urgent ready RT is `O(log ready)`
    /// instead of a linear scan.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Key, usize)>>,
    /// Sorted candidate pool `(priority key, RT id)` (list scheduling),
    /// maintained incrementally across cycles instead of being re-filtered
    /// and re-sorted from all RTs every cycle.
    pool: Vec<(Key, usize)>,
    /// RTs whose last predecessor issued this cycle (list scheduling).
    arrivals: Vec<usize>,
    /// Per-cycle occupancy bitsets, `words_per_row` words per cycle
    /// (insertion scheduling).
    cycle_occ: Vec<u64>,
    /// Single-cycle occupancy bitset (list scheduling).
    occ: Vec<u64>,
    /// Per conflict-row-class probe hints (insertion scheduling): all
    /// cycles below `hints[class]` are proven infeasible for every RT of
    /// that class in the current attempt (occupancy only grows, so a
    /// failed `fits_mask` stays failed).
    hints: Vec<u32>,
}

impl SchedScratch {
    /// Fills `keys` for this attempt's priority function and jitter seed.
    fn compute_keys(&mut self, ctx: &ScheduleContext, config: &ListConfig) {
        let n = ctx.asap.len();
        self.keys.clear();
        self.keys.reserve(n);
        for rt in 0..n {
            let tie = if config.jitter_seed == 0 {
                rt as i64
            } else {
                (jitter(rt, config.jitter_seed) & 0xFFFF) as i64
            };
            let (asap, alap) = (ctx.asap[rt] as i64, ctx.alap[rt] as i64);
            let depth = ctx.depth[rt] as i64;
            self.keys.push(match config.priority {
                Priority::Slack => (alap - asap, -depth, tie, 0),
                Priority::Alap => (alap, -depth, tie, 0),
                Priority::SinkAlap => (ctx.sink[rt] as i64, alap, -depth, tie),
                Priority::CriticalPath => (-depth, alap, tie, 0),
                Priority::SourceOrder => (rt as i64, 0, 0, 0),
            });
        }
    }
}

/// Runs list scheduling over several priorities and jitter seeds, keeping
/// the shortest verified schedule. `restarts` counts jittered attempts
/// per priority (beyond the unjittered one).
///
/// The conflict matrix, dependence contexts (forward and time-mirrored),
/// and scratch buffers are built once and shared by every attempt, and
/// the run stops the moment an attempt meets the provable length lower
/// bound ([`crate::bounds::length_lower_bound`]) — the remaining restarts
/// cannot beat it.
///
/// # Errors
///
/// Returns the best schedule found; [`SchedError::BudgetExceeded`] only
/// if *no* attempt fits the budget.
pub fn best_effort_schedule(
    program: &Program,
    deps: &DependenceGraph,
    budget: Option<u32>,
    restarts: u32,
) -> Result<Schedule, SchedError> {
    let matrix = ConflictMatrix::build(program);
    best_effort_schedule_with(program, deps, &matrix, budget, restarts, 1)
}

/// As [`best_effort_schedule`], running independent restarts on `threads`
/// worker threads (`0` = one per available core, capped at 8; `1` =
/// inline). Output is **bit-identical for every thread count** — see
/// [`best_effort_schedule_with`] for the reduction rule.
///
/// # Errors
///
/// See [`best_effort_schedule`].
pub fn best_effort_schedule_threaded(
    program: &Program,
    deps: &DependenceGraph,
    budget: Option<u32>,
    restarts: u32,
    threads: usize,
) -> Result<Schedule, SchedError> {
    let matrix = ConflictMatrix::build(program);
    best_effort_schedule_with(program, deps, &matrix, budget, restarts, threads)
}

/// The three construction algorithms tried per `(priority, seed)` pair.
#[derive(Debug, Clone, Copy)]
enum Algo {
    Insertion,
    Backward,
    List,
}

const ATTEMPT_PRIORITIES: [Priority; 4] = [
    Priority::SinkAlap,
    Priority::Slack,
    Priority::Alap,
    Priority::CriticalPath,
];
const ATTEMPT_ALGOS: [Algo; 3] = [Algo::Insertion, Algo::Backward, Algo::List];

/// Everything one restart attempt needs, shared read-only by all workers.
struct AttemptSet<'a> {
    program: &'a Program,
    deps: &'a DependenceGraph,
    reversed: DependenceGraph,
    matrix: &'a ConflictMatrix,
    ctx: ScheduleContext,
    ctx_rev: ScheduleContext,
    budget: Option<u32>,
}

impl AttemptSet<'_> {
    /// Runs one `(priority, jitter seed, algorithm)` attempt.
    fn run(
        &self,
        &(priority, seed, algo): &(Priority, u64, Algo),
        scratch: &mut SchedScratch,
        cutoff: u32,
    ) -> Result<Schedule, SchedError> {
        // `cutoff` is the best length already recorded (`u32::MAX` when
        // none): an attempt that cannot get below it loses the
        // `(length, index)` reduction even on a tie, so it may run under
        // a tightened budget and fail early instead of finishing a
        // schedule that would be discarded. Successful constructions are
        // untouched — the budget only moves the failure point — so the
        // reduction winner is bit-identical with or without the cutoff.
        let budget = match self.budget {
            Some(b) => Some(b.min(cutoff)),
            None if cutoff != u32::MAX => Some(cutoff),
            None => None,
        };
        let config = ListConfig {
            budget,
            priority,
            jitter_seed: seed,
        };
        match algo {
            Algo::Insertion => insertion_schedule_in(
                self.program,
                self.deps,
                self.matrix,
                &config,
                &self.ctx,
                scratch,
            ),
            Algo::Backward => backward_insertion_schedule_in(
                self.program,
                &self.reversed,
                self.matrix,
                &config,
                &self.ctx_rev,
                scratch,
            ),
            Algo::List => list_schedule_in(
                self.program,
                self.deps,
                self.matrix,
                &config,
                &self.ctx,
                scratch,
            ),
        }
    }
}

/// Deterministic reduction state over attempt outcomes.
///
/// The winner is chosen *by rule*, not by arrival order, which is what
/// makes the parallel engine bit-identical to the serial one: if any
/// attempt meets the lower bound, the winner is the bound-meeting attempt
/// with the smallest enumeration index (the one serial evaluation would
/// have stopped at); otherwise all attempts were evaluated and the winner
/// is the minimum of `(length, index)`.
#[derive(Default)]
struct BestOutcome {
    /// Minimum `(length, index)` over evaluated successful attempts.
    any: Option<(u32, u32, Schedule)>,
    /// Minimum index among attempts with `length ≤ bound`.
    at_bound: Option<(u32, Schedule)>,
    /// Maximum-index error (what serial evaluation reports last).
    err: Option<(u32, SchedError)>,
}

impl BestOutcome {
    fn note(&mut self, idx: u32, result: Result<Schedule, SchedError>, bound: u32) {
        match result {
            Ok(s) => {
                let len = s.length();
                if len <= bound
                    && self
                        .at_bound
                        .as_ref()
                        .map(|&(i, _)| idx < i)
                        .unwrap_or(true)
                {
                    self.at_bound = Some((idx, s.clone()));
                }
                if self
                    .any
                    .as_ref()
                    .map(|&(l, i, _)| (len, idx) < (l, i))
                    .unwrap_or(true)
                {
                    self.any = Some((len, idx, s));
                }
            }
            Err(e) => {
                if self.err.as_ref().map(|&(i, _)| idx > i).unwrap_or(true) {
                    self.err = Some((idx, e));
                }
            }
        }
    }

    fn bound_met(&self) -> bool {
        self.at_bound.is_some()
    }

    /// Length of the best schedule so far (`u32::MAX` if none).
    fn best_len(&self) -> u32 {
        self.any.as_ref().map(|&(l, _, _)| l).unwrap_or(u32::MAX)
    }

    fn merge(mut self, other: BestOutcome) -> BestOutcome {
        if let Some((idx, s)) = other.at_bound {
            if self
                .at_bound
                .as_ref()
                .map(|&(i, _)| idx < i)
                .unwrap_or(true)
            {
                self.at_bound = Some((idx, s));
            }
        }
        if let Some((len, idx, s)) = other.any {
            if self
                .any
                .as_ref()
                .map(|&(l, i, _)| (len, idx) < (l, i))
                .unwrap_or(true)
            {
                self.any = Some((len, idx, s));
            }
        }
        if let Some((idx, e)) = other.err {
            if self.err.as_ref().map(|&(i, _)| idx > i).unwrap_or(true) {
                self.err = Some((idx, e));
            }
        }
        self
    }

    fn winner(self) -> Result<Schedule, SchedError> {
        if let Some((_, s)) = self.at_bound {
            return Ok(s);
        }
        if let Some((_, _, s)) = self.any {
            return Ok(s);
        }
        Err(self.err.expect("at least one attempt ran").1)
    }
}

/// Resolves a thread-count knob: `0` = one per available core (capped at
/// 8 — attempts are short, oversubscription only adds latency), clamped
/// to the number of attempts.
fn resolve_threads(threads: usize, total: u32) -> usize {
    let resolved = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        threads
    };
    resolved.clamp(1, total.max(1) as usize)
}

/// As [`best_effort_schedule_threaded`], with a caller-provided conflict
/// matrix (reused across the compaction pipeline).
///
/// The restart engine. Attempts form a fixed enumeration of
/// `(priority, jitter seed, algorithm)` triples, grouped into **rounds**:
/// round 0 holds the 12 unjittered attempts (4 priorities × 3
/// algorithms), every later round holds the 3 algorithm attempts of one
/// `(priority, jittered seed)` pair. Two stopping rules bound the work:
///
/// * **Bound cutoff** — the moment an attempt meets the provable length
///   lower bound ([`crate::bounds`]) the engine returns it: nothing can
///   beat it.
/// * **Stagnation** — once at least one schedule exists, any jittered
///   round that fails to improve the best length abandons the remaining
///   rounds: the unjittered roster already ran, and one fruitless jitter
///   round is the evidence that tie-break noise is not what this program
///   needs. (This is the stopping rule the old "always burn every seed"
///   loop lacked. While every attempt still fails a tight budget, all
///   rounds run — a later seed may be the first feasible one.)
///
/// Rounds are evaluated one after another; *within* a round, attempts run
/// on the worker threads. The reduction is by rule, not arrival order —
/// winner = bound-meeting attempt with the smallest enumeration index if
/// any, else minimum `(length, index)` — and stop decisions sit at round
/// barriers, so the result is **bit-identical for every thread count**.
///
/// # Errors
///
/// See [`best_effort_schedule`].
pub fn best_effort_schedule_with(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    budget: Option<u32>,
    restarts: u32,
    threads: usize,
) -> Result<Schedule, SchedError> {
    // The stopping rule: computed once per run (not per single-pass entry
    // point — the single-pass schedulers have no restart loop to stop).
    let bound = crate::bounds::length_lower_bound(program, deps, matrix);
    best_effort_bounded(
        program,
        deps,
        matrix,
        budget,
        restarts,
        threads,
        bound,
        &mut Fuel::unlimited(),
        None,
    )
    .map(|(schedule, _)| schedule)
}

/// The restart engine behind [`best_effort_schedule_with`], taking the
/// already-computed length lower bound so callers that need the bound
/// themselves (the compaction pipeline) don't pay for it twice.
///
/// `fuel` is charged one unit per attempt, at round barriers only.
/// Round 0 (the unjittered roster) is mandatory — it charges
/// saturating, so even a zero budget yields a best-effort schedule —
/// while every jittered round must pay up front or the run ends there.
/// The returned `u64` counts the attempts that were skipped because fuel
/// ran out (`0` = the search was not truncated). `cancel` is polled at
/// the same barriers; a raised token aborts with
/// [`SchedError::Cancelled`] and discards the partial result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_effort_bounded(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    budget: Option<u32>,
    restarts: u32,
    threads: usize,
    bound: u32,
    fuel: &mut Fuel,
    cancel: Option<&CancelToken>,
) -> Result<(Schedule, u64), SchedError> {
    let ctx = ScheduleContext::build(program, deps, budget);
    let reversed = deps.reversed();
    let ctx_rev = ScheduleContext::build(program, &reversed, budget);
    let set = AttemptSet {
        program,
        deps,
        reversed,
        matrix,
        ctx,
        ctx_rev,
        budget,
    };
    // Fixed enumeration: round 0 = all priorities × algorithms at seed 0,
    // then one (priority, seed) round of 3 algorithms per jittered seed.
    let mut attempts: Vec<(Priority, u64, Algo)> = Vec::new();
    let mut rounds: Vec<std::ops::Range<usize>> = Vec::new();
    for priority in ATTEMPT_PRIORITIES {
        for algo in ATTEMPT_ALGOS {
            attempts.push((priority, 0, algo));
        }
    }
    rounds.push(0..attempts.len());
    for seed in 1..=restarts as u64 {
        for priority in ATTEMPT_PRIORITIES {
            let start = attempts.len();
            for algo in ATTEMPT_ALGOS {
                attempts.push((priority, seed, algo));
            }
            rounds.push(start..attempts.len());
        }
    }
    let threads = resolve_threads(threads, rounds[0].len() as u32);
    let mut outcome = BestOutcome::default();
    let mut scratch = SchedScratch::default();
    let mut skipped = 0u64;
    for (r, range) in rounds.iter().enumerate() {
        // Cancellation and fuel both live at the round barrier: the
        // decision to run a round is taken once, serially, so budgeted
        // output stays bit-identical for every thread count.
        if cancel.map(CancelToken::is_cancelled).unwrap_or(false) {
            return Err(SchedError::Cancelled);
        }
        if r == 0 {
            // The baseline roster is mandatory — exhaustion must still
            // yield a schedule to degrade to.
            fuel.charge_saturating(range.len() as u64);
        } else if !fuel.try_charge(range.len() as u64) {
            skipped = (attempts.len() - range.start) as u64;
            break;
        }
        let before = outcome.best_len();
        // Jittered rounds hold only 3 short attempts — too little work to
        // amortise a thread spawn — so only round 0 fans out.
        if threads <= 1 || range.len() < 6 {
            for idx in range.clone() {
                let cutoff = outcome.best_len();
                outcome.note(
                    idx as u32,
                    set.run(&attempts[idx], &mut scratch, cutoff),
                    bound,
                );
                if outcome.bound_met() {
                    return outcome.winner().map(|s| (s, 0));
                }
            }
        } else {
            outcome = parallel_round(&set, &attempts, range.clone(), bound, threads, outcome);
            if outcome.bound_met() {
                return outcome.winner().map(|s| (s, 0));
            }
        }
        // Stagnation: a jittered round that improved nothing ends the run
        // — but never before *some* schedule exists, else a budgeted call
        // would forfeit restarts that could still find a feasible one.
        if r >= 1 && outcome.any.is_some() && outcome.best_len() >= before {
            break;
        }
    }
    outcome.winner().map(|s| (s, skipped))
}

/// Evaluates one round's attempts on `threads` workers, merging into
/// `outcome`. Work-stealing over the round's index range; a worker skips
/// index `k` only when a bound-meeting attempt with index `< k` is
/// already recorded (which beats `k` under the reduction rule whatever
/// `k` would produce), so the rule-chosen winner is always evaluated.
fn parallel_round(
    set: &AttemptSet<'_>,
    attempts: &[(Priority, u64, Algo)],
    range: std::ops::Range<usize>,
    bound: u32,
    threads: usize,
    outcome: BestOutcome,
) -> BestOutcome {
    let next = AtomicU32::new(range.start as u32);
    let end = range.end as u32;
    // Best known `(length << 32 | index)` with length ≤ bound, for the
    // skip rule; `u64::MAX` = none yet.
    let best_packed = AtomicU64::new(u64::MAX);
    let workers = threads.min(range.len());
    let locals = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = BestOutcome::default();
                    let mut scratch = SchedScratch::default();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= end {
                            break;
                        }
                        let packed = best_packed.load(Ordering::Acquire);
                        if packed != u64::MAX && (packed as u32) < idx {
                            // A bound-meeting attempt with a smaller index
                            // exists; it also beats every later index this
                            // worker would pull.
                            break;
                        }
                        let result = set.run(&attempts[idx as usize], &mut scratch, u32::MAX);
                        if let Ok(s) = &result {
                            let len = s.length();
                            if len <= bound {
                                best_packed.fetch_min(
                                    (u64::from(len) << 32) | u64::from(idx),
                                    Ordering::AcqRel,
                                );
                            }
                        }
                        local.note(idx, result, bound);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduler worker panicked"))
            .collect::<Vec<_>>()
    });
    locals.into_iter().fold(outcome, BestOutcome::merge)
}

/// Insertion scheduling: RTs are placed one at a time, each into the
/// *earliest* cycle where its predecessors have delivered and no placed RT
/// conflicts. Chains then pack like bricks — each pipeline lane slides in
/// behind the previous one — which suits the steady-state resource
/// saturation of DSP time-loops far better than cycle-by-cycle greediness.
///
/// RTs are visited in topological order, most urgent first among ready
/// ones (`priority`/`jitter_seed` as in [`ListConfig`]).
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when an RT cannot be placed
/// within the budget.
pub fn insertion_schedule(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let ctx = ScheduleContext::build(program, deps, config.budget);
    insertion_schedule_in(
        program,
        deps,
        matrix,
        config,
        &ctx,
        &mut SchedScratch::default(),
    )
}

/// As [`insertion_schedule`], with caller-provided context and scratch
/// (the restart-loop entry point: no per-attempt recomputation of
/// ASAP/ALAP and no per-attempt allocation).
pub fn insertion_schedule_in(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
    ctx: &ScheduleContext,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let n = program.rt_count();
    if n == 0 {
        return Ok(Schedule::new());
    }
    let words = matrix.words_per_row();
    scratch.compute_keys(ctx, config);
    scratch.issue.clear();
    scratch.issue.resize(n, None);
    scratch.remaining_preds.clear();
    scratch
        .remaining_preds
        .extend((0..n).map(|i| deps.predecessors(RtId(i as u32)).count()));
    scratch.heap.clear();
    for i in 0..n {
        if scratch.remaining_preds[i] == 0 {
            scratch.heap.push(std::cmp::Reverse((scratch.keys[i], i)));
        }
    }
    scratch.cycle_occ.clear();

    let limit = config
        .budget
        .unwrap_or(u32::MAX)
        .min(ctx.horizon + n as u32);
    scratch.hints.clear();
    scratch.hints.resize(matrix.class_count(), 0);
    let mut unplaced = n;
    while unplaced > 0 {
        // Most urgent ready RT (ties by RT id).
        let std::cmp::Reverse((_, rt)) = scratch
            .heap
            .pop()
            .expect("acyclic graph always has a ready RT");
        let id = RtId(rt as u32);
        let mut earliest = ctx.asap[rt];
        for (pred, lat) in deps.predecessors(id) {
            earliest = earliest.max(scratch.issue[pred.0 as usize].expect("topo order") + lat);
        }
        // Probe from the row-class hint when it already covers
        // `earliest`: every skipped cycle failed `fits_mask` for an RT
        // with an identical conflict row, and occupancy only grows, so
        // the outcome is the same with none of the probes.
        let class = matrix.row_class(id) as usize;
        let hint = scratch.hints[class];
        let (start, contiguous) = if hint >= earliest {
            (hint, true)
        } else {
            (earliest, false)
        };
        let mut placed = false;
        for t in start..limit {
            let base = t as usize * words;
            if scratch.cycle_occ.len() < base + words {
                scratch.cycle_occ.resize(base + words, 0);
            }
            let occ = &mut scratch.cycle_occ[base..base + words];
            if matrix.fits_mask(id, occ) {
                occ[rt / 64] |= 1 << (rt % 64);
                scratch.issue[rt] = Some(t);
                if contiguous {
                    scratch.hints[class] = t;
                }
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(SchedError::BudgetExceeded {
                budget: limit,
                unplaced,
            });
        }
        unplaced -= 1;
        for (succ, _) in deps.successors(id) {
            let s = succ.0 as usize;
            scratch.remaining_preds[s] -= 1;
            if scratch.remaining_preds[s] == 0 {
                scratch.heap.push(std::cmp::Reverse((scratch.keys[s], s)));
            }
        }
    }
    let mut schedule = Schedule::new();
    for (i, t) in scratch.issue.iter().enumerate() {
        schedule.place(RtId(i as u32), t.expect("all placed"));
    }
    Ok(schedule)
}

/// Deterministic per-RT hash for tie-break jitter (splitmix64).
fn jitter(rt: usize, seed: u64) -> u64 {
    let mut z = (rt as u64).wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs list scheduling.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] if a budget is set and some RT
/// cannot be placed within it.
pub fn list_schedule(
    program: &Program,
    deps: &DependenceGraph,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let matrix = ConflictMatrix::build(program);
    list_schedule_with_matrix(program, deps, &matrix, config)
}

/// As [`list_schedule`], with a caller-provided conflict matrix (reused
/// across repeated scheduling runs).
pub fn list_schedule_with_matrix(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let ctx = ScheduleContext::build(program, deps, config.budget);
    list_schedule_in(
        program,
        deps,
        matrix,
        config,
        &ctx,
        &mut SchedScratch::default(),
    )
}

/// As [`list_schedule_with_matrix`], with caller-provided context and
/// scratch (the restart-loop entry point).
pub fn list_schedule_in(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
    ctx: &ScheduleContext,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let n = program.rt_count();
    if n == 0 {
        return Ok(Schedule::new());
    }
    let words = matrix.words_per_row();
    scratch.compute_keys(ctx, config);
    scratch.issue.clear();
    scratch.issue.resize(n, None);
    scratch.remaining_preds.clear();
    scratch
        .remaining_preds
        .extend((0..n).map(|i| deps.predecessors(RtId(i as u32)).count()));
    // earliest[rt]: max over scheduled preds of issue+latency, and asap.
    scratch.earliest.clear();
    scratch.earliest.extend_from_slice(&ctx.asap);
    scratch.occ.clear();
    scratch.occ.resize(words, 0);
    // Candidate pool: RTs whose predecessors have all issued, sorted by
    // `(priority key, RT id)` and maintained incrementally — the per-cycle
    // work is proportional to the pool, not to the whole program.
    scratch.pool.clear();
    for i in 0..n {
        if scratch.remaining_preds[i] == 0 {
            scratch.pool.push((scratch.keys[i], i));
        }
    }
    scratch.pool.sort_unstable();
    scratch.arrivals.clear();

    let mut unscheduled = n;
    let mut schedule = Schedule::new();
    let mut t: u32 = 0;
    while unscheduled > 0 {
        if let Some(budget) = config.budget {
            if t >= budget {
                return Err(SchedError::BudgetExceeded {
                    budget,
                    unplaced: unscheduled,
                });
            }
        }
        // Pack the instruction, most urgent candidate first (candidates
        // whose latency window is still open wait in the pool): occupancy
        // bitset makes each fit check one row-AND.
        scratch.occ.fill(0);
        let mut placed_any = false;
        for pi in 0..scratch.pool.len() {
            let (_, i) = scratch.pool[pi];
            if scratch.earliest[i] > t {
                continue;
            }
            let rt = RtId(i as u32);
            if matrix.fits_mask(rt, &scratch.occ) {
                scratch.occ[i / 64] |= 1 << (i % 64);
                scratch.issue[i] = Some(t);
                schedule.place(rt, t);
                placed_any = true;
                unscheduled -= 1;
                for (succ, lat) in deps.successors(rt) {
                    let s = succ.0 as usize;
                    scratch.remaining_preds[s] -= 1;
                    scratch.earliest[s] = scratch.earliest[s].max(t + lat);
                    if scratch.remaining_preds[s] == 0 {
                        scratch.arrivals.push(s);
                    }
                }
            }
        }
        if placed_any {
            let issue = &scratch.issue;
            scratch.pool.retain(|&(_, i)| issue[i].is_none());
        }
        // RTs released this cycle join the pool for the *next* cycle (a
        // zero-separation successor still cannot issue in the cycle that
        // freed it, exactly as with the per-cycle ready re-scan).
        for k in 0..scratch.arrivals.len() {
            let s = scratch.arrivals[k];
            let entry = (scratch.keys[s], s);
            let pos = scratch.pool.partition_point(|&e| e < entry);
            scratch.pool.insert(pos, entry);
        }
        scratch.arrivals.clear();
        t += 1;
        // Safety valve: without a budget the loop must still terminate.
        if t > ctx.horizon + n as u32 + 8 {
            return Err(SchedError::Dependences(
                "scheduler failed to make progress".to_owned(),
            ));
        }
    }
    Ok(schedule)
}

/// Backward insertion scheduling: runs [`insertion_schedule`] on the
/// time-mirrored dependence graph and flips the result, so every RT lands
/// at its *latest* feasible cycle. Complements forward insertion on
/// programs whose sinks (output writes, stores) crowd the end of the
/// time-loop.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when the mirrored placement
/// cannot fit the budget.
pub fn backward_insertion_schedule(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let reversed = deps.reversed();
    let ctx_rev = ScheduleContext::build(program, &reversed, config.budget);
    backward_insertion_schedule_in(
        program,
        &reversed,
        matrix,
        config,
        &ctx_rev,
        &mut SchedScratch::default(),
    )
}

/// As [`backward_insertion_schedule`], with the *reversed* dependence
/// graph, its context, and scratch provided by the caller so the mirror is
/// built once per run instead of once per restart.
pub fn backward_insertion_schedule_in(
    program: &Program,
    reversed_deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
    ctx_rev: &ScheduleContext,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let mirrored = insertion_schedule_in(program, reversed_deps, matrix, config, ctx_rev, scratch)?;
    let len = mirrored.length();
    let mut flipped = Schedule::new();
    for (t, instr) in mirrored.instructions() {
        for &rt in instr {
            flipped.place(rt, len - 1 - t);
        }
    }
    Ok(flipped)
}

/// ALAP of the most urgent transitive sink of each RT (the RT's own ALAP
/// for sinks) — the lane-coherent deadline of [`Priority::SinkAlap`].
fn sink_alaps(deps: &DependenceGraph, alap: &[u32]) -> Vec<u32> {
    let order = deps.topological_order();
    let mut sink = vec![u32::MAX; deps.rt_count()];
    for &rt in order.iter().rev() {
        let i = rt.0 as usize;
        let mut best = u32::MAX;
        for (succ, _) in deps.successors(rt) {
            best = best.min(sink[succ.0 as usize]);
        }
        sink[i] = if best == u32::MAX { alap[i] } else { best };
    }
    sink
}

/// The deadline target used for priority computation: the larger of the
/// budget (if any), the critical path, and the distinct-usage resource
/// pressure (the allocation-free bound from [`crate::bounds`] — this runs
/// once per context build, i.e. on every scheduling call).
fn priority_target(program: &Program, deps: &DependenceGraph, budget: Option<u32>) -> u32 {
    budget
        .unwrap_or(0)
        .max(deps.critical_path() + 1)
        .max(distinct_usage_bound(program))
}

/// Longest-chain depth of each RT (number of latency-weighted cycles of
/// work after it) — the critical-path priority.
fn successor_depths(deps: &DependenceGraph) -> Vec<u32> {
    let order = deps.topological_order();
    let mut depth = vec![0u32; deps.rt_count()];
    for &rt in order.iter().rev() {
        let i = rt.0 as usize;
        for (succ, lat) in deps.successors(rt) {
            depth[i] = depth[i].max(depth[succ.0 as usize] + lat);
        }
    }
    depth
}

/// Upper bound on schedule length: every RT in its own cycle after its
/// predecessors.
fn serial_upper_bound(program: &Program, deps: &DependenceGraph) -> u32 {
    program.rt_count() as u32 + deps.critical_path() + 1
}

/// Resource-pressure estimate used as a *priority target* — for each
/// resource, the number of usage occurrences. Identical usages may
/// legally share a cycle, so this can exceed the true optimum; use
/// [`crate::bounds`] for sound termination bounds.
pub fn resource_lower_bound(program: &Program) -> u32 {
    use std::collections::BTreeMap;
    let mut demand: BTreeMap<&str, BTreeMap<String, usize>> = BTreeMap::new();
    for (_, rt) in program.rts() {
        for (res, usage) in rt.usages() {
            *demand
                .entry(res.name())
                .or_default()
                .entry(usage.to_string())
                .or_insert(0) += 1;
        }
    }
    // Identical usages can share one cycle only if the whole RTs are
    // identical; counting each usage occurrence separately is the safe
    // bound for distinct transfers (distinct data ⇒ distinct bus usage
    // anyway). We count occurrences, which is exact for bus-carrying
    // resources and slightly optimistic for pure-token ones.
    demand
        .values()
        .map(|usages| usages.values().sum::<usize>() as u32)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_ir::{Rt, Usage};

    /// Two independent chains const→mult→add sharing one ALU/MULT/ROM.
    fn two_chain_program() -> Program {
        let mut p = Program::new();
        for k in 0..2 {
            let vc = p.add_value(format!("c{k}"));
            let vm = p.add_value(format!("m{k}"));
            let mut c = Rt::new(format!("const{k}"));
            c.add_def(vc);
            c.add_usage("rom", Usage::token("const"));
            c.add_usage("bus_rom", Usage::apply("const", [format!("c{k}")]));
            let mut m = Rt::new(format!("mult{k}"));
            m.add_use(vc);
            m.add_def(vm);
            m.add_usage("mult", Usage::token("mult"));
            m.add_usage("bus_mult", Usage::apply("mult", [format!("m{k}")]));
            let mut a = Rt::new(format!("add{k}"));
            a.add_use(vm);
            a.add_usage("alu", Usage::token("add"));
            a.add_usage("bus_alu", Usage::apply("add", [format!("a{k}")]));
            p.add_rt(c);
            p.add_rt(m);
            p.add_rt(a);
        }
        p
    }

    fn schedule_ok(p: &Program, config: &ListConfig) -> Schedule {
        let deps = DependenceGraph::build(p).unwrap();
        let s = list_schedule(p, &deps, config).unwrap();
        s.verify(p, &deps).unwrap();
        s
    }

    #[test]
    fn pipelines_two_chains_in_four_cycles() {
        // chain k issues const@t, mult@t+1, add@t+2; second chain offset 1
        // because rom/mult/alu busy → total 4 cycles.
        let p = two_chain_program();
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 4);
        assert!(s.parallelism() > 1.0);
    }

    #[test]
    fn budget_met_exactly() {
        let p = two_chain_program();
        let s = schedule_ok(&p, &ListConfig::with_budget(4));
        assert!(s.length() <= 4);
    }

    #[test]
    fn budget_too_tight_reported() {
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        let err = list_schedule(&p, &deps, &ListConfig::with_budget(3)).unwrap_err();
        match err {
            SchedError::BudgetExceeded {
                budget: 3,
                unplaced,
            } => assert!(unplaced >= 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_priorities_produce_valid_schedules() {
        let p = two_chain_program();
        for priority in [
            Priority::Slack,
            Priority::CriticalPath,
            Priority::SourceOrder,
        ] {
            let s = schedule_ok(
                &p,
                &ListConfig {
                    budget: None,
                    priority,
                    jitter_seed: 0,
                },
            );
            assert!(s.length() >= 4);
        }
    }

    #[test]
    fn empty_program_schedules_to_zero() {
        let p = Program::new();
        let deps = DependenceGraph::build(&p).unwrap();
        let s = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        assert_eq!(s.length(), 0);
    }

    #[test]
    fn independent_compatible_rts_share_one_cycle() {
        let mut p = Program::new();
        for name in ["a", "b", "c"] {
            let mut rt = Rt::new(name);
            rt.add_usage(format!("opu_{name}").as_str(), Usage::token("op"));
            p.add_rt(rt);
        }
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 1);
        assert_eq!(s.instruction(0).len(), 3);
    }

    #[test]
    fn artificial_resource_serialises_classes() {
        // Two RTs on different OPUs but conflicting via an artificial
        // resource (the whole point of the paper).
        let mut p = Program::new();
        let mut a = Rt::new("a");
        a.add_usage("opu_a", Usage::token("op"));
        a.add_usage("AB", Usage::token("A"));
        let mut b = Rt::new("b");
        b.add_usage("opu_b", Usage::token("op"));
        b.add_usage("AB", Usage::token("B"));
        p.add_rt(a);
        p.add_rt(b);
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn resource_lower_bound_counts_busiest_resource() {
        let p = two_chain_program();
        // rom, mult, alu each used twice (distinct data) → bound 2.
        assert_eq!(resource_lower_bound(&p), 2);
        assert_eq!(resource_lower_bound(&Program::new()), 0);
    }

    #[test]
    fn latency_respected_in_schedule() {
        let mut p = Program::new();
        let v = p.add_value("v");
        let mut producer = Rt::new("m");
        producer.set_latency(3);
        producer.add_def(v);
        producer.add_usage("mult", Usage::token("mult"));
        let mut consumer = Rt::new("a");
        consumer.add_use(v);
        consumer.add_usage("alu", Usage::token("add"));
        p.add_rt(producer);
        p.add_rt(consumer);
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 4); // issue at 0, consumer at 3
    }

    #[test]
    fn scratch_reuse_across_attempts_matches_fresh_runs() {
        // The same (program, config) must produce identical schedules
        // whether scratch/context are fresh or reused from another attempt.
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        let ctx = ScheduleContext::build(&p, &deps, None);
        let mut scratch = SchedScratch::default();
        let config = ListConfig::default();
        let first = list_schedule_in(&p, &deps, &matrix, &config, &ctx, &mut scratch).unwrap();
        // Dirty the scratch with a different attempt, then repeat.
        let other = ListConfig {
            budget: None,
            priority: Priority::CriticalPath,
            jitter_seed: 3,
        };
        let _ = insertion_schedule_in(&p, &deps, &matrix, &other, &ctx, &mut scratch);
        let second = list_schedule_in(&p, &deps, &matrix, &config, &ctx, &mut scratch).unwrap();
        assert_eq!(first, second);
        let fresh = list_schedule(&p, &deps, &config).unwrap();
        assert_eq!(first, fresh);
    }

    #[test]
    fn best_effort_beats_or_matches_single_pass() {
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        let best = best_effort_schedule(&p, &deps, None, 2).unwrap();
        best.verify(&p, &deps).unwrap();
        let single = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        assert!(best.length() <= single.length());
    }

    #[test]
    fn thread_count_never_changes_the_schedule() {
        // The acceptance property of the parallel engine: identical
        // schedules for identical inputs regardless of thread count.
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        for restarts in [0u32, 2, 5] {
            let serial = best_effort_schedule_threaded(&p, &deps, None, restarts, 1).unwrap();
            for threads in [0usize, 2, 3, 7, 16] {
                let t = best_effort_schedule_threaded(&p, &deps, None, restarts, threads).unwrap();
                assert_eq!(serial, t, "restarts {restarts}, threads {threads}");
            }
        }
    }

    #[test]
    fn bound_met_schedule_is_optimal_and_stops_early() {
        // A single const→mult→add chain: the critical-path bound (3) is
        // tight and the first insertion attempt meets it, so the engine
        // returns a provably optimal schedule (and stops there).
        let mut p = Program::new();
        let vc = p.add_value("c");
        let vm = p.add_value("m");
        let mut c = Rt::new("const");
        c.add_def(vc);
        c.add_usage("rom", Usage::token("const"));
        let mut m = Rt::new("mult");
        m.add_use(vc);
        m.add_def(vm);
        m.add_usage("mult", Usage::token("mult"));
        let mut a = Rt::new("add");
        a.add_use(vm);
        a.add_usage("alu", Usage::token("add"));
        p.add_rt(c);
        p.add_rt(m);
        p.add_rt(a);
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        let bound = crate::bounds::length_lower_bound(&p, &deps, &matrix);
        assert_eq!(bound, 3);
        let best = best_effort_schedule(&p, &deps, None, 4).unwrap();
        assert_eq!(best.length(), bound);
    }
}
