//! Priority-based list scheduling under a cycle budget.
//!
//! The production scheduler: cycle by cycle, ready RTs are packed into the
//! current instruction in priority order, most-urgent first. Thanks to the
//! RT-modification step, "ready and pairwise compatible" is the *complete*
//! legality condition — datapath and instruction set are both encoded in
//! the usage maps.
//!
//! # Performance notes
//!
//! The innermost operation — "does RT r fit the instruction under
//! construction?" — is answered by ANDing r's packed conflict row against a
//! per-cycle **occupancy bitset** ([`ConflictMatrix::fits_mask`]): one
//! word-parallel pass instead of a loop over the cycle's RTs. The
//! per-schedule priority data (ASAP/ALAP/depth/sink deadlines) is computed
//! once in a [`ScheduleContext`] and shared across all restarts of
//! [`best_effort_schedule`], which also reuses one [`SchedScratch`] buffer
//! set for every attempt, so restarts allocate nothing but the winning
//! schedule.

use dspcc_ir::{Program, RtId};

use crate::deps::DependenceGraph;
use crate::schedule::{ConflictMatrix, SchedError, Schedule};

/// Priority function for choosing among ready RTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Least slack (ALAP − ASAP) first, then deepest successor chain —
    /// the strongest heuristic for tight budgets.
    #[default]
    Slack,
    /// Earliest deadline (ALAP) first, then deepest successor chain —
    /// saturates pipelined resource chains well.
    Alap,
    /// Deadline of the most urgent transitive *sink* first, then own
    /// deadline. Keeps whole dependence "lanes" together: all feeders of
    /// an urgent output chain go before any feeder of a later one, which
    /// is what lets uniform DSP time-loops finish lanes in deadline order
    /// instead of finishing everything at once.
    SinkAlap,
    /// Deepest successor chain (critical path) first.
    CriticalPath,
    /// Program (source) order — the weakest baseline.
    SourceOrder,
}

/// Configuration of [`list_schedule`].
#[derive(Debug, Clone, Default)]
pub struct ListConfig {
    /// Hard cycle budget; `None` schedules without a deadline.
    pub budget: Option<u32>,
    /// Priority function.
    pub priority: Priority,
    /// Deterministic tie-break perturbation; 0 is unperturbed. Randomised
    /// restarts over a handful of seeds recover most of the gap between
    /// one greedy pass and an exact schedule (see
    /// [`best_effort_schedule`]).
    pub jitter_seed: u64,
}

impl ListConfig {
    /// Config with a hard budget and default priority.
    pub fn with_budget(budget: u32) -> Self {
        ListConfig {
            budget: Some(budget),
            ..ListConfig::default()
        }
    }
}

/// Priority data shared by every restart of a scheduling run: ASAP/ALAP
/// windows, critical-path depths, and lane (sink) deadlines, all computed
/// **once** per `(program, deps, budget)` instead of per attempt.
#[derive(Debug, Clone)]
pub struct ScheduleContext {
    asap: Vec<u32>,
    alap: Vec<u32>,
    depth: Vec<u32>,
    sink: Vec<u32>,
    horizon: u32,
}

impl ScheduleContext {
    /// Computes the context for scheduling `program` under `budget`.
    pub fn build(program: &Program, deps: &DependenceGraph, budget: Option<u32>) -> Self {
        let asap = deps.asap();
        let horizon = budget.unwrap_or_else(|| serial_upper_bound(program, deps));
        // Deadlines for the *priority* functions are computed against a
        // tight target — the best conceivable schedule — regardless of the
        // actual budget; loose deadlines make every priority meaningless.
        let target = priority_target(program, deps, budget);
        let alap = deps.alap(target);
        let depth = successor_depths(deps);
        let sink = sink_alaps(deps, &alap);
        ScheduleContext {
            asap,
            alap,
            depth,
            sink,
            horizon,
        }
    }
}

/// Reusable buffers for the scheduler inner loops. One instance serves any
/// number of attempts (sizes are re-established per attempt); restarts in
/// [`best_effort_schedule`] share a single scratch.
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// Priority key per RT for the current attempt.
    keys: Vec<(i64, i64, i64, i64)>,
    /// Issue cycle per RT (`None` = unplaced).
    issue: Vec<Option<u32>>,
    /// Unscheduled-predecessor counts.
    remaining_preds: Vec<usize>,
    /// Earliest feasible cycle per RT (ASAP ∨ pred issue + latency).
    earliest: Vec<u32>,
    /// Ready worklist.
    ready: Vec<usize>,
    /// Per-cycle occupancy bitsets, `words_per_row` words per cycle
    /// (insertion scheduling).
    cycle_occ: Vec<u64>,
    /// Single-cycle occupancy bitset (list scheduling).
    occ: Vec<u64>,
}

impl SchedScratch {
    /// Fills `keys` for this attempt's priority function and jitter seed.
    fn compute_keys(&mut self, ctx: &ScheduleContext, config: &ListConfig) {
        let n = ctx.asap.len();
        self.keys.clear();
        self.keys.reserve(n);
        for rt in 0..n {
            let tie = if config.jitter_seed == 0 {
                rt as i64
            } else {
                (jitter(rt, config.jitter_seed) & 0xFFFF) as i64
            };
            let (asap, alap) = (ctx.asap[rt] as i64, ctx.alap[rt] as i64);
            let depth = ctx.depth[rt] as i64;
            self.keys.push(match config.priority {
                Priority::Slack => (alap - asap, -depth, tie, 0),
                Priority::Alap => (alap, -depth, tie, 0),
                Priority::SinkAlap => (ctx.sink[rt] as i64, alap, -depth, tie),
                Priority::CriticalPath => (-depth, alap, tie, 0),
                Priority::SourceOrder => (rt as i64, 0, 0, 0),
            });
        }
    }
}

/// Runs list scheduling over several priorities and jitter seeds, keeping
/// the shortest verified schedule. `restarts` counts jittered attempts
/// per priority (beyond the unjittered one).
///
/// The conflict matrix, dependence contexts (forward and time-mirrored),
/// and scratch buffers are built once and shared by every attempt.
///
/// # Errors
///
/// Returns the best schedule found; [`SchedError::BudgetExceeded`] only
/// if *no* attempt fits the budget.
pub fn best_effort_schedule(
    program: &Program,
    deps: &DependenceGraph,
    budget: Option<u32>,
    restarts: u32,
) -> Result<Schedule, SchedError> {
    let matrix = ConflictMatrix::build(program);
    let ctx = ScheduleContext::build(program, deps, budget);
    let reversed = deps.reversed();
    let ctx_rev = ScheduleContext::build(program, &reversed, budget);
    let mut scratch = SchedScratch::default();
    let mut best: Option<Schedule> = None;
    let mut last_err = None;
    let mut consider = |result: Result<Schedule, SchedError>| match result {
        Ok(s) => {
            if best
                .as_ref()
                .map(|b| s.length() < b.length())
                .unwrap_or(true)
            {
                best = Some(s);
            }
        }
        Err(e) => last_err = Some(e),
    };
    for priority in [
        Priority::SinkAlap,
        Priority::Slack,
        Priority::Alap,
        Priority::CriticalPath,
    ] {
        for seed in 0..=restarts as u64 {
            let config = ListConfig {
                budget,
                priority,
                jitter_seed: seed,
            };
            consider(insertion_schedule_in(
                program,
                deps,
                &matrix,
                &config,
                &ctx,
                &mut scratch,
            ));
            consider(backward_insertion_schedule_in(
                program,
                &reversed,
                &matrix,
                &config,
                &ctx_rev,
                &mut scratch,
            ));
            consider(list_schedule_in(
                program,
                deps,
                &matrix,
                &config,
                &ctx,
                &mut scratch,
            ));
        }
    }
    match best {
        Some(s) => Ok(s),
        None => Err(last_err.expect("at least one attempt ran")),
    }
}

/// Insertion scheduling: RTs are placed one at a time, each into the
/// *earliest* cycle where its predecessors have delivered and no placed RT
/// conflicts. Chains then pack like bricks — each pipeline lane slides in
/// behind the previous one — which suits the steady-state resource
/// saturation of DSP time-loops far better than cycle-by-cycle greediness.
///
/// RTs are visited in topological order, most urgent first among ready
/// ones (`priority`/`jitter_seed` as in [`ListConfig`]).
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when an RT cannot be placed
/// within the budget.
pub fn insertion_schedule(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let ctx = ScheduleContext::build(program, deps, config.budget);
    insertion_schedule_in(
        program,
        deps,
        matrix,
        config,
        &ctx,
        &mut SchedScratch::default(),
    )
}

/// As [`insertion_schedule`], with caller-provided context and scratch
/// (the restart-loop entry point: no per-attempt recomputation of
/// ASAP/ALAP and no per-attempt allocation).
pub fn insertion_schedule_in(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
    ctx: &ScheduleContext,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let n = program.rt_count();
    if n == 0 {
        return Ok(Schedule::new());
    }
    let words = matrix.words_per_row();
    scratch.compute_keys(ctx, config);
    scratch.issue.clear();
    scratch.issue.resize(n, None);
    scratch.remaining_preds.clear();
    scratch
        .remaining_preds
        .extend((0..n).map(|i| deps.predecessors(RtId(i as u32)).count()));
    scratch.ready.clear();
    scratch
        .ready
        .extend((0..n).filter(|&i| scratch.remaining_preds[i] == 0));
    scratch.cycle_occ.clear();

    let limit = config
        .budget
        .unwrap_or(u32::MAX)
        .min(ctx.horizon + n as u32);
    let mut unplaced = n;
    while unplaced > 0 {
        // Most urgent ready RT.
        let (pos, &rt) = scratch
            .ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| scratch.keys[i])
            .expect("acyclic graph always has a ready RT");
        scratch.ready.swap_remove(pos);
        let id = RtId(rt as u32);
        let mut earliest = ctx.asap[rt];
        for (pred, lat) in deps.predecessors(id) {
            earliest = earliest.max(scratch.issue[pred.0 as usize].expect("topo order") + lat);
        }
        let mut placed = false;
        for t in earliest..limit {
            let base = t as usize * words;
            if scratch.cycle_occ.len() < base + words {
                scratch.cycle_occ.resize(base + words, 0);
            }
            let occ = &mut scratch.cycle_occ[base..base + words];
            if matrix.fits_mask(id, occ) {
                occ[rt / 64] |= 1 << (rt % 64);
                scratch.issue[rt] = Some(t);
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(SchedError::BudgetExceeded {
                budget: limit,
                unplaced,
            });
        }
        unplaced -= 1;
        for (succ, _) in deps.successors(id) {
            let s = succ.0 as usize;
            scratch.remaining_preds[s] -= 1;
            if scratch.remaining_preds[s] == 0 {
                scratch.ready.push(s);
            }
        }
    }
    let mut schedule = Schedule::new();
    for (i, t) in scratch.issue.iter().enumerate() {
        schedule.place(RtId(i as u32), t.expect("all placed"));
    }
    Ok(schedule)
}

/// Deterministic per-RT hash for tie-break jitter (splitmix64).
fn jitter(rt: usize, seed: u64) -> u64 {
    let mut z = (rt as u64).wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs list scheduling.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] if a budget is set and some RT
/// cannot be placed within it.
pub fn list_schedule(
    program: &Program,
    deps: &DependenceGraph,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let matrix = ConflictMatrix::build(program);
    list_schedule_with_matrix(program, deps, &matrix, config)
}

/// As [`list_schedule`], with a caller-provided conflict matrix (reused
/// across repeated scheduling runs).
pub fn list_schedule_with_matrix(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let ctx = ScheduleContext::build(program, deps, config.budget);
    list_schedule_in(
        program,
        deps,
        matrix,
        config,
        &ctx,
        &mut SchedScratch::default(),
    )
}

/// As [`list_schedule_with_matrix`], with caller-provided context and
/// scratch (the restart-loop entry point).
pub fn list_schedule_in(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
    ctx: &ScheduleContext,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let n = program.rt_count();
    if n == 0 {
        return Ok(Schedule::new());
    }
    let words = matrix.words_per_row();
    scratch.compute_keys(ctx, config);
    scratch.issue.clear();
    scratch.issue.resize(n, None);
    scratch.remaining_preds.clear();
    scratch
        .remaining_preds
        .extend((0..n).map(|i| deps.predecessors(RtId(i as u32)).count()));
    // earliest[rt]: max over scheduled preds of issue+latency, and asap.
    scratch.earliest.clear();
    scratch.earliest.extend_from_slice(&ctx.asap);
    scratch.occ.clear();
    scratch.occ.resize(words, 0);

    let mut unscheduled = n;
    let mut schedule = Schedule::new();
    let mut t: u32 = 0;
    while unscheduled > 0 {
        if let Some(budget) = config.budget {
            if t >= budget {
                return Err(SchedError::BudgetExceeded {
                    budget,
                    unplaced: unscheduled,
                });
            }
        }
        // Ready at t: all preds scheduled and latencies satisfied.
        scratch.ready.clear();
        scratch.ready.extend((0..n).filter(|&i| {
            scratch.issue[i].is_none()
                && scratch.remaining_preds[i] == 0
                && scratch.earliest[i] <= t
        }));
        scratch.ready.sort_by_key(|&i| scratch.keys[i]);
        // Pack the instruction: occupancy bitset makes each fit check one
        // row-AND.
        scratch.occ.fill(0);
        for idx in 0..scratch.ready.len() {
            let i = scratch.ready[idx];
            let rt = RtId(i as u32);
            if matrix.fits_mask(rt, &scratch.occ) {
                scratch.occ[i / 64] |= 1 << (i % 64);
                scratch.issue[i] = Some(t);
                schedule.place(rt, t);
                unscheduled -= 1;
                for (succ, lat) in deps.successors(rt) {
                    let s = succ.0 as usize;
                    scratch.remaining_preds[s] -= 1;
                    scratch.earliest[s] = scratch.earliest[s].max(t + lat);
                }
            }
        }
        t += 1;
        // Safety valve: without a budget the loop must still terminate.
        if t > ctx.horizon + n as u32 + 8 {
            return Err(SchedError::Dependences(
                "scheduler failed to make progress".to_owned(),
            ));
        }
    }
    Ok(schedule)
}

/// Backward insertion scheduling: runs [`insertion_schedule`] on the
/// time-mirrored dependence graph and flips the result, so every RT lands
/// at its *latest* feasible cycle. Complements forward insertion on
/// programs whose sinks (output writes, stores) crowd the end of the
/// time-loop.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when the mirrored placement
/// cannot fit the budget.
pub fn backward_insertion_schedule(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
) -> Result<Schedule, SchedError> {
    let reversed = deps.reversed();
    let ctx_rev = ScheduleContext::build(program, &reversed, config.budget);
    backward_insertion_schedule_in(
        program,
        &reversed,
        matrix,
        config,
        &ctx_rev,
        &mut SchedScratch::default(),
    )
}

/// As [`backward_insertion_schedule`], with the *reversed* dependence
/// graph, its context, and scratch provided by the caller so the mirror is
/// built once per run instead of once per restart.
pub fn backward_insertion_schedule_in(
    program: &Program,
    reversed_deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    config: &ListConfig,
    ctx_rev: &ScheduleContext,
    scratch: &mut SchedScratch,
) -> Result<Schedule, SchedError> {
    let mirrored = insertion_schedule_in(program, reversed_deps, matrix, config, ctx_rev, scratch)?;
    let len = mirrored.length();
    let mut flipped = Schedule::new();
    for (t, instr) in mirrored.instructions() {
        for &rt in instr {
            flipped.place(rt, len - 1 - t);
        }
    }
    Ok(flipped)
}

/// ALAP of the most urgent transitive sink of each RT (the RT's own ALAP
/// for sinks) — the lane-coherent deadline of [`Priority::SinkAlap`].
fn sink_alaps(deps: &DependenceGraph, alap: &[u32]) -> Vec<u32> {
    let order = deps.topological_order();
    let mut sink = vec![u32::MAX; deps.rt_count()];
    for &rt in order.iter().rev() {
        let i = rt.0 as usize;
        let mut best = u32::MAX;
        for (succ, _) in deps.successors(rt) {
            best = best.min(sink[succ.0 as usize]);
        }
        sink[i] = if best == u32::MAX { alap[i] } else { best };
    }
    sink
}

/// The deadline target used for priority computation: the larger of the
/// budget (if any), the critical path, and the resource lower bound.
fn priority_target(program: &Program, deps: &DependenceGraph, budget: Option<u32>) -> u32 {
    budget
        .unwrap_or(0)
        .max(deps.critical_path() + 1)
        .max(resource_lower_bound(program))
}

/// Longest-chain depth of each RT (number of latency-weighted cycles of
/// work after it) — the critical-path priority.
fn successor_depths(deps: &DependenceGraph) -> Vec<u32> {
    let order = deps.topological_order();
    let mut depth = vec![0u32; deps.rt_count()];
    for &rt in order.iter().rev() {
        let i = rt.0 as usize;
        for (succ, lat) in deps.successors(rt) {
            depth[i] = depth[i].max(depth[succ.0 as usize] + lat);
        }
    }
    depth
}

/// Upper bound on schedule length: every RT in its own cycle after its
/// predecessors.
fn serial_upper_bound(program: &Program, deps: &DependenceGraph) -> u32 {
    program.rt_count() as u32 + deps.critical_path() + 1
}

/// Lower bound from resource pressure: for each resource, RTs with
/// distinct usages of it need distinct cycles.
pub fn resource_lower_bound(program: &Program) -> u32 {
    use std::collections::BTreeMap;
    let mut demand: BTreeMap<&str, BTreeMap<String, usize>> = BTreeMap::new();
    for (_, rt) in program.rts() {
        for (res, usage) in rt.usages() {
            *demand
                .entry(res.name())
                .or_default()
                .entry(usage.to_string())
                .or_insert(0) += 1;
        }
    }
    // Identical usages can share one cycle only if the whole RTs are
    // identical; counting each usage occurrence separately is the safe
    // bound for distinct transfers (distinct data ⇒ distinct bus usage
    // anyway). We count occurrences, which is exact for bus-carrying
    // resources and slightly optimistic for pure-token ones.
    demand
        .values()
        .map(|usages| usages.values().sum::<usize>() as u32)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_ir::{Rt, Usage};

    /// Two independent chains const→mult→add sharing one ALU/MULT/ROM.
    fn two_chain_program() -> Program {
        let mut p = Program::new();
        for k in 0..2 {
            let vc = p.add_value(&format!("c{k}"));
            let vm = p.add_value(&format!("m{k}"));
            let mut c = Rt::new(&format!("const{k}"));
            c.add_def(vc);
            c.add_usage("rom", Usage::token("const"));
            c.add_usage("bus_rom", Usage::apply("const", [format!("c{k}")]));
            let mut m = Rt::new(&format!("mult{k}"));
            m.add_use(vc);
            m.add_def(vm);
            m.add_usage("mult", Usage::token("mult"));
            m.add_usage("bus_mult", Usage::apply("mult", [format!("m{k}")]));
            let mut a = Rt::new(&format!("add{k}"));
            a.add_use(vm);
            a.add_usage("alu", Usage::token("add"));
            a.add_usage("bus_alu", Usage::apply("add", [format!("a{k}")]));
            p.add_rt(c);
            p.add_rt(m);
            p.add_rt(a);
        }
        p
    }

    fn schedule_ok(p: &Program, config: &ListConfig) -> Schedule {
        let deps = DependenceGraph::build(p).unwrap();
        let s = list_schedule(p, &deps, config).unwrap();
        s.verify(p, &deps).unwrap();
        s
    }

    #[test]
    fn pipelines_two_chains_in_four_cycles() {
        // chain k issues const@t, mult@t+1, add@t+2; second chain offset 1
        // because rom/mult/alu busy → total 4 cycles.
        let p = two_chain_program();
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 4);
        assert!(s.parallelism() > 1.0);
    }

    #[test]
    fn budget_met_exactly() {
        let p = two_chain_program();
        let s = schedule_ok(&p, &ListConfig::with_budget(4));
        assert!(s.length() <= 4);
    }

    #[test]
    fn budget_too_tight_reported() {
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        let err = list_schedule(&p, &deps, &ListConfig::with_budget(3)).unwrap_err();
        match err {
            SchedError::BudgetExceeded {
                budget: 3,
                unplaced,
            } => assert!(unplaced >= 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_priorities_produce_valid_schedules() {
        let p = two_chain_program();
        for priority in [
            Priority::Slack,
            Priority::CriticalPath,
            Priority::SourceOrder,
        ] {
            let s = schedule_ok(
                &p,
                &ListConfig {
                    budget: None,
                    priority,
                    jitter_seed: 0,
                },
            );
            assert!(s.length() >= 4);
        }
    }

    #[test]
    fn empty_program_schedules_to_zero() {
        let p = Program::new();
        let deps = DependenceGraph::build(&p).unwrap();
        let s = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        assert_eq!(s.length(), 0);
    }

    #[test]
    fn independent_compatible_rts_share_one_cycle() {
        let mut p = Program::new();
        for name in ["a", "b", "c"] {
            let mut rt = Rt::new(name);
            rt.add_usage(format!("opu_{name}").as_str(), Usage::token("op"));
            p.add_rt(rt);
        }
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 1);
        assert_eq!(s.instruction(0).len(), 3);
    }

    #[test]
    fn artificial_resource_serialises_classes() {
        // Two RTs on different OPUs but conflicting via an artificial
        // resource (the whole point of the paper).
        let mut p = Program::new();
        let mut a = Rt::new("a");
        a.add_usage("opu_a", Usage::token("op"));
        a.add_usage("AB", Usage::token("A"));
        let mut b = Rt::new("b");
        b.add_usage("opu_b", Usage::token("op"));
        b.add_usage("AB", Usage::token("B"));
        p.add_rt(a);
        p.add_rt(b);
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn resource_lower_bound_counts_busiest_resource() {
        let p = two_chain_program();
        // rom, mult, alu each used twice (distinct data) → bound 2.
        assert_eq!(resource_lower_bound(&p), 2);
        assert_eq!(resource_lower_bound(&Program::new()), 0);
    }

    #[test]
    fn latency_respected_in_schedule() {
        let mut p = Program::new();
        let v = p.add_value("v");
        let mut producer = Rt::new("m");
        producer.set_latency(3);
        producer.add_def(v);
        producer.add_usage("mult", Usage::token("mult"));
        let mut consumer = Rt::new("a");
        consumer.add_use(v);
        consumer.add_usage("alu", Usage::token("add"));
        p.add_rt(producer);
        p.add_rt(consumer);
        let s = schedule_ok(&p, &ListConfig::default());
        assert_eq!(s.length(), 4); // issue at 0, consumer at 3
    }

    #[test]
    fn scratch_reuse_across_attempts_matches_fresh_runs() {
        // The same (program, config) must produce identical schedules
        // whether scratch/context are fresh or reused from another attempt.
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        let ctx = ScheduleContext::build(&p, &deps, None);
        let mut scratch = SchedScratch::default();
        let config = ListConfig::default();
        let first = list_schedule_in(&p, &deps, &matrix, &config, &ctx, &mut scratch).unwrap();
        // Dirty the scratch with a different attempt, then repeat.
        let other = ListConfig {
            budget: None,
            priority: Priority::CriticalPath,
            jitter_seed: 3,
        };
        let _ = insertion_schedule_in(&p, &deps, &matrix, &other, &ctx, &mut scratch);
        let second = list_schedule_in(&p, &deps, &matrix, &config, &ctx, &mut scratch).unwrap();
        assert_eq!(first, second);
        let fresh = list_schedule(&p, &deps, &config).unwrap();
        assert_eq!(first, fresh);
    }

    #[test]
    fn best_effort_beats_or_matches_single_pass() {
        let p = two_chain_program();
        let deps = DependenceGraph::build(&p).unwrap();
        let best = best_effort_schedule(&p, &deps, None, 2).unwrap();
        best.verify(&p, &deps).unwrap();
        let single = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        assert!(best.length() <= single.length());
    }
}
