//! Schedule compaction by double justification.
//!
//! A feasible schedule can usually be shortened by *justification* (Valls,
//! Ballestín & Quintanilla's classic RCPSP technique): first every RT is
//! pushed to its **latest** feasible cycle processing in decreasing issue
//! order (right justification), then everything is pulled back to its
//! **earliest** feasible cycle in increasing issue order (left
//! justification). Neither pass can lengthen the schedule, and the
//! pull-back regularly drops several cycles because right justification
//! lines the tail chains up against the deadline, freeing the resource
//! slots that the original greedy pass wasted early.
//!
//! [`compact`] alternates passes to a fixpoint; [`schedule_and_compact`]
//! is the production entry point: best-effort construction followed by
//! compaction, optionally iterated with perturbation.

use dspcc_ir::{Program, RtId};

use crate::bounds::length_lower_bound;
use crate::deps::DependenceGraph;
use crate::fuel::{CancelToken, Degradation, DegradeAction, Fuel};
use crate::list::best_effort_bounded;
use crate::schedule::{ConflictMatrix, SchedError, Schedule};

/// One right-justification pass: every RT moves to its latest feasible
/// cycle < `deadline`, processed in decreasing issue order.
///
/// Feasibility is answered on per-cycle occupancy bitsets
/// ([`ConflictMatrix::fits_mask`]) — one row-AND per probed cycle, the
/// same inner loop as insertion scheduling. Justification runs dozens of
/// times per compaction, so this pass being cheap is what makes the
/// iterated local search affordable.
pub fn right_justify(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    schedule: &Schedule,
    deadline: u32,
) -> Schedule {
    let n = program.rt_count();
    let words = matrix.words_per_row();
    let issue = schedule.issue_cycles(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(issue[i].expect("complete schedule")));
    let mut new_issue: Vec<Option<u32>> = vec![None; n];
    let mut occ = vec![0u64; deadline as usize * words];
    for &i in &order {
        let id = RtId(i as u32);
        // Latest start bounded by already-placed successors.
        let mut latest = deadline - 1;
        for (succ, lat) in deps.successors(id) {
            let ts = new_issue[succ.0 as usize].expect("reverse order");
            latest = latest.min(ts.saturating_sub(lat));
        }
        let mut t = latest;
        loop {
            let base = t as usize * words;
            if matrix.fits_mask(id, &occ[base..base + words]) {
                occ[base + i / 64] |= 1 << (i % 64);
                new_issue[i] = Some(t);
                break;
            }
            assert!(t > 0, "right justification cannot fail below the original");
            t -= 1;
        }
    }
    let mut out = Schedule::new();
    for (i, t) in new_issue.iter().enumerate() {
        out.place(RtId(i as u32), t.expect("all placed"));
    }
    out
}

/// One left-justification pass: every RT moves to its earliest feasible
/// cycle, processed in increasing issue order.
pub fn left_justify(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    schedule: &Schedule,
) -> Schedule {
    left_justify_seeded(program, deps, matrix, schedule, 0)
}

/// As [`left_justify`], with a deterministic perturbation of the
/// processing order (seed 0 = pure issue order). Perturbed passes are the
/// escape mechanism of the iterated local search in
/// [`schedule_and_compact`].
pub fn left_justify_seeded(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    schedule: &Schedule,
    seed: u64,
) -> Schedule {
    let n = program.rt_count();
    let issue = schedule.issue_cycles(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let base = issue[i].expect("complete schedule") as i64;
        if seed == 0 {
            (base, 0)
        } else {
            // Nudge issue keys by ±2 cycles to reshuffle near-ties.
            let j = (splitmix(i as u64, seed) % 5) as i64 - 2;
            (base + j, splitmix(i as u64, seed ^ 0xABCD) as i64)
        }
    });
    // A perturbed order may not respect dependences; fall back to a
    // dependence-respecting sweep over the ordered list.
    let words = matrix.words_per_row();
    let mut new_issue: Vec<Option<u32>> = vec![None; n];
    let mut remaining: Vec<usize> = (0..n)
        .map(|i| deps.predecessors(RtId(i as u32)).count())
        .collect();
    let mut occ: Vec<u64> = Vec::new();
    // Per conflict-row-class probe hints: cycles below a class's hint
    // already failed `fits_mask` for an identical row this pass, and
    // occupancy only grows — skipping them cannot change the result.
    let mut hints: Vec<u32> = vec![0; matrix.class_count()];
    let mut pending: Vec<usize> = order;
    while !pending.is_empty() {
        let pos = pending
            .iter()
            .position(|&i| remaining[i] == 0)
            .expect("acyclic graph always has a ready RT");
        let i = pending.remove(pos);
        let id = RtId(i as u32);
        for (succ, _) in deps.successors(id) {
            remaining[succ.0 as usize] -= 1;
        }
        let mut earliest = 0u32;
        for (pred, lat) in deps.predecessors(id) {
            earliest = earliest.max(new_issue[pred.0 as usize].expect("ready order") + lat);
        }
        let class = matrix.row_class(id) as usize;
        let contiguous = hints[class] >= earliest;
        let mut t = earliest.max(hints[class]);
        loop {
            let base = t as usize * words;
            if occ.len() < base + words {
                occ.resize(base + words, 0);
            }
            if matrix.fits_mask(id, &occ[base..base + words]) {
                occ[base + i / 64] |= 1 << (i % 64);
                new_issue[i] = Some(t);
                if contiguous {
                    hints[class] = t;
                }
                break;
            }
            t += 1;
        }
    }
    let mut out = Schedule::new();
    for (i, t) in new_issue.iter().enumerate() {
        out.place(RtId(i as u32), t.expect("all placed"));
    }
    out
}

fn splitmix(x: u64, seed: u64) -> u64 {
    let mut z = x.wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Alternates right/left justification until the length stops improving.
pub fn compact(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    schedule: Schedule,
    max_rounds: u32,
) -> Schedule {
    compact_to_bound(program, deps, matrix, schedule, max_rounds, 0)
}

/// As [`compact`], stopping as soon as the schedule reaches `bound`
/// cycles (a provable lower bound — see [`crate::bounds`] — below which
/// further justification rounds cannot improve anything).
pub fn compact_to_bound(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    schedule: Schedule,
    max_rounds: u32,
    bound: u32,
) -> Schedule {
    compact_to_bound_fueled(
        program,
        deps,
        matrix,
        schedule,
        max_rounds,
        bound,
        &mut Fuel::unlimited(),
        None,
    )
    .map(|(schedule, _)| schedule)
    .unwrap_or_else(|_| unreachable!("unlimited fuel, no cancel token"))
}

/// As [`compact_to_bound`], paying one [`Fuel`] unit per justification
/// round *before* running it (rounds are atomic: paid-for work always
/// completes). Exhaustion returns the best schedule so far plus the
/// number of rounds skipped; compaction only ever shortens, so a
/// truncated run is still valid. `cancel` is polled per round.
///
/// # Errors
///
/// [`SchedError::Cancelled`] when the token is raised mid-compaction.
#[allow(clippy::too_many_arguments)]
pub fn compact_to_bound_fueled(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    schedule: Schedule,
    max_rounds: u32,
    bound: u32,
    fuel: &mut Fuel,
    cancel: Option<&CancelToken>,
) -> Result<(Schedule, u64), SchedError> {
    let mut best = schedule;
    let mut skipped = 0u64;
    for round in 0..max_rounds {
        let len = best.length();
        if len == 0 || len <= bound {
            break;
        }
        if cancel.map(CancelToken::is_cancelled).unwrap_or(false) {
            return Err(SchedError::Cancelled);
        }
        if !fuel.try_charge(1) {
            skipped = (max_rounds - round) as u64;
            break;
        }
        let right = right_justify(program, deps, matrix, &best, len);
        let left = left_justify(program, deps, matrix, &right);
        if left.length() >= len {
            // Keep the shorter of the two; stop on stagnation.
            if left.length() < best.length() {
                best = left;
            }
            break;
        }
        best = left;
    }
    Ok((best, skipped))
}

/// The production scheduler: best-effort construction (multiple
/// priorities, restarts, forward and backward) followed by justification
/// compaction.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when even the compacted
/// schedule misses the budget.
pub fn schedule_and_compact(
    program: &Program,
    deps: &DependenceGraph,
    budget: Option<u32>,
    restarts: u32,
) -> Result<Schedule, SchedError> {
    schedule_and_compact_threaded(program, deps, budget, restarts, 1)
}

/// As [`schedule_and_compact`], running the construction restarts on
/// `threads` worker threads (`0` = auto, `1` = inline; output is
/// bit-identical for every thread count — see
/// [`best_effort_schedule_with`]).
///
/// Both the construction restarts and the iterated local search stop the
/// moment the schedule meets the provable length lower bound
/// ([`length_lower_bound`]): at the bound the schedule is optimal and the
/// remaining perturbation rounds are pure waste.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when even the compacted
/// schedule misses the budget.
pub fn schedule_and_compact_threaded(
    program: &Program,
    deps: &DependenceGraph,
    budget: Option<u32>,
    restarts: u32,
    threads: usize,
) -> Result<Schedule, SchedError> {
    let matrix = ConflictMatrix::build(program);
    schedule_and_compact_in(program, deps, &matrix, budget, restarts, threads).map(|(s, _)| s)
}

/// As [`schedule_and_compact_threaded`], with a caller-provided conflict
/// matrix. Returns the schedule together with the provable length lower
/// bound the cutoffs used (`schedule.length() == bound` proves the
/// schedule optimal) — computed exactly once for the whole run.
///
/// # Errors
///
/// Returns [`SchedError::BudgetExceeded`] when even the compacted
/// schedule misses the budget.
pub fn schedule_and_compact_in(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    budget: Option<u32>,
    restarts: u32,
    threads: usize,
) -> Result<(Schedule, u32), SchedError> {
    schedule_and_compact_fueled(
        program,
        deps,
        matrix,
        budget,
        restarts,
        threads,
        &mut Fuel::unlimited(),
        None,
    )
    .map(|r| (r.schedule, r.bound))
}

/// The result of a fuel-bounded scheduling run.
#[derive(Debug, Clone)]
pub struct FueledSchedule {
    /// The best schedule found.
    pub schedule: Schedule,
    /// The provable length lower bound the cutoffs used.
    pub bound: u32,
    /// `Some` when fuel ran out and search work was skipped; the
    /// schedule is then best-so-far rather than the full-budget result.
    pub degradation: Option<Degradation>,
}

/// As [`schedule_and_compact_in`], under a deterministic compute budget
/// and an optional cancellation token.
///
/// One fuel unit pays for one construction attempt, one justification
/// round, or one perturbation seed — never wall-clock — so the same
/// `(input, fuel)` pair produces bit-identical output on every machine
/// and thread count. The baseline construction round is mandatory
/// (charged saturating); everything after it must pay up front, and a
/// failed charge truncates the search *there*, keeping the best schedule
/// found so far. A truncated run that still meets the cycle budget
/// succeeds with a [`Degradation`] report; only when the budget is
/// missed *and* fuel was the binding constraint does the attributable
/// [`SchedError::FuelExhausted`] replace the generic
/// [`SchedError::BudgetExceeded`].
///
/// # Errors
///
/// [`SchedError::Cancelled`] when `cancel` is raised;
/// [`SchedError::FuelExhausted`] / [`SchedError::BudgetExceeded`] when
/// no schedule meets `budget`.
#[allow(clippy::too_many_arguments)]
pub fn schedule_and_compact_fueled(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
    budget: Option<u32>,
    restarts: u32,
    threads: usize,
    fuel: &mut Fuel,
    cancel: Option<&CancelToken>,
) -> Result<FueledSchedule, SchedError> {
    let bound = length_lower_bound(program, deps, matrix);
    // Construct without a hard budget so a too-tight target cannot wedge
    // the greedy pass, then compact and check the budget at the end.
    let (initial, mut skipped) = best_effort_bounded(
        program, deps, matrix, None, restarts, threads, bound, fuel, cancel,
    )?;
    let (mut best, compact_skipped) =
        compact_to_bound_fueled(program, deps, matrix, initial, 32, bound, fuel, cancel)?;
    skipped += compact_skipped;
    let good_enough =
        |s: &Schedule| s.length() <= bound || budget.map(|b| s.length() <= b).unwrap_or(false);
    if !good_enough(&best) {
        // Iterated local search: perturbed left-justification escapes the
        // justification fixpoint; each round re-compacts and keeps the
        // best. The seed range is offset past the construction jitter
        // seeds (`0..=restarts`) so one `restarts` setting never feeds the
        // same seed value to both loops (the two perturb different things;
        // the offset is bookkeeping hygiene, not deduplicated work — the
        // round count matches the old `1..=(restarts·4).max(8)` loop).
        let first_seed = restarts as u64 + 1;
        let last_seed = restarts as u64 + (restarts as u64 * 4).max(8);
        for seed in first_seed..=last_seed {
            if cancel.map(CancelToken::is_cancelled).unwrap_or(false) {
                return Err(SchedError::Cancelled);
            }
            if !fuel.try_charge(1) {
                skipped += last_seed - seed + 1;
                break;
            }
            let perturbed = left_justify_seeded(program, deps, matrix, &best, seed);
            let (candidate, ils_skipped) =
                compact_to_bound_fueled(program, deps, matrix, perturbed, 8, bound, fuel, cancel)?;
            skipped += ils_skipped;
            if candidate.length() < best.length() {
                best = candidate;
            }
            if good_enough(&best) {
                break;
            }
        }
    }
    let degradation = (skipped > 0).then_some(Degradation {
        stage: "schedule",
        spent: fuel.used(),
        action: DegradeAction::SearchTruncated { skipped },
    });
    match budget {
        Some(b) if best.length() > b => {
            if degradation.is_some() {
                Err(SchedError::FuelExhausted {
                    spent: fuel.used(),
                    budget: b,
                })
            } else {
                Err(SchedError::BudgetExceeded {
                    budget: b,
                    unplaced: 0,
                })
            }
        }
        _ => Ok(FueledSchedule {
            schedule: best,
            bound,
            degradation,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, ListConfig};
    use dspcc_ir::{Rt, Usage};

    fn chains(k: usize) -> Program {
        let mut p = Program::new();
        for i in 0..k {
            let vc = p.add_value(format!("c{i}"));
            let vm = p.add_value(format!("m{i}"));
            let mut c = Rt::new(format!("const{i}"));
            c.add_def(vc);
            c.add_usage("rom", Usage::apply("const", [format!("{i}")]));
            let mut m = Rt::new(format!("mult{i}"));
            m.add_use(vc);
            m.add_def(vm);
            m.add_usage("mult", Usage::apply("mult", [format!("m{i}")]));
            let mut a = Rt::new(format!("add{i}"));
            a.add_use(vm);
            a.add_usage("alu", Usage::apply("add", [format!("a{i}")]));
            p.add_rt(c);
            p.add_rt(m);
            p.add_rt(a);
        }
        p
    }

    #[test]
    fn justification_never_lengthens() {
        let p = chains(6);
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        let s = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        let len = s.length();
        let right = right_justify(&p, &deps, &matrix, &s, len);
        right.verify(&p, &deps).unwrap();
        assert!(right.length() <= len);
        let left = left_justify(&p, &deps, &matrix, &right);
        left.verify(&p, &deps).unwrap();
        assert!(left.length() <= right.length());
    }

    #[test]
    fn compact_improves_a_bad_schedule() {
        // Deliberately pessimal: one RT per cycle.
        let p = chains(4);
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        let bad = crate::baseline::sequential_schedule(&p, &deps);
        let good = compact(&p, &deps, &matrix, bad.clone(), 16);
        good.verify(&p, &deps).unwrap();
        assert!(
            good.length() < bad.length(),
            "{} !< {}",
            good.length(),
            bad.length()
        );
        // Pipeline of 4 chains over 3 units: optimal is 6.
        assert!(good.length() <= 7, "{}", good.length());
    }

    #[test]
    fn schedule_and_compact_end_to_end() {
        let p = chains(5);
        let deps = DependenceGraph::build(&p).unwrap();
        let s = schedule_and_compact(&p, &deps, Some(8), 4).unwrap();
        s.verify(&p, &deps).unwrap();
        assert!(s.length() <= 8);
    }

    #[test]
    fn budget_failure_reported_after_compaction() {
        let p = chains(5);
        let deps = DependenceGraph::build(&p).unwrap();
        let err = schedule_and_compact(&p, &deps, Some(3), 2).unwrap_err();
        assert!(matches!(err, SchedError::BudgetExceeded { budget: 3, .. }));
    }

    #[test]
    fn empty_program_compacts() {
        let p = Program::new();
        let deps = DependenceGraph::build(&p).unwrap();
        let s = schedule_and_compact(&p, &deps, None, 1).unwrap();
        assert_eq!(s.length(), 0);
    }
}
