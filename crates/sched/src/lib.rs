//! Schedulers for `dspcc` (compiler step 3, paper section 4).
//!
//! "The modified RTs are input for the scheduler which performs the
//! ordering of the RTs. The scheduler combines RTs into instructions. The
//! modifications insure that a scheduler only creates mcode instructions by
//! combining RTs that are physically possible and allowed in the
//! instruction set."
//!
//! Because instruction-set restrictions were already lowered to artificial
//! resource conflicts, every scheduler here is a plain *resource-constrained
//! scheduler*: two RTs may share a cycle iff they are pairwise compatible
//! ([`dspcc_ir::Rt::compatible_with`]).
//!
//! * [`bounds`] — provable lower bounds on schedule length (critical
//!   path, distinct-usage pressure, conflict cliques); the stopping rules
//!   of every restart loop.
//! * [`deps`] — dependence-graph construction (flow dependences with
//!   pipeline latencies) and ASAP/ALAP windows.
//! * [`list`] — priority-based list scheduling under a cycle budget; the
//!   production scheduler.
//! * [`exact`] — branch-and-bound scheduler with *execution-interval
//!   analysis*: bipartite-matching feasibility pruning per resource, the
//!   technique of the paper's future-work reference \[11\] (Timmer & Jess,
//!   EDAC'95).
//! * [`folding`] — modulo scheduling of the time-loop (the paper notes the
//!   63-cycle result "could be reduced a few cycles if the time-loop could
//!   be folded which is not supported by the current system" — it is
//!   supported here as an extension).
//! * [`baseline`] — the naive sequential schedule and an ISA-unaware
//!   scheduler, baselines for the evaluation.
//! * [`report`] — occupation statistics and the figure-9 ASCII chart.
//!
//! # Example
//!
//! ```
//! use dspcc_ir::{Program, Rt, Usage};
//! use dspcc_sched::{deps::DependenceGraph, list::{list_schedule, ListConfig}};
//!
//! let mut p = Program::new();
//! let v = p.add_value("v");
//! let mut a = Rt::new("producer");
//! a.add_def(v);
//! a.add_usage("alu", Usage::token("add"));
//! let mut b = Rt::new("consumer");
//! b.add_use(v);
//! b.add_usage("alu", Usage::token("add"));
//! p.add_rt(a);
//! p.add_rt(b);
//! let deps = DependenceGraph::build(&p)?;
//! let schedule = list_schedule(&p, &deps, &ListConfig::default())?;
//! assert_eq!(schedule.length(), 2); // flow dependence forces 2 cycles
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseline;
pub mod bounds;
pub mod compact;
pub mod deps;
pub mod exact;
pub mod folding;
pub mod fuel;
pub mod list;
pub mod report;
mod schedule;

pub use fuel::{CancelToken, Degradation, DegradeAction, Fuel};
pub use schedule::{ConflictMatrix, SchedError, Schedule, VerifyError};
