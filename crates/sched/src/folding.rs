//! Loop folding (modulo scheduling) of the time-loop.
//!
//! The paper: "The total application is scheduled in 63 cycles. This could
//! be reduced a few cycles if the time-loop could be folded which is not
//! supported by the current system." Folding overlaps the tail of frame
//! *t* with the head of frame *t+1*: the kernel repeats every *II*
//! (initiation interval) cycles, bounded below by resource pressure, no
//! longer by the pipeline fill/drain of the dependence chains.
//!
//! This module implements iterative modulo scheduling: resources are
//! modelled modulo II; loop-carried dependences (signal write → next
//! frames' taps) carry an iteration *distance*.

use std::fmt;

use dspcc_ir::{Program, RtId};

use crate::deps::DependenceGraph;
use crate::schedule::ConflictMatrix;

/// A loop-carried dependence: `to` of iteration `i + distance` must issue
/// at least `latency(from)` cycles after `from` of iteration `i`:
/// `t_to + distance·II ≥ t_from + latency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopEdge {
    /// Producer RT (e.g. the signal's RAM write).
    pub from: RtId,
    /// Consumer RT in a later iteration (e.g. a tap of the signal).
    pub to: RtId,
    /// Iteration distance (the tap depth), ≥ 1.
    pub distance: u32,
}

/// A folded schedule: flat issue cycles plus the initiation interval.
///
/// The kernel instruction at phase `p` contains every RT with
/// `issue mod II == p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedSchedule {
    issue: Vec<u32>,
    ii: u32,
}

/// Folding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldError {
    /// No schedule found for any II up to the given limit.
    NoIiFound {
        /// Smallest II tried (the resource/recurrence bound).
        min_ii: u32,
        /// Largest II tried.
        max_ii: u32,
    },
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::NoIiFound { min_ii, max_ii } => {
                write!(f, "no modulo schedule found for II in {min_ii}..={max_ii}")
            }
        }
    }
}

impl std::error::Error for FoldError {}

impl FoldedSchedule {
    /// The initiation interval: cycles between successive frame starts —
    /// the folded "cycle count" of the time-loop.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Flat issue cycle of each RT (within one iteration's unrolled view).
    pub fn issue_cycles(&self) -> &[u32] {
        &self.issue
    }

    /// Kernel phase (issue mod II) of each RT.
    pub fn phase(&self, rt: RtId) -> u32 {
        self.issue[rt.0 as usize] % self.ii
    }

    /// Number of overlapped iterations (pipeline stages) in the kernel.
    pub fn stage_count(&self) -> u32 {
        self.issue.iter().map(|&t| t / self.ii).max().unwrap_or(0) + 1
    }

    /// Verifies modulo-resource legality and all dependences.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn verify(
        &self,
        program: &Program,
        deps: &DependenceGraph,
        loop_edges: &[LoopEdge],
    ) -> Result<(), String> {
        for id in program.rt_ids() {
            for (succ, lat) in deps.successors(id) {
                let t = self.issue[id.0 as usize];
                let ts = self.issue[succ.0 as usize];
                if ts < t + lat {
                    return Err(format!("{id}→{succ}: {ts} < {t}+{lat}"));
                }
            }
        }
        for e in loop_edges {
            let t = self.issue[e.from.0 as usize];
            let ts = self.issue[e.to.0 as usize];
            let lat = program.rt(e.from).latency();
            if ts + e.distance * self.ii < t + lat {
                return Err(format!(
                    "loop edge {}→{} distance {} violated at II={}",
                    e.from, e.to, e.distance, self.ii
                ));
            }
        }
        for i in 0..program.rt_count() {
            for j in (i + 1)..program.rt_count() {
                let (a, b) = (RtId(i as u32), RtId(j as u32));
                if self.issue[i] % self.ii == self.issue[j] % self.ii
                    && !program.rt(a).compatible_with(program.rt(b))
                {
                    return Err(format!("{a} and {b} collide in kernel phase"));
                }
            }
        }
        Ok(())
    }
}

/// Attempts modulo scheduling for increasing II until success.
///
/// # Errors
///
/// Returns [`FoldError::NoIiFound`] when no II up to the unfolded list
/// length works (at which point folding is pointless anyway).
pub fn fold_schedule(
    program: &Program,
    deps: &DependenceGraph,
    loop_edges: &[LoopEdge],
    max_ii: u32,
) -> Result<FoldedSchedule, FoldError> {
    fold_schedule_with_restarts(program, deps, loop_edges, max_ii, 8, 8)
}

/// As [`fold_schedule`], trying several placement orders per candidate II
/// (deadline-ordered, depth-ordered, and jittered variants) — iterative
/// modulo scheduling.
///
/// # Errors
///
/// Returns [`FoldError::NoIiFound`] when no attempted order fits any
/// II ≤ `max_ii`.
pub fn fold_schedule_with_restarts(
    program: &Program,
    deps: &DependenceGraph,
    loop_edges: &[LoopEdge],
    max_ii: u32,
    restarts: u32,
    max_stages: u32,
) -> Result<FoldedSchedule, FoldError> {
    let matrix = ConflictMatrix::build(program);
    // Candidate IIs ascend from the provable bound, so the first feasible
    // II found is optimal and the search stops there — the folding
    // counterpart of the list scheduler's bound cutoff.
    let min_ii = min_ii_with(program, deps, loop_edges, &matrix).max(1);
    let n = program.rt_count();
    let alap = deps.alap(deps.critical_path() + 1);
    let depth = {
        let order = deps.topological_order();
        let mut d = vec![0u32; n];
        for &rt in order.iter().rev() {
            let i = rt.0 as usize;
            for (succ, lat) in deps.successors(rt) {
                d[i] = d[i].max(d[succ.0 as usize] + lat);
            }
        }
        d
    };
    for ii in min_ii..=max_ii {
        // Rau's iterative modulo scheduling (placement with eviction)
        // first — it converges at or near the minimum II.
        for seed in 0..=(restarts / 4) as u64 {
            if let Some(issue) =
                ims_schedule(program, deps, loop_edges, &matrix, ii, seed, max_stages)
            {
                let folded = FoldedSchedule { issue, ii };
                if folded.stage_count() <= max_stages
                    && folded.verify(program, deps, loop_edges).is_ok()
                {
                    return Ok(folded);
                }
            }
        }
        for seed in 0..=restarts as u64 {
            let key = |i: usize| -> (i64, i64) {
                let j = if seed == 0 {
                    i as i64
                } else {
                    (splitmix(i as u64, seed) & 0xFF) as i64
                };
                if seed % 2 == 0 {
                    (alap[i] as i64, j)
                } else {
                    (-(depth[i] as i64), j)
                }
            };
            let order = priority_topo_order(deps, &key);
            if let Some(issue) =
                try_modulo_schedule_ordered(program, deps, loop_edges, &matrix, ii, &order)
            {
                let folded = FoldedSchedule { issue, ii };
                if folded.stage_count() <= max_stages {
                    return Ok(folded);
                }
            }
        }
    }
    Err(FoldError::NoIiFound { min_ii, max_ii })
}

/// Rau's iterative modulo scheduling: operations are placed highest
/// priority first into their earliest feasible slot; when no slot in the
/// II-wide window fits, the operation is *force-placed* and conflicting
/// operations are evicted and rescheduled, within an operation budget.
fn ims_schedule(
    program: &Program,
    deps: &DependenceGraph,
    loop_edges: &[LoopEdge],
    matrix: &ConflictMatrix,
    ii: u32,
    seed: u64,
    max_stages: u32,
) -> Option<Vec<u32>> {
    let n = program.rt_count();
    if n == 0 {
        return Some(Vec::new());
    }
    // Height-based priority (successor chains, loop edges discounted by
    // distance·II).
    let order = deps.topological_order();
    let mut height = vec![0i64; n];
    for &rt in order.iter().rev() {
        let i = rt.0 as usize;
        for (succ, lat) in deps.successors(rt) {
            height[i] = height[i].max(height[succ.0 as usize] + lat as i64);
        }
    }
    for e in loop_edges {
        let h = height[e.to.0 as usize] + program.rt(e.from).latency() as i64
            - (e.distance * ii) as i64;
        let i = e.from.0 as usize;
        if h > height[i] {
            height[i] = h;
        }
    }

    let mut issue: Vec<Option<u32>> = vec![None; n];
    let mut last_try: Vec<u32> = vec![0; n];
    let mut budget: i64 = n as i64 * 12;
    // Worklist, highest priority (greatest height) first.
    let mut work: Vec<usize> = (0..n).collect();
    work.sort_by_key(|&i| {
        (
            -(height[i]),
            if seed == 0 {
                i as i64
            } else {
                (splitmix(i as u64, seed) & 0xFF) as i64
            },
        )
    });
    let mut queue: std::collections::VecDeque<usize> = work.into_iter().collect();
    while let Some(i) = queue.pop_front() {
        if budget <= 0 {
            return None;
        }
        budget -= 1;
        let id = RtId(i as u32);
        // Earliest start from scheduled predecessors (intra + loop-carried).
        let mut estart: i64 = 0;
        for (pred, lat) in deps.predecessors(id) {
            if let Some(tp) = issue[pred.0 as usize] {
                estart = estart.max(tp as i64 + lat as i64);
            }
        }
        for e in loop_edges.iter().filter(|e| e.to == id) {
            if let Some(tf) = issue[e.from.0 as usize] {
                let lat = program.rt(e.from).latency() as i64;
                estart = estart.max(tf as i64 + lat - (e.distance * ii) as i64);
            }
        }
        let estart = estart.max(0) as u32;
        // Find a conflict-free slot in [estart, estart+II).
        let mut placed_at: Option<u32> = None;
        for t in estart..estart + ii {
            let phase = t % ii;
            let conflict = (0..n).any(|j| {
                issue[j]
                    .map(|tj| tj % ii == phase && matrix.conflicts(id, RtId(j as u32)))
                    .unwrap_or(false)
            });
            if !conflict {
                placed_at = Some(t);
                break;
            }
        }
        let t = match placed_at {
            Some(t) => t,
            None => {
                // Force placement: past estart, but always past the last
                // attempt to avoid cycling.
                estart.max(last_try[i] + 1)
            }
        };
        if t >= max_stages * ii {
            return None; // would stretch register lifetimes past the cap
        }
        last_try[i] = t;
        // Evict anything conflicting at this phase.
        let phase = t % ii;
        #[allow(clippy::needless_range_loop)] // j is also an RT id, not just an index
        for j in 0..n {
            if j != i
                && issue[j].map(|tj| tj % ii == phase).unwrap_or(false)
                && matrix.conflicts(id, RtId(j as u32))
            {
                issue[j] = None;
                queue.push_back(j);
            }
        }
        issue[i] = Some(t);
        // Evict dependents whose constraints the new placement violates.
        for (succ, lat) in deps.successors(id) {
            let s = succ.0 as usize;
            if let Some(ts) = issue[s] {
                if (ts as i64) < t as i64 + lat as i64 {
                    issue[s] = None;
                    queue.push_back(s);
                }
            }
        }
        for e in loop_edges.iter().filter(|e| e.from == id) {
            let s = e.to.0 as usize;
            if let Some(ts) = issue[s] {
                let lat = program.rt(id).latency() as i64;
                if (ts as i64 + (e.distance * ii) as i64) < t as i64 + lat {
                    issue[s] = None;
                    queue.push_back(s);
                }
            }
        }
    }
    Some(
        issue
            .into_iter()
            .map(|t| t.expect("queue drained"))
            .collect(),
    )
}

/// Kahn topological order choosing the minimum-key ready node each step.
fn priority_topo_order(deps: &DependenceGraph, key: &dyn Fn(usize) -> (i64, i64)) -> Vec<RtId> {
    let n = deps.rt_count();
    let mut remaining: Vec<usize> = (0..n)
        .map(|i| deps.predecessors(RtId(i as u32)).count())
        .collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let (pos, &i) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| key(i))
            .expect("nonempty");
        ready.swap_remove(pos);
        order.push(RtId(i as u32));
        for (succ, _) in deps.successors(RtId(i as u32)) {
            let s = succ.0 as usize;
            remaining[s] -= 1;
            if remaining[s] == 0 {
                ready.push(s);
            }
        }
    }
    order
}

fn splitmix(x: u64, seed: u64) -> u64 {
    let mut z = x.wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Lower bound on II: resource pressure (distinct usages of the busiest
/// resource and the conflict-clique bound — a clique needs pairwise
/// distinct kernel phases, so II is at least its size) and recurrence
/// bound (latency/distance over loop-carried cycles, approximated per
/// edge).
pub fn min_initiation_interval(
    program: &Program,
    deps: &DependenceGraph,
    loop_edges: &[LoopEdge],
) -> u32 {
    let matrix = ConflictMatrix::build(program);
    min_ii_with(program, deps, loop_edges, &matrix)
}

/// As [`min_initiation_interval`], with a caller-provided conflict matrix.
fn min_ii_with(
    program: &Program,
    deps: &DependenceGraph,
    loop_edges: &[LoopEdge],
    matrix: &ConflictMatrix,
) -> u32 {
    let res_mii = crate::bounds::distinct_usage_bound(program)
        .max(crate::bounds::conflict_clique_bound(matrix));
    // Per-edge recurrence bound: a chain from `to …→ from` of length L plus
    // the back edge needs II ≥ (L + latency) / distance. Approximate L with
    // the ASAP distance.
    let asap = deps.asap();
    let rec_mii = loop_edges
        .iter()
        .map(|e| {
            let l_from = asap[e.from.0 as usize] as i64;
            let l_to = asap[e.to.0 as usize] as i64;
            let lat = program.rt(e.from).latency() as i64;
            let need = l_from - l_to + lat;
            if need <= 0 {
                0
            } else {
                ((need + e.distance as i64 - 1) / e.distance as i64) as u32
            }
        })
        .max()
        .unwrap_or(0);
    res_mii.max(rec_mii)
}

fn try_modulo_schedule_ordered(
    program: &Program,
    deps: &DependenceGraph,
    loop_edges: &[LoopEdge],
    matrix: &ConflictMatrix,
    ii: u32,
    order: &[RtId],
) -> Option<Vec<u32>> {
    let n = program.rt_count();
    if n == 0 {
        return Some(Vec::new());
    }
    let order = order.to_vec();
    let mut issue: Vec<Option<u32>> = vec![None; n];
    // Modulo resource table: phase → RTs already issued at that phase.
    let mut table: Vec<Vec<RtId>> = vec![Vec::new(); ii as usize];
    for &rt in order.iter() {
        let i = rt.0 as usize;
        // Earliest from intra-iteration preds.
        let mut earliest = 0u32;
        for (pred, lat) in deps.predecessors(rt) {
            if let Some(tp) = issue[pred.0 as usize] {
                earliest = earliest.max(tp + lat);
            }
        }
        // Loop-carried in-edges: to-side constraint.
        for e in loop_edges.iter().filter(|e| e.to == rt) {
            if let Some(tf) = issue[e.from.0 as usize] {
                let lat = program.rt(e.from).latency();
                let bound = (tf + lat).saturating_sub(e.distance * ii);
                earliest = earliest.max(bound);
            }
        }
        // Scan up to II placements (all phases) from earliest.
        let mut placed = false;
        for t in earliest..earliest + ii {
            let phase = (t % ii) as usize;
            if matrix.fits(rt, &table[phase]) {
                issue[i] = Some(t);
                table[phase].push(rt);
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    // Loop-carried out-edges may still be violated for consumers placed
    // before producers in topological order; verify and reject.
    let issue: Vec<u32> = issue
        .into_iter()
        .map(|t| t.expect("every RT was placed by the loop above"))
        .collect();
    for e in loop_edges {
        let lat = program.rt(e.from).latency();
        if issue[e.to.0 as usize] + e.distance * ii < issue[e.from.0 as usize] + lat {
            return None;
        }
    }
    Some(issue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, ListConfig};
    use dspcc_ir::{Rt, Usage};

    /// k chains const→mult→add over shared rom/mult/alu: unfolded length
    /// is k+2, folded II should approach k.
    fn chains(k: usize) -> Program {
        let mut p = Program::new();
        for i in 0..k {
            let vc = p.add_value(format!("c{i}"));
            let vm = p.add_value(format!("m{i}"));
            let mut c = Rt::new(format!("const{i}"));
            c.add_def(vc);
            c.add_usage("rom", Usage::apply("const", [format!("{i}")]));
            let mut m = Rt::new(format!("mult{i}"));
            m.add_use(vc);
            m.add_def(vm);
            m.add_usage("mult", Usage::apply("mult", [format!("m{i}")]));
            let mut a = Rt::new(format!("add{i}"));
            a.add_use(vm);
            a.add_usage("alu", Usage::apply("add", [format!("a{i}")]));
            p.add_rt(c);
            p.add_rt(m);
            p.add_rt(a);
        }
        p
    }

    #[test]
    fn folding_beats_unfolded_length() {
        let p = chains(4);
        let deps = DependenceGraph::build(&p).unwrap();
        let unfolded = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        let folded = fold_schedule(&p, &deps, &[], unfolded.length()).unwrap();
        folded.verify(&p, &deps, &[]).unwrap();
        assert!(
            folded.ii() < unfolded.length(),
            "II {} should beat unfolded {}",
            folded.ii(),
            unfolded.length()
        );
        assert_eq!(folded.ii(), 4); // resource bound: 4 mults on one MULT
    }

    #[test]
    fn min_ii_resource_bound() {
        let p = chains(5);
        let deps = DependenceGraph::build(&p).unwrap();
        assert_eq!(min_initiation_interval(&p, &deps, &[]), 5);
    }

    #[test]
    fn recurrence_bound_limits_ii() {
        // a→b→c chain with a loop edge c→a at distance 1: II ≥ chain length.
        let mut p = Program::new();
        let v1 = p.add_value("v1");
        let v2 = p.add_value("v2");
        let mut a = Rt::new("a");
        a.add_def(v1);
        a.add_usage("alu", Usage::apply("add", ["v1"]));
        let mut b = Rt::new("b");
        b.add_use(v1);
        b.add_def(v2);
        b.add_usage("mult", Usage::apply("mult", ["v2"]));
        let mut c = Rt::new("c");
        c.add_use(v2);
        c.add_usage("ram", Usage::apply("write", ["v2"]));
        p.add_rt(a);
        p.add_rt(b);
        p.add_rt(c);
        let deps = DependenceGraph::build(&p).unwrap();
        let edges = [LoopEdge {
            from: RtId(2),
            to: RtId(0),
            distance: 1,
        }];
        // c issues at 2, latency 1 ⇒ a of next iteration ≥ 3 ⇒ II ≥ 3.
        assert_eq!(min_initiation_interval(&p, &deps, &edges), 3);
        let folded = fold_schedule(&p, &deps, &edges, 10).unwrap();
        folded.verify(&p, &deps, &edges).unwrap();
        assert_eq!(folded.ii(), 3);
    }

    #[test]
    fn stage_count_reflects_overlap() {
        let p = chains(2);
        let deps = DependenceGraph::build(&p).unwrap();
        let folded = fold_schedule(&p, &deps, &[], 10).unwrap();
        assert!(folded.stage_count() >= 2, "chains must overlap iterations");
    }

    #[test]
    fn impossible_ii_reports_error() {
        // max_ii below the resource bound: no II can work.
        let p = chains(4);
        let deps = DependenceGraph::build(&p).unwrap();
        let err = fold_schedule(&p, &deps, &[], 3).unwrap_err();
        assert_eq!(
            err,
            FoldError::NoIiFound {
                min_ii: 4,
                max_ii: 3
            }
        );
        assert!(err.to_string().contains("no modulo schedule"));
    }

    #[test]
    fn loop_edge_raises_ii() {
        // Loop edge add0 → const0 at distance 1: next frame's const0 must
        // wait for this frame's add0 (+1 latency), so II ≥ 3 even for a
        // single chain.
        let p = chains(1);
        let deps = DependenceGraph::build(&p).unwrap();
        let edges = [LoopEdge {
            from: RtId(2),
            to: RtId(0),
            distance: 1,
        }];
        assert_eq!(min_initiation_interval(&p, &deps, &edges), 3);
        let folded = fold_schedule(&p, &deps, &edges, 10).unwrap();
        folded.verify(&p, &deps, &edges).unwrap();
        assert_eq!(folded.ii(), 3);
    }

    #[test]
    fn phase_and_issue_consistency() {
        let p = chains(3);
        let deps = DependenceGraph::build(&p).unwrap();
        let folded = fold_schedule(&p, &deps, &[], 10).unwrap();
        for id in p.rt_ids() {
            assert_eq!(
                folded.phase(id),
                folded.issue_cycles()[id.0 as usize] % folded.ii()
            );
        }
    }

    #[test]
    fn empty_program_folds_trivially() {
        let p = Program::new();
        let deps = DependenceGraph::build(&p).unwrap();
        let folded = fold_schedule(&p, &deps, &[], 4).unwrap();
        assert!(folded.issue_cycles().is_empty());
    }
}
