//! Baseline schedulers for the evaluation.
//!
//! The paper's quality claim ("existing compilers generate code of which
//! the efficiency is not sufficient", section 2) is made against manual
//! code via the occupation metric; these baselines make the comparison
//! explicit:
//!
//! * [`sequential_schedule`] — one RT per cycle, the code a non-packing
//!   compiler would emit;
//! * [`strip_artificial_resources`] — undo the ISA modelling, yielding the
//!   "ISA-unaware" scheduler whose output violates the instruction set
//!   (counted in experiment E10).

use dspcc_ir::Program;

use crate::deps::DependenceGraph;
use crate::schedule::Schedule;

/// Schedules exactly one RT per instruction in topological order,
/// respecting latencies — the fully vertical (sequential) baseline.
pub fn sequential_schedule(program: &Program, deps: &DependenceGraph) -> Schedule {
    let order = deps.topological_order();
    let mut issue = vec![0u32; program.rt_count()];
    let mut schedule = Schedule::new();
    let mut next_free = 0u32;
    for rt in order {
        let i = rt.0 as usize;
        let mut t = next_free;
        for (pred, lat) in deps.predecessors(rt) {
            t = t.max(issue[pred.0 as usize] + lat);
        }
        issue[i] = t;
        schedule.place(rt, t);
        next_free = t + 1;
    }
    schedule
}

/// Returns a copy of `program` with the named artificial resources removed
/// from every RT — what the scheduler would see if the instruction set
/// were not modelled.
pub fn strip_artificial_resources(program: &Program, artificial: &[&str]) -> Program {
    let mut stripped = program.clone();
    for id in stripped.rt_ids().collect::<Vec<_>>() {
        for name in artificial {
            stripped.rt_mut(id).remove_usage(name);
        }
    }
    stripped
}

/// Counts, per cycle, instruction contents that pairwise-conflict in the
/// *reference* program (e.g. via artificial resources) even though they
/// were packed together by a schedule computed for another (stripped)
/// program. Returns the number of offending instructions.
pub fn count_illegal_instructions(reference: &Program, schedule: &Schedule) -> usize {
    schedule
        .instructions()
        .filter(|(_, instr)| {
            instr.iter().enumerate().any(|(i, &a)| {
                instr[i + 1..]
                    .iter()
                    .any(|&b| !reference.rt(a).compatible_with(reference.rt(b)))
            })
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, ListConfig};
    use dspcc_ir::{Rt, RtId, Usage};

    fn program_with_artificial() -> Program {
        // Two RTs on different OPUs, forbidden to pair by artificial ABC.
        let mut p = Program::new();
        let mut a = Rt::new("a");
        a.add_usage("opu_a", Usage::token("op"));
        a.add_usage("ABC", Usage::token("A"));
        let mut b = Rt::new("b");
        b.add_usage("opu_b", Usage::token("op"));
        b.add_usage("ABC", Usage::token("B"));
        p.add_rt(a);
        p.add_rt(b);
        p
    }

    #[test]
    fn sequential_is_one_rt_per_cycle() {
        let p = program_with_artificial();
        let deps = DependenceGraph::build(&p).unwrap();
        let s = sequential_schedule(&p, &deps);
        s.verify(&p, &deps).unwrap();
        assert_eq!(s.length(), 2);
        assert!((s.parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_respects_latency_gaps() {
        let mut p = Program::new();
        let v = p.add_value("v");
        let mut producer = Rt::new("m");
        producer.set_latency(3);
        producer.add_def(v);
        producer.add_usage("mult", Usage::token("mult"));
        let mut consumer = Rt::new("a");
        consumer.add_use(v);
        consumer.add_usage("alu", Usage::token("add"));
        p.add_rt(producer);
        p.add_rt(consumer);
        let deps = DependenceGraph::build(&p).unwrap();
        let s = sequential_schedule(&p, &deps);
        s.verify(&p, &deps).unwrap();
        assert_eq!(s.length(), 4);
    }

    #[test]
    fn strip_removes_only_named_resources() {
        let p = program_with_artificial();
        let stripped = strip_artificial_resources(&p, &["ABC"]);
        assert!(stripped.rt(RtId(0)).usage_of("ABC").is_none());
        assert!(stripped.rt(RtId(0)).usage_of("opu_a").is_some());
        // Original untouched.
        assert!(p.rt(RtId(0)).usage_of("ABC").is_some());
    }

    #[test]
    fn isa_unaware_schedule_violates_reference() {
        let p = program_with_artificial();
        let stripped = strip_artificial_resources(&p, &["ABC"]);
        let deps = DependenceGraph::build(&stripped).unwrap();
        let s = list_schedule(&stripped, &deps, &ListConfig::default()).unwrap();
        // Without ABC the two RTs pack into one cycle…
        assert_eq!(s.length(), 1);
        // …which the reference program calls illegal.
        assert_eq!(count_illegal_instructions(&p, &s), 1);
        // A legal schedule has no illegal instructions.
        let legal_deps = DependenceGraph::build(&p).unwrap();
        let legal = list_schedule(&p, &legal_deps, &ListConfig::default()).unwrap();
        assert_eq!(count_illegal_instructions(&p, &legal), 0);
    }
}
