//! Deterministic compute budgets and cooperative cancellation.
//!
//! A multi-tenant compile service needs two guarantees the raw restart
//! engine cannot give: a pathological compile must not run away, and an
//! abandoned one must stop promptly. Both must preserve the engine's
//! core property — bit-identical output for every thread count and every
//! machine — which rules wall-clock deadlines out entirely (a deadline
//! observed 1 µs earlier on a faster box changes the result).
//!
//! [`Fuel`] counts *deterministic work units* instead: one unit is one
//! scheduling attempt, one justification pass, or one branch-and-bound
//! node expansion. Charges happen at round barriers — never inside a
//! parallel region — so the set of attempts that runs is a pure function
//! of `(input, fuel limit)`. Exhaustion is graceful by construction: the
//! mandatory baseline round always runs, and everything after it only
//! ever *improves* the best-so-far schedule, so truncating the search
//! yields a valid (merely possibly longer) result plus a structured
//! [`Degradation`] report saying what was skipped.
//!
//! [`CancelToken`] is the complementary *non*-deterministic stop: a flag
//! checked at stage boundaries and round barriers. Cancellation aborts
//! with [`crate::SchedError::Cancelled`] rather than degrading — an
//! abandoned compile has no consumer for a best-effort result.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A deterministic compute budget, counted in abstract work units.
///
/// One unit is one scheduling attempt (restart engine), one
/// justification pass (compaction / iterated local search), or one
/// branch-and-bound node expansion (exact scheduler). Wall-clock never
/// enters: the same `(input, limit)` pair consumes the same units and
/// produces the same schedule on every machine and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    limit: u64,
    used: u64,
}

impl Fuel {
    /// A budget that never runs out.
    pub const fn unlimited() -> Self {
        Fuel {
            limit: u64::MAX,
            used: 0,
        }
    }

    /// A budget of `limit` work units.
    pub const fn limited(limit: u64) -> Self {
        Fuel { limit, used: 0 }
    }

    /// Whether this budget can ever be exhausted.
    pub fn is_unlimited(&self) -> bool {
        self.limit == u64::MAX
    }

    /// Tries to pay for `units` of optional work. On success the units
    /// are consumed; on failure *nothing* is consumed and the caller
    /// must skip the work. All-or-nothing keeps rounds atomic: a round
    /// either runs in full or not at all, which is what makes budgeted
    /// output independent of how the round is split across threads.
    #[must_use]
    pub fn try_charge(&mut self, units: u64) -> bool {
        match self.used.checked_add(units) {
            Some(next) if next <= self.limit => {
                self.used = next;
                true
            }
            _ => false,
        }
    }

    /// Pays for mandatory work: consumes up to `units`, clamped at the
    /// limit, and never fails. Used for the baseline round that must run
    /// even under a zero budget so exhaustion still yields a schedule.
    pub fn charge_saturating(&mut self, units: u64) {
        self.used = self.used.saturating_add(units).min(self.limit);
    }

    /// Units consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Units still available.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }

    /// Whether the budget is fully spent (always `false` for
    /// [`Fuel::unlimited`]).
    pub fn exhausted(&self) -> bool {
        self.used >= self.limit
    }
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::unlimited()
    }
}

/// A cooperative cancellation flag, shared between the caller and a
/// running compile.
///
/// Cloning shares the flag. The compile pipeline checks it at stage
/// boundaries and the schedulers at round barriers / every few hundred
/// branch-and-bound nodes, so cancellation lands promptly without any
/// preemption machinery. A cancelled compile aborts with a typed
/// `Cancelled` error — its partial artifacts are discarded, never
/// cached.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a fuel-exhausted compile gave up, reported on the compile stats
/// instead of silently returning a weaker result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// The pipeline stage that ran out ("schedule" today; the unit
    /// accounting is per-stage so future stages report their own).
    pub stage: &'static str,
    /// Work units consumed by the time the stage finished.
    pub spent: u64,
    /// The specific downgrade that was taken.
    pub action: DegradeAction,
}

/// The downgrade ladder: each variant names a strictly-weaker-but-valid
/// result the stage fell back to when fuel ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// The exact branch-and-bound scheduler could not finish within the
    /// fuel and the heuristic scheduler's result was used instead.
    ExactToHeuristic {
        /// Nodes the exact search explored before giving up.
        nodes_explored: u64,
    },
    /// The heuristic search (restart rounds, justification passes,
    /// iterated local search) was cut short; the best schedule found
    /// before the cut is returned.
    SearchTruncated {
        /// Work units that were skipped (attempts, passes, seeds).
        skipped: u64,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            DegradeAction::ExactToHeuristic { nodes_explored } => write!(
                f,
                "{}: fuel exhausted after {} units; exact search stopped at \
                 {nodes_explored} nodes, heuristic result used",
                self.stage, self.spent
            ),
            DegradeAction::SearchTruncated { skipped } => write!(
                f,
                "{}: fuel exhausted after {} units; {skipped} search unit(s) skipped, \
                 best-so-far returned",
                self.stage, self.spent
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_charge_is_all_or_nothing() {
        let mut fuel = Fuel::limited(5);
        assert!(fuel.try_charge(3));
        assert_eq!(fuel.used(), 3);
        // A charge that would overshoot consumes nothing.
        assert!(!fuel.try_charge(3));
        assert_eq!(fuel.used(), 3);
        assert_eq!(fuel.remaining(), 2);
        assert!(fuel.try_charge(2));
        assert!(fuel.exhausted());
        assert!(!fuel.try_charge(1));
    }

    #[test]
    fn zero_charges_always_succeed() {
        let mut fuel = Fuel::limited(0);
        assert!(fuel.try_charge(0));
        assert!(fuel.exhausted());
    }

    #[test]
    fn saturating_charge_clamps_and_never_fails() {
        let mut fuel = Fuel::limited(4);
        fuel.charge_saturating(12);
        assert_eq!(fuel.used(), 4);
        assert!(fuel.exhausted());
        assert_eq!(fuel.remaining(), 0);
        fuel.charge_saturating(1);
        assert_eq!(fuel.used(), 4);
    }

    #[test]
    fn unlimited_never_exhausts() {
        let mut fuel = Fuel::unlimited();
        assert!(fuel.is_unlimited());
        fuel.charge_saturating(u64::MAX / 2);
        assert!(fuel.try_charge(u64::MAX / 4));
        assert!(!fuel.exhausted());
    }

    #[test]
    fn cancel_token_is_shared_by_clone() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        token.cancel();
        assert!(observer.is_cancelled());
        token.cancel();
        assert!(observer.is_cancelled());
    }
}
