//! Exact branch-and-bound scheduling with execution-interval analysis.
//!
//! The paper's future work (section 8) points at "execution interval
//! analysis to prune the search space of the scheduler", citing Timmer &
//! Jess, *Exact Scheduling Strategies based on Bipartite Graph Matching*
//! (EDAC'95). The idea: at every search node each unscheduled RT has an
//! execution interval `[asap, alap]`; for each resource, the RTs competing
//! for it must be injectively assignable to cycles of their intervals — a
//! bipartite-matching feasibility question. If no perfect matching exists
//! the subtree is dead and is cut without enumeration.
//!
//! [`ExactConfig::prune`] switches the matching cut on and off, which is
//! exactly the ablation of experiment E6.

use std::collections::BTreeMap;

use dspcc_graph::matching::BipartiteGraph;
use dspcc_ir::{Program, RtId};

use crate::deps::DependenceGraph;
use crate::fuel::CancelToken;
use crate::schedule::{ConflictMatrix, Schedule};

/// Configuration of the exact scheduler.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Cycle budget (the schedule must fit in `budget` cycles).
    pub budget: u32,
    /// Enable bipartite-matching interval pruning.
    pub prune: bool,
    /// Abort after this many search nodes (`complete = false` in the
    /// result).
    pub max_nodes: u64,
    /// Cooperative cancellation, polled every few hundred search nodes
    /// (`cancelled = true` in the result).
    pub cancel: Option<CancelToken>,
}

impl ExactConfig {
    /// Pruned search within `budget`, with a generous node limit.
    pub fn new(budget: u32) -> Self {
        ExactConfig {
            budget,
            prune: true,
            max_nodes: 10_000_000,
            cancel: None,
        }
    }
}

/// Result of an exact-scheduling run.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// A feasible schedule within the budget, if one was found.
    pub schedule: Option<Schedule>,
    /// Search nodes visited (placements tried).
    pub nodes_explored: u64,
    /// `true` if the search ran to completion (found a schedule or proved
    /// infeasibility); `false` if the node limit or cancellation stopped
    /// it.
    pub complete: bool,
    /// `true` if the caller's [`CancelToken`] stopped the search.
    pub cancelled: bool,
}

/// Runs exact branch-and-bound scheduling: finds *a* schedule within
/// `config.budget` cycles or proves none exists.
pub fn exact_schedule(
    program: &Program,
    deps: &DependenceGraph,
    config: &ExactConfig,
) -> ExactResult {
    let matrix = ConflictMatrix::build(program);
    let n = program.rt_count();
    if n == 0 {
        return ExactResult {
            schedule: Some(Schedule::new()),
            nodes_explored: 0,
            complete: true,
            cancelled: false,
        };
    }
    let asap = deps.asap();
    let alap = deps.alap(config.budget);
    if asap.iter().zip(&alap).any(|(a, l)| a > l) {
        // Critical path alone exceeds the budget.
        return ExactResult {
            schedule: None,
            nodes_explored: 0,
            complete: true,
            cancelled: false,
        };
    }
    // Resource census: resource name → RT ids using it.
    let mut by_resource: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (id, rt) in program.rts() {
        for (res, _) in rt.usages() {
            by_resource
                .entry(res.name().to_owned())
                .or_default()
                .push(id.0 as usize);
        }
    }

    let mut search = Search {
        program,
        deps,
        matrix: &matrix,
        budget: config.budget,
        prune: config.prune,
        max_nodes: config.max_nodes,
        cancel: config.cancel.as_ref(),
        by_resource,
        issue: vec![None; n],
        nodes: 0,
        hit_limit: false,
        cancelled: false,
    };
    let mut lo = asap;
    let mut hi = alap;
    let found = search.solve(&mut lo, &mut hi);
    let schedule = found.then(|| {
        let mut s = Schedule::new();
        for (i, t) in search.issue.iter().enumerate() {
            s.place(RtId(i as u32), t.expect("complete assignment"));
        }
        s
    });
    ExactResult {
        schedule,
        nodes_explored: search.nodes,
        complete: !search.hit_limit && !search.cancelled,
        cancelled: search.cancelled,
    }
}

struct Search<'a> {
    program: &'a Program,
    deps: &'a DependenceGraph,
    matrix: &'a ConflictMatrix,
    budget: u32,
    prune: bool,
    max_nodes: u64,
    cancel: Option<&'a CancelToken>,
    by_resource: BTreeMap<String, Vec<usize>>,
    issue: Vec<Option<u32>>,
    nodes: u64,
    hit_limit: bool,
    cancelled: bool,
}

/// How many search nodes pass between cancellation polls: cheap enough
/// to land promptly, coarse enough that the atomic load never shows up
/// in a profile. (Fuel, by contrast, is accounted *outside* the search —
/// the caller caps `max_nodes` to its remaining fuel and charges
/// `nodes_explored` afterwards — so the search itself stays free of
/// budget bookkeeping.)
const CANCEL_POLL_INTERVAL: u64 = 256;

impl Search<'_> {
    fn solve(&mut self, lo: &mut [u32], hi: &mut [u32]) -> bool {
        if self.nodes >= self.max_nodes {
            self.hit_limit = true;
            return false;
        }
        if self.nodes.is_multiple_of(CANCEL_POLL_INTERVAL)
            && self.cancel.map(CancelToken::is_cancelled).unwrap_or(false)
        {
            self.cancelled = true;
            return false;
        }
        // Pick the unscheduled RT with the smallest interval (fail first).
        let pick = (0..self.issue.len())
            .filter(|&i| self.issue[i].is_none())
            .min_by_key(|&i| (hi[i] - lo[i], std::cmp::Reverse(i)));
        let rt = match pick {
            None => return true, // everything scheduled
            Some(rt) => rt,
        };
        let id = RtId(rt as u32);
        for t in lo[rt]..=hi[rt] {
            if !self.placement_compatible(id, t) {
                continue;
            }
            self.nodes += 1;
            self.issue[rt] = Some(t);
            // Propagate the placement into neighbours' intervals.
            let mut new_lo = lo.to_vec();
            let mut new_hi = hi.to_vec();
            new_lo[rt] = t;
            new_hi[rt] = t;
            if self.propagate(&mut new_lo, &mut new_hi)
                && (!self.prune || self.intervals_feasible(&new_lo, &new_hi))
                && self.solve(&mut new_lo, &mut new_hi)
            {
                return true;
            }
            self.issue[rt] = None;
            if self.hit_limit || self.cancelled {
                return false;
            }
        }
        false
    }

    /// Whether issuing `rt` at `t` conflicts with already-placed RTs.
    fn placement_compatible(&self, rt: RtId, t: u32) -> bool {
        self.issue
            .iter()
            .enumerate()
            .all(|(j, &tj)| tj != Some(t) || !self.matrix.conflicts(rt, RtId(j as u32)))
    }

    /// Tightens intervals along dependence edges to a fixpoint. Returns
    /// `false` if some interval becomes empty.
    fn propagate(&self, lo: &mut [u32], hi: &mut [u32]) -> bool {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..lo.len() {
                let id = RtId(i as u32);
                for (succ, lat) in self.deps.successors(id) {
                    let s = succ.0 as usize;
                    if lo[i] + lat > lo[s] {
                        lo[s] = lo[i] + lat;
                        changed = true;
                    }
                    if hi[s] < lat || hi[s] - lat < hi[i] {
                        if hi[s] < lat {
                            return false;
                        }
                        hi[i] = hi[s] - lat;
                        changed = true;
                    }
                }
            }
            for i in 0..lo.len() {
                if lo[i] > hi[i] {
                    return false;
                }
            }
        }
        true
    }

    /// Execution-interval analysis: per resource, unscheduled RTs with
    /// pairwise-distinct usages must injectively match to cycles of their
    /// intervals that are not blocked by a scheduled conflicting RT.
    fn intervals_feasible(&self, lo: &[u32], hi: &[u32]) -> bool {
        for users in self.by_resource.values() {
            if users.len() < 2 {
                continue;
            }
            // Deduplicate by usage: identical usages may share a cycle, so
            // keeping one of each usage under-constrains (stays sound).
            let mut kept: Vec<usize> = Vec::new();
            {
                let mut seen_usages: Vec<&dspcc_ir::Usage> = Vec::new();
                for &u in users {
                    if self.issue[u].is_some() {
                        continue;
                    }
                    let rt = self.program.rt(RtId(u as u32));
                    // All users share the resource; find this RT's usage of it.
                    let usage = rt
                        .usages()
                        .find(|(r, _)| {
                            self.by_resource
                                .get(r.name())
                                .map(|v| std::ptr::eq(v, users))
                                .unwrap_or(false)
                        })
                        .map(|(_, u)| u)
                        .expect("rt listed under resource");
                    if !seen_usages.contains(&usage) {
                        seen_usages.push(usage);
                        kept.push(u);
                    }
                }
            }
            if kept.len() < 2 {
                continue;
            }
            let mut g = BipartiteGraph::new(kept.len(), self.budget as usize);
            for (li, &u) in kept.iter().enumerate() {
                let id = RtId(u as u32);
                for t in lo[u]..=hi[u] {
                    if self.placement_compatible(id, t) {
                        g.add_edge(li, t as usize);
                    }
                }
            }
            if !g.has_left_perfect_matching() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, ListConfig};
    use dspcc_ir::{Rt, Usage};

    /// k independent RTs all fighting for one ALU (distinct usages).
    fn serial_program(k: usize) -> Program {
        let mut p = Program::new();
        for i in 0..k {
            let mut rt = Rt::new(format!("op{i}"));
            rt.add_usage("alu", Usage::token(format!("op{i}").as_str()));
            p.add_rt(rt);
        }
        p
    }

    #[test]
    fn finds_schedule_at_exact_resource_bound() {
        let p = serial_program(4);
        let deps = DependenceGraph::build(&p).unwrap();
        let r = exact_schedule(&p, &deps, &ExactConfig::new(4));
        assert!(r.complete);
        let s = r.schedule.expect("4 serial RTs fit in 4 cycles");
        s.verify(&p, &deps).unwrap();
        assert_eq!(s.length(), 4);
    }

    #[test]
    fn proves_infeasibility_below_resource_bound() {
        let p = serial_program(4);
        let deps = DependenceGraph::build(&p).unwrap();
        let r = exact_schedule(&p, &deps, &ExactConfig::new(3));
        assert!(r.complete);
        assert!(r.schedule.is_none());
    }

    #[test]
    fn pruning_reduces_explored_nodes_on_infeasible_instance() {
        // 6 RTs on one ALU, budget 5: infeasible. The matching cut sees it
        // immediately; plain backtracking enumerates permutations.
        let p = serial_program(6);
        let deps = DependenceGraph::build(&p).unwrap();
        let mut pruned_cfg = ExactConfig::new(5);
        pruned_cfg.prune = true;
        let pruned = exact_schedule(&p, &deps, &pruned_cfg);
        let mut blind_cfg = ExactConfig::new(5);
        blind_cfg.prune = false;
        let blind = exact_schedule(&p, &deps, &blind_cfg);
        assert!(pruned.complete && blind.complete);
        assert!(pruned.schedule.is_none() && blind.schedule.is_none());
        assert!(
            pruned.nodes_explored < blind.nodes_explored,
            "pruned {} !< blind {}",
            pruned.nodes_explored,
            blind.nodes_explored
        );
    }

    #[test]
    fn budget_below_critical_path_is_immediately_infeasible() {
        let mut p = Program::new();
        let v1 = p.add_value("v1");
        let v2 = p.add_value("v2");
        let mut a = Rt::new("a");
        a.add_def(v1);
        a.add_usage("alu", Usage::token("a"));
        let mut b = Rt::new("b");
        b.add_use(v1);
        b.add_def(v2);
        b.add_usage("alu", Usage::token("b"));
        let mut c = Rt::new("c");
        c.add_use(v2);
        c.add_usage("alu", Usage::token("c"));
        p.add_rt(a);
        p.add_rt(b);
        p.add_rt(c);
        let deps = DependenceGraph::build(&p).unwrap();
        let r = exact_schedule(&p, &deps, &ExactConfig::new(2));
        assert!(r.complete);
        assert!(r.schedule.is_none());
        assert_eq!(r.nodes_explored, 0); // cut before any placement
    }

    #[test]
    fn exact_matches_or_beats_list_on_small_programs() {
        let p = serial_program(3);
        let deps = DependenceGraph::build(&p).unwrap();
        let list = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        let r = exact_schedule(&p, &deps, &ExactConfig::new(list.length()));
        assert!(r.schedule.is_some());
    }

    #[test]
    fn node_limit_reported() {
        let p = serial_program(8);
        let deps = DependenceGraph::build(&p).unwrap();
        let cfg = ExactConfig {
            budget: 7, // infeasible
            prune: false,
            max_nodes: 10,
            cancel: None,
        };
        let r = exact_schedule(&p, &deps, &cfg);
        assert!(!r.complete);
        assert!(r.schedule.is_none());
    }

    #[test]
    fn empty_program_is_trivially_schedulable() {
        let p = Program::new();
        let deps = DependenceGraph::build(&p).unwrap();
        let r = exact_schedule(&p, &deps, &ExactConfig::new(0));
        assert!(r.complete);
        assert_eq!(r.schedule.unwrap().length(), 0);
    }

    #[test]
    fn identical_rts_may_share_a_cycle() {
        // Two *identical* transfers (same usage everywhere) can share, so
        // budget 1 is feasible — the usage-dedup in the matching must not
        // forbid it.
        let mut p = Program::new();
        for _ in 0..2 {
            let mut rt = Rt::new("same");
            rt.add_usage("alu", Usage::token("add"));
            rt.add_usage("bus", Usage::apply("add", ["v0"]));
            p.add_rt(rt);
        }
        let deps = DependenceGraph::build(&p).unwrap();
        let r = exact_schedule(&p, &deps, &ExactConfig::new(1));
        assert!(r.complete);
        let s = r.schedule.expect("identical RTs share one instruction");
        assert_eq!(s.length(), 1);
    }
}
