//! Provable lower bounds on schedule length.
//!
//! Every bound here is **sound**: no verified schedule of the program can
//! be shorter. That turns the bounds into stopping rules — the moment a
//! restart loop produces a schedule whose length equals the bound, the
//! schedule is provably optimal and every remaining restart is wasted
//! work. [`length_lower_bound`] is the conjunction the scheduling engine
//! threads through [`crate::list::best_effort_schedule`],
//! [`crate::compact::schedule_and_compact`] and
//! [`crate::folding::fold_schedule_with_restarts`].
//!
//! Three independent arguments contribute:
//!
//! * **Critical path** — a chain of flow dependences of latency-weighted
//!   length `L` needs `L + 1` cycles ([`critical_path_bound`]).
//! * **Distinct usages** — two RTs with *different* usages of one resource
//!   can never share an instruction, so a resource carrying `k` distinct
//!   usage values forces `k` distinct cycles ([`distinct_usage_bound`]).
//!   This is the per-resource "bin" bound: ops per conflict class over a
//!   per-cycle capacity of one.
//! * **Conflict clique** — a set of pairwise-conflicting RTs needs
//!   pairwise-distinct cycles, whatever mix of resources causes the
//!   conflicts; a greedy clique on the packed
//!   [`ConflictMatrix`](crate::schedule::ConflictMatrix) rows generalises
//!   the per-resource argument across resources
//!   ([`conflict_clique_bound`]).
//!
//! The old [`crate::list::resource_lower_bound`] (usage *occurrence*
//! counting) is retained as a priority-target heuristic only: identical
//! usages may legally share a cycle, so occurrence counts can exceed the
//! true optimum and must not gate termination.

use dspcc_ir::{Program, RtId};

use crate::deps::DependenceGraph;
use crate::schedule::ConflictMatrix;

/// The latency-weighted critical path of the dependence graph, as a
/// schedule-length bound: the last RT of the longest chain issues no
/// earlier than the chain length, so the schedule has at least
/// `critical_path + 1` cycles (0 for an empty program).
pub fn critical_path_bound(deps: &DependenceGraph) -> u32 {
    if deps.rt_count() == 0 {
        0
    } else {
        deps.critical_path() + 1
    }
}

/// The busiest resource's distinct-usage count. RTs whose usages of a
/// shared resource differ conflict pairwise, so each distinct usage value
/// of one resource claims a cycle of its own.
pub fn distinct_usage_bound(program: &Program) -> u32 {
    // Interned ids: one integer sort, distinct usages per resource are
    // runs — no string hashing or tree maps.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (_, rt) in program.rts() {
        for &(res, usage) in rt.usage_ids() {
            pairs.push((res.id().0, usage.0));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let mut best = 0u32;
    let mut i = 0;
    while i < pairs.len() {
        let res = pairs[i].0;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == res {
            j += 1;
        }
        best = best.max((j - i) as u32);
        i = j;
    }
    best
}

/// A greedy clique in the conflict graph: every member pairwise conflicts
/// with every other, so the clique size bounds the schedule length (and a
/// modulo schedule's initiation interval) from below.
///
/// Greedy construction on the packed conflict rows: repeatedly take the
/// candidate with the most conflicts *inside* the remaining candidate set
/// (lowest RT id on ties, so the bound is deterministic), then intersect
/// the candidates with its row. One word-parallel AND per step; the found
/// clique may be smaller than the maximum one, which only weakens — never
/// unsounds — the bound.
pub fn conflict_clique_bound(matrix: &ConflictMatrix) -> u32 {
    let n = matrix.rt_count();
    if n == 0 {
        return 0;
    }
    let words = matrix.words_per_row();
    let mut candidates = vec![u64::MAX; words];
    // Mask tail bits past n so popcounts only see real RTs.
    let tail = n % 64;
    if tail != 0 {
        candidates[words - 1] = (1u64 << tail) - 1;
    }
    let mut size = 0u32;
    loop {
        // Candidate with the most conflicts among the remaining candidates.
        let mut pick: Option<(u32, usize)> = None;
        for i in 0..n {
            if candidates[i / 64] & (1 << (i % 64)) == 0 {
                continue;
            }
            let degree: u32 = matrix
                .row(RtId(i as u32))
                .iter()
                .zip(&candidates)
                .map(|(&r, &c)| (r & c).count_ones())
                .sum();
            if pick.map(|(d, _)| degree > d).unwrap_or(true) {
                pick = Some((degree, i));
            }
        }
        let Some((_, i)) = pick else { break };
        size += 1;
        // Keep only candidates conflicting with the new member; the member
        // itself drops out (no RT conflicts with itself).
        for (c, &r) in candidates.iter_mut().zip(matrix.row(RtId(i as u32))) {
            *c &= r;
        }
    }
    size
}

/// The combined schedule-length lower bound: the strongest of the critical
/// path, distinct-usage, and conflict-clique arguments.
pub fn length_lower_bound(
    program: &Program,
    deps: &DependenceGraph,
    matrix: &ConflictMatrix,
) -> u32 {
    critical_path_bound(deps)
        .max(distinct_usage_bound(program))
        .max(conflict_clique_bound(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_ir::{Rt, Usage};

    /// k chains const→mult→add over shared rom/mult/alu.
    fn chains(k: usize) -> Program {
        let mut p = Program::new();
        for i in 0..k {
            let vc = p.add_value(format!("c{i}"));
            let vm = p.add_value(format!("m{i}"));
            let mut c = Rt::new(format!("const{i}"));
            c.add_def(vc);
            c.add_usage("rom", Usage::apply("const", [format!("{i}")]));
            let mut m = Rt::new(format!("mult{i}"));
            m.add_use(vc);
            m.add_def(vm);
            m.add_usage("mult", Usage::apply("mult", [format!("m{i}")]));
            let mut a = Rt::new(format!("add{i}"));
            a.add_use(vm);
            a.add_usage("alu", Usage::apply("add", [format!("a{i}")]));
            p.add_rt(c);
            p.add_rt(m);
            p.add_rt(a);
        }
        p
    }

    #[test]
    fn empty_program_has_zero_bound() {
        let p = Program::new();
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        assert_eq!(length_lower_bound(&p, &deps, &matrix), 0);
        assert_eq!(conflict_clique_bound(&matrix), 0);
        assert_eq!(distinct_usage_bound(&p), 0);
    }

    #[test]
    fn chain_bound_is_critical_path() {
        // One chain: critical path 2 (+1) dominates the resource bounds.
        let p = chains(1);
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        assert_eq!(critical_path_bound(&deps), 3);
        assert_eq!(length_lower_bound(&p, &deps, &matrix), 3);
    }

    #[test]
    fn wide_program_bound_is_resource_pressure() {
        // 6 chains: resource pressure (6 distinct mults on one MULT)
        // exceeds the 3-cycle chain.
        let p = chains(6);
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        assert_eq!(distinct_usage_bound(&p), 6);
        assert!(conflict_clique_bound(&matrix) >= 6);
        assert_eq!(length_lower_bound(&p, &deps, &matrix), 6);
    }

    #[test]
    fn identical_usages_do_not_inflate_the_bound() {
        // Two RTs with the *same* token usage are compatible: they can
        // share one cycle, so the bound must stay 1 (occurrence counting
        // would claim 2 — why resource_lower_bound is only a heuristic).
        let mut p = Program::new();
        for name in ["a", "b"] {
            let mut rt = Rt::new(name);
            rt.add_usage("alu", Usage::token("add"));
            p.add_rt(rt);
        }
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        assert_eq!(length_lower_bound(&p, &deps, &matrix), 1);
        assert_eq!(crate::list::resource_lower_bound(&p), 2);
    }

    #[test]
    fn clique_bound_crosses_resources() {
        // a/b conflict on R1, b/c on R2, a/c on R3: a 3-clique with no
        // single resource carrying 3 distinct usages.
        let mut p = Program::new();
        let mut a = Rt::new("a");
        a.add_usage("r1", Usage::token("x"));
        a.add_usage("r3", Usage::token("x"));
        let mut b = Rt::new("b");
        b.add_usage("r1", Usage::token("y"));
        b.add_usage("r2", Usage::token("x"));
        let mut c = Rt::new("c");
        c.add_usage("r2", Usage::token("y"));
        c.add_usage("r3", Usage::token("y"));
        p.add_rt(a);
        p.add_rt(b);
        p.add_rt(c);
        let matrix = ConflictMatrix::build(&p);
        assert_eq!(distinct_usage_bound(&p), 2);
        assert_eq!(conflict_clique_bound(&matrix), 3);
    }

    #[test]
    fn bound_never_exceeds_a_verified_schedule() {
        use crate::list::{list_schedule, ListConfig};
        for k in 1..=5 {
            let p = chains(k);
            let deps = DependenceGraph::build(&p).unwrap();
            let matrix = ConflictMatrix::build(&p);
            let s = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
            s.verify(&p, &deps).unwrap();
            assert!(
                length_lower_bound(&p, &deps, &matrix) <= s.length(),
                "bound exceeds schedule for k={k}"
            );
        }
    }
}
