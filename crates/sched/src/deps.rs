//! Dependence-graph construction over RTs.
//!
//! Within one iteration of the time-loop the only ordering constraints are
//! *flow dependences*: an RT consuming a value can issue no earlier than
//! the producer's issue cycle plus the producer's pipeline latency.
//!
//! Delay-line taps read values of **previous** frames out of RAM; with
//! circular buffers of sufficient depth the intra-frame read and write
//! slots never collide, so taps and signal writes of the same signal are
//! unordered inside a frame (the inter-iteration distance matters only for
//! loop folding, which handles it via [`crate::folding`]).

use std::fmt;

use dspcc_graph::dag::Dag;
use dspcc_ir::{Program, RtId};

/// Flow-dependence graph with ASAP/ALAP analysis.
#[derive(Debug, Clone)]
pub struct DependenceGraph {
    dag: Dag,
}

/// Error building the dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepError {
    /// The program failed [`Program::validate`].
    MalformedProgram(String),
    /// Value flow forms a cycle (impossible for programs lowered from a
    /// signal-flow graph, but checked for hand-built programs).
    CyclicDependences(Vec<usize>),
}

impl fmt::Display for DepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepError::MalformedProgram(m) => write!(f, "malformed program: {m}"),
            DepError::CyclicDependences(nodes) => {
                write!(f, "cyclic dependences through RTs {nodes:?}")
            }
        }
    }
}

impl std::error::Error for DepError {}

impl DependenceGraph {
    /// Builds the flow-dependence graph of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`DepError`] if the program is malformed or cyclic.
    pub fn build(program: &Program) -> Result<Self, DepError> {
        Self::build_with_edges(program, &[])
    }

    /// Builds the dependence graph with additional *sequence edges*
    /// `(from, to, min_separation)` — orderings not visible in value flow:
    /// successive reads of one input port, writes to one output port, or
    /// the frame-pointer update that must not overtake the frame's address
    /// computations (separation 0 allows the same cycle).
    ///
    /// # Errors
    ///
    /// Returns [`DepError`] if the program is malformed or cyclic.
    pub fn build_with_edges(
        program: &Program,
        sequence_edges: &[(RtId, RtId, u32)],
    ) -> Result<Self, DepError> {
        program.validate().map_err(DepError::MalformedProgram)?;
        let n = program.rt_count();
        let mut dag = Dag::new(n);
        // The program maintains the producer table as RTs are added (and
        // `validate` above just cross-checked it), so no per-build
        // producer index rebuild is needed.
        let producer = program.producer_table();
        for (id, rt) in program.rts() {
            for &u in rt.uses() {
                let p = producer[u.0 as usize].expect("validated program");
                if p != id {
                    let latency = program.rt(p).latency() as i64;
                    dag.add_edge(p.0 as usize, id.0 as usize, latency);
                }
            }
        }
        for &(from, to, sep) in sequence_edges {
            if from != to {
                dag.add_edge(from.0 as usize, to.0 as usize, sep as i64);
            }
        }
        match dag.topological_order() {
            Ok(_) => Ok(DependenceGraph { dag }),
            Err(e) => Err(DepError::CyclicDependences(e.stuck_nodes)),
        }
    }

    /// Number of RTs.
    pub fn rt_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Direct successors (consumers) of `rt` with edge latencies.
    pub fn successors(&self, rt: RtId) -> impl Iterator<Item = (RtId, u32)> + '_ {
        self.dag
            .successors(rt.0 as usize)
            .iter()
            .map(|&(s, w)| (RtId(s as u32), w as u32))
    }

    /// Direct predecessors (producers) of `rt` with edge latencies.
    pub fn predecessors(&self, rt: RtId) -> impl Iterator<Item = (RtId, u32)> + '_ {
        self.dag
            .predecessors(rt.0 as usize)
            .iter()
            .map(|&(p, w)| (RtId(p as u32), w as u32))
    }

    /// ASAP issue cycle of every RT (index = RT id).
    pub fn asap(&self) -> Vec<u32> {
        self.dag.asap().into_iter().map(|t| t as u32).collect()
    }

    /// ALAP issue cycle of every RT when the whole schedule must fit in
    /// `budget` cycles (every RT must *finish* by `budget`, i.e. issue by
    /// `budget − latency`; latency is handled on the edges, so sinks issue
    /// at `budget − 1` at the latest, counting cycles from 0).
    pub fn alap(&self, budget: u32) -> Vec<u32> {
        self.dag
            .alap(budget as i64 - 1)
            .into_iter()
            .map(|t| t.max(0) as u32)
            .collect()
    }

    /// Length of the critical path in cycles: a lower bound on any
    /// schedule (issue of the last RT is ≥ this, so the schedule length is
    /// ≥ this + 1).
    pub fn critical_path(&self) -> u32 {
        self.dag.critical_path_length() as u32
    }

    /// The time-mirrored dependence graph: every edge `a →(w) b` becomes
    /// `b →(w) a`. Scheduling the mirror forward and flipping the result
    /// (`t ← L−1−t`) is *backward scheduling*: every RT lands at its
    /// latest feasible cycle, which packs tail-heavy programs (outputs,
    /// stores at the end of the time-loop) far better than forward
    /// greed.
    pub fn reversed(&self) -> DependenceGraph {
        let n = self.dag.node_count();
        let mut dag = Dag::new(n);
        for v in 0..n {
            for &(s, w) in self.dag.successors(v) {
                dag.add_edge(s, v, w);
            }
        }
        DependenceGraph { dag }
    }

    /// A topological order of the RTs.
    pub fn topological_order(&self) -> Vec<RtId> {
        self.dag
            .topological_order()
            .expect("checked acyclic at build")
            .into_iter()
            .map(|i| RtId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_ir::{Rt, Usage};

    /// chain: a --(lat 2)--> b --> c ; d independent.
    fn chain_program() -> Program {
        let mut p = Program::new();
        let va = p.add_value("va");
        let vb = p.add_value("vb");
        let mut a = Rt::new("a");
        a.add_def(va);
        a.set_latency(2);
        a.add_usage("mult", Usage::token("mult"));
        let mut b = Rt::new("b");
        b.add_use(va);
        b.add_def(vb);
        b.add_usage("alu", Usage::token("add"));
        let mut c = Rt::new("c");
        c.add_use(vb);
        c.add_usage("alu", Usage::token("add"));
        let mut d = Rt::new("d");
        d.add_usage("rom", Usage::token("const"));
        p.add_rt(a);
        p.add_rt(b);
        p.add_rt(c);
        p.add_rt(d);
        p
    }

    #[test]
    fn flow_edges_with_latency() {
        let p = chain_program();
        let g = DependenceGraph::build(&p).unwrap();
        let succs: Vec<_> = g.successors(RtId(0)).collect();
        assert_eq!(succs, vec![(RtId(1), 2)]);
        let preds: Vec<_> = g.predecessors(RtId(2)).collect();
        assert_eq!(preds, vec![(RtId(1), 1)]);
    }

    #[test]
    fn asap_accounts_for_latency() {
        let g = DependenceGraph::build(&chain_program()).unwrap();
        assert_eq!(g.asap(), vec![0, 2, 3, 0]);
        assert_eq!(g.critical_path(), 3);
    }

    #[test]
    fn alap_under_budget() {
        let g = DependenceGraph::build(&chain_program()).unwrap();
        // Budget 6 cycles: c by 5, b by 4, a by 2; d anywhere up to 5.
        assert_eq!(g.alap(6), vec![2, 4, 5, 5]);
    }

    #[test]
    fn alap_equals_asap_on_critical_path_at_tight_budget() {
        let g = DependenceGraph::build(&chain_program()).unwrap();
        let budget = g.critical_path() + 1;
        let asap = g.asap();
        let alap = g.alap(budget);
        for rt in [0usize, 1, 2] {
            assert_eq!(asap[rt], alap[rt], "rt{rt} should have zero slack");
        }
    }

    #[test]
    fn malformed_program_rejected() {
        let mut p = Program::new();
        let v = p.add_value("v");
        let mut user = Rt::new("user");
        user.add_use(v);
        p.add_rt(user);
        match DependenceGraph::build(&p) {
            Err(DepError::MalformedProgram(m)) => assert!(m.contains("never defined")),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn self_use_is_not_an_edge() {
        // An RT that defines and uses the same value (an in-place update)
        // must not create a self loop.
        let mut p = Program::new();
        let v = p.add_value("v");
        let mut init = Rt::new("init");
        init.add_def(v);
        let mut upd = Rt::new("upd");
        upd.add_use(v);
        p.add_rt(init);
        p.add_rt(upd);
        let g = DependenceGraph::build(&p).unwrap();
        assert_eq!(g.successors(RtId(1)).count(), 0);
    }

    #[test]
    fn topological_order_respects_flow() {
        let g = DependenceGraph::build(&chain_program()).unwrap();
        let order = g.topological_order();
        let pos = |id: RtId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(RtId(0)) < pos(RtId(1)));
        assert!(pos(RtId(1)) < pos(RtId(2)));
    }

    #[test]
    fn sequence_edges_add_ordering() {
        let mut p = Program::new();
        let mut a = Rt::new("read_l");
        a.add_usage("ipb", Usage::token("read"));
        let mut b = Rt::new("read_r");
        b.add_usage("ipb", Usage::token("read"));
        p.add_rt(a);
        p.add_rt(b);
        // No value flow, but the reads must stay ordered.
        let g = DependenceGraph::build_with_edges(&p, &[(RtId(0), RtId(1), 1)]).unwrap();
        assert_eq!(g.asap(), vec![0, 1]);
        // Zero-separation edges allow the same cycle but not reordering.
        let g0 = DependenceGraph::build_with_edges(&p, &[(RtId(0), RtId(1), 0)]).unwrap();
        assert_eq!(g0.asap(), vec![0, 0]);
        let order = g0.topological_order();
        assert_eq!(order, vec![RtId(0), RtId(1)]);
    }

    #[test]
    fn cyclic_sequence_edges_rejected() {
        let mut p = Program::new();
        p.add_rt(Rt::new("a"));
        p.add_rt(Rt::new("b"));
        let err =
            DependenceGraph::build_with_edges(&p, &[(RtId(0), RtId(1), 1), (RtId(1), RtId(0), 1)])
                .unwrap_err();
        assert!(matches!(err, DepError::CyclicDependences(_)));
    }

    #[test]
    fn dep_error_display() {
        let e = DepError::CyclicDependences(vec![1, 2]);
        assert!(e.to_string().contains("cyclic"));
        let e = DepError::MalformedProgram("x".into());
        assert!(e.to_string().contains("malformed"));
    }
}
