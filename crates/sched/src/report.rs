//! Occupation statistics and the figure-9 chart.
//!
//! "The occupation of the RAM, MULT and ALU are all more than 90% which is
//! extremely high taking the irregularities in the dataflow of the
//! application into account. This also clearly proves the quality of the
//! code!" — the evaluation of the paper *is* this report.

use std::fmt::Write as _;

use dspcc_ir::Program;

use crate::schedule::Schedule;

/// Per-resource occupation of a schedule.
#[derive(Debug, Clone)]
pub struct OccupationReport {
    length: u32,
    rows: Vec<OccupationRow>,
    lower_bound: Option<u32>,
}

/// One resource's occupation.
#[derive(Debug, Clone)]
pub struct OccupationRow {
    /// Display label (left column of figure 9).
    pub label: String,
    /// Resource name in RT usage maps.
    pub resource: String,
    /// `busy[t]` = some RT in cycle `t` uses the resource.
    pub busy: Vec<bool>,
}

impl OccupationRow {
    /// Number of busy cycles.
    pub fn busy_cycles(&self) -> u32 {
        self.busy.iter().filter(|&&b| b).count() as u32
    }

    /// Occupation percentage over the schedule length (0–100).
    pub fn percent(&self) -> u32 {
        if self.busy.is_empty() {
            return 0;
        }
        (self.busy_cycles() * 100 + (self.busy.len() as u32 / 2)) / self.busy.len() as u32
    }
}

impl OccupationReport {
    /// Computes occupation of the given `(label, resource)` rows over
    /// `schedule`. Rows appear in the given order, matching figure 9's
    /// layout (`PRG_CNST, ROM, MULT, ALU, ACU, RAM, IPB, OPB_1, OPB_2`).
    pub fn compute(
        program: &Program,
        schedule: &Schedule,
        rows: &[(&str, &str)],
    ) -> OccupationReport {
        let length = schedule.length();
        let rows = rows
            .iter()
            .map(|&(label, resource)| {
                let mut busy = vec![false; length as usize];
                for (t, instr) in schedule.instructions() {
                    if instr
                        .iter()
                        .any(|&rt| program.rt(rt).usage_of(resource).is_some())
                    {
                        busy[t as usize] = true;
                    }
                }
                OccupationRow {
                    label: label.to_owned(),
                    resource: resource.to_owned(),
                    busy,
                }
            })
            .collect();
        OccupationReport {
            length,
            rows,
            lower_bound: None,
        }
    }

    /// Attaches the provable length lower bound
    /// ([`crate::bounds::length_lower_bound`]) so the chart can state how
    /// close the schedule is to optimal — the quality claim the paper made
    /// through occupation percentages alone.
    #[must_use]
    pub fn with_lower_bound(mut self, bound: u32) -> Self {
        self.lower_bound = Some(bound);
        self
    }

    /// The attached length lower bound, if any.
    pub fn lower_bound(&self) -> Option<u32> {
        self.lower_bound
    }

    /// Schedule length in cycles.
    pub fn length(&self) -> u32 {
        self.length
    }

    /// All rows in display order.
    pub fn rows(&self) -> &[OccupationRow] {
        &self.rows
    }

    /// The row for `label`, if present.
    pub fn row(&self, label: &str) -> Option<&OccupationRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Renders the figure-9 style ASCII chart:
    ///
    /// ```text
    /// 92%  MULT       |   **********************…
    ///  3%  IPB        |  *                     *
    /// ----------------|----|----|----|----|----
    ///              0      5   10   15   20
    /// ```
    pub fn chart(&self) -> String {
        let mut out = String::new();
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for row in &self.rows {
            let stars: String = row
                .busy
                .iter()
                .map(|&b| if b { '*' } else { ' ' })
                .collect();
            let _ = writeln!(
                out,
                "{:>3}%  {:<label_width$} |{stars}",
                row.percent(),
                row.label
            );
        }
        // Axis: a tick every 5 cycles.
        let mut axis = String::new();
        let mut labels = String::new();
        for t in 0..self.length {
            axis.push(if t % 5 == 0 { '|' } else { '-' });
        }
        for t in (0..self.length).step_by(10) {
            let pos = t as usize;
            while labels.len() < pos {
                labels.push(' ');
            }
            let _ = write!(labels, "{t}");
        }
        let indent = " ".repeat(label_width + 7);
        let _ = writeln!(out, "{}-{axis}", "-".repeat(label_width + 6));
        let _ = writeln!(out, "{indent}{labels}");
        if let Some(bound) = self.lower_bound {
            let verdict = if self.length <= bound {
                " (provably optimal)"
            } else {
                ""
            };
            let _ = writeln!(out, "{} cycles, lower bound {bound}{verdict}", self.length);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_ir::{Rt, RtId, Usage};

    fn program_and_schedule() -> (Program, Schedule) {
        let mut p = Program::new();
        for i in 0..4 {
            let mut m = Rt::new(format!("m{i}"));
            m.add_usage("mult", Usage::apply("mult", [format!("{i}")]));
            p.add_rt(m);
        }
        let mut a = Rt::new("a");
        a.add_usage("alu", Usage::token("add"));
        p.add_rt(a);
        // mults in cycles 0-3, alu in cycle 2 only.
        let s = Schedule::from_cycles(vec![
            vec![RtId(0)],
            vec![RtId(1)],
            vec![RtId(2), RtId(4)],
            vec![RtId(3)],
        ]);
        (p, s)
    }

    #[test]
    fn occupation_percentages() {
        let (p, s) = program_and_schedule();
        let report = OccupationReport::compute(&p, &s, &[("MULT", "mult"), ("ALU", "alu")]);
        assert_eq!(report.length(), 4);
        assert_eq!(report.row("MULT").unwrap().percent(), 100);
        assert_eq!(report.row("MULT").unwrap().busy_cycles(), 4);
        assert_eq!(report.row("ALU").unwrap().percent(), 25);
        assert!(report.row("GHOST").is_none());
    }

    #[test]
    fn busy_pattern_matches_schedule() {
        let (p, s) = program_and_schedule();
        let report = OccupationReport::compute(&p, &s, &[("ALU", "alu")]);
        assert_eq!(
            report.row("ALU").unwrap().busy,
            vec![false, false, true, false]
        );
    }

    #[test]
    fn chart_has_percent_rows_and_axis() {
        let (p, s) = program_and_schedule();
        let report = OccupationReport::compute(&p, &s, &[("MULT", "mult"), ("ALU", "alu")]);
        let chart = report.chart();
        assert!(chart.contains("100%  MULT"), "{chart}");
        assert!(chart.contains(" 25%  ALU"), "{chart}");
        assert!(chart.contains("****"), "{chart}");
        assert!(chart.contains('|'), "{chart}");
        assert!(chart.lines().count() >= 4);
    }

    #[test]
    fn unused_resource_is_zero_percent() {
        let (p, s) = program_and_schedule();
        let report = OccupationReport::compute(&p, &s, &[("RAM", "ram")]);
        assert_eq!(report.row("RAM").unwrap().percent(), 0);
    }

    #[test]
    fn empty_schedule_report() {
        let p = Program::new();
        let s = Schedule::new();
        let report = OccupationReport::compute(&p, &s, &[("ALU", "alu")]);
        assert_eq!(report.length(), 0);
        assert_eq!(report.row("ALU").unwrap().percent(), 0);
        // Chart should not panic on empty schedules.
        let _ = report.chart();
    }

    #[test]
    fn chart_states_bound_and_optimality() {
        let (p, s) = program_and_schedule();
        let report = OccupationReport::compute(&p, &s, &[("MULT", "mult")]).with_lower_bound(4);
        assert_eq!(report.lower_bound(), Some(4));
        let chart = report.chart();
        assert!(
            chart.contains("4 cycles, lower bound 4 (provably optimal)"),
            "{chart}"
        );
        let loose = OccupationReport::compute(&p, &s, &[("MULT", "mult")]).with_lower_bound(3);
        assert!(loose.chart().contains("4 cycles, lower bound 3\n"));
    }

    #[test]
    fn percent_rounds_to_nearest() {
        // 2 busy of 3 cycles = 66.7% → rounds to 67.
        let row = OccupationRow {
            label: "X".into(),
            resource: "x".into(),
            busy: vec![true, true, false],
        };
        assert_eq!(row.percent(), 67);
    }
}
