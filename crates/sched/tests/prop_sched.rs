//! Property-based tests for the bound-aware parallel scheduling engine.
//!
//! Two properties anchor the PR-2 rework:
//!
//! * the provable length lower bound (`dspcc_sched::bounds`) never
//!   exceeds the length of *any* verified schedule — soundness is what
//!   lets the restart loops stop at the bound;
//! * the parallel restart engine is bit-identical to the serial one for
//!   every thread count — the deterministic `(length, index)` reduction,
//!   not luck.

use dspcc_ir::{Program, Rt, Usage};
use dspcc_sched::bounds::length_lower_bound;
use dspcc_sched::compact::{schedule_and_compact, schedule_and_compact_threaded};
use dspcc_sched::deps::DependenceGraph;
use dspcc_sched::list::{
    best_effort_schedule, best_effort_schedule_threaded, insertion_schedule, list_schedule,
    ListConfig,
};
use dspcc_sched::ConflictMatrix;
use proptest::prelude::*;

/// Per-RT shape: (unit id, usage id, carries a private bus usage, latency).
type RtShape = (usize, usize, bool, u32);

/// Builds a program from random RT shapes and lower→higher value edges.
fn build_program(shapes: &[RtShape], edges: &[(usize, usize)]) -> Program {
    const UNITS: [&str; 4] = ["alu", "mult", "ram", "rom"];
    const MODES: [&str; 3] = ["a", "b", "c"];
    let n = shapes.len();
    let mut p = Program::new();
    let values: Vec<_> = (0..n).map(|i| p.add_value(format!("v{i}"))).collect();
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a < b && !uses[b].contains(&a) {
            uses[b].push(a);
        }
    }
    for (i, &(unit, mode, bus, latency)) in shapes.iter().enumerate() {
        let mut rt = Rt::new(format!("rt{i}"));
        rt.add_def(values[i]);
        rt.set_latency(latency);
        rt.add_usage(UNITS[unit], Usage::token(MODES[mode]));
        if bus {
            // A per-RT-distinct bus usage: conflicts with every other bus
            // carrier, the "distinct data ⇒ distinct transfer" case.
            rt.add_usage("bus", Usage::apply("xfer", [format!("v{i}")]));
        }
        for &u in &uses[i] {
            rt.add_use(values[u]);
        }
        p.add_rt(rt);
    }
    p
}

/// Strategy: a random program of up to `max_n` RTs.
fn arb_program(max_n: usize) -> impl Strategy<Value = Program> {
    (2..=max_n).prop_flat_map(|n| {
        let shape = (0..4usize, 0..3usize, any::<bool>(), 1u32..4);
        (
            proptest::collection::vec(shape, n..=n),
            proptest::collection::vec((0..n, 0..n), 0..n * 2),
        )
            .prop_map(|(shapes, edges)| build_program(&shapes, &edges))
    })
}

proptest! {
    /// (b) The lower bound never exceeds any verified schedule's length.
    #[test]
    fn lower_bound_is_sound(p in arb_program(24)) {
        let deps = DependenceGraph::build(&p).unwrap();
        let matrix = ConflictMatrix::build(&p);
        let bound = length_lower_bound(&p, &deps, &matrix);
        let list = list_schedule(&p, &deps, &ListConfig::default()).unwrap();
        list.verify(&p, &deps).unwrap();
        prop_assert!(bound <= list.length(), "bound {bound} > list {}", list.length());
        let ins = insertion_schedule(&p, &deps, &matrix, &ListConfig::default()).unwrap();
        ins.verify(&p, &deps).unwrap();
        prop_assert!(bound <= ins.length(), "bound {bound} > insertion {}", ins.length());
        let best = schedule_and_compact(&p, &deps, None, 2).unwrap();
        best.verify(&p, &deps).unwrap();
        prop_assert!(bound <= best.length(), "bound {bound} > compacted {}", best.length());
    }

    /// (a) Parallel restarts produce bit-identical schedules to serial
    /// evaluation, for any thread count.
    #[test]
    fn parallel_restarts_match_serial(p in arb_program(20)) {
        let deps = DependenceGraph::build(&p).unwrap();
        let serial = best_effort_schedule(&p, &deps, None, 3).unwrap();
        serial.verify(&p, &deps).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = best_effort_schedule_threaded(&p, &deps, None, 3, threads).unwrap();
            prop_assert_eq!(&serial, &parallel, "threads = {}", threads);
        }
    }

    /// (a, end to end) The full production scheduler is thread-count
    /// invariant too — construction, compaction, and perturbation.
    #[test]
    fn compacted_schedule_is_thread_count_invariant(p in arb_program(16)) {
        let deps = DependenceGraph::build(&p).unwrap();
        let serial = schedule_and_compact_threaded(&p, &deps, None, 2, 1).unwrap();
        let parallel = schedule_and_compact_threaded(&p, &deps, None, 2, 4).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// The compacted production schedule stays verified on random
    /// programs (the engine rework changed every loop around it).
    #[test]
    fn compacted_schedules_verify(p in arb_program(20)) {
        let deps = DependenceGraph::build(&p).unwrap();
        let s = schedule_and_compact(&p, &deps, None, 1).unwrap();
        s.verify(&p, &deps).unwrap();
    }
}
