//! Property-based tests for the frontend: random well-formed programs
//! parse, analyse, and interpret deterministically and within range.

use dspcc_dfg::{parse, Dfg, Interpreter};
use dspcc_num::WordFormat;
use proptest::prelude::*;

/// Random well-formed source: declarations, a local chain, a signal
/// update, outputs.
fn arb_program() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0u8..6, 0usize..6, 0usize..6), 1..10),
        1u32..4,
        -0.9f64..0.9,
    )
        .prop_map(|(ops, depth, coeff)| {
            let mut src = String::new();
            src.push_str("input u; signal s; output y;\n");
            src.push_str(&format!("coeff k = {coeff:.6};\n"));
            src.push_str("v0 := pass(u);\n");
            src.push_str(&format!("v1 := pass(u@{depth});\n"));
            src.push_str("v2 := pass(s@1);\n");
            let mut n = 3usize;
            for (op, a, b) in ops {
                let a = a % n;
                let b = b % n;
                let stmt = match op {
                    0 => format!("v{n} := add(v{a}, v{b});\n"),
                    1 => format!("v{n} := add_clip(v{a}, v{b});\n"),
                    2 => format!("v{n} := sub(v{a}, v{b});\n"),
                    3 => format!("v{n} := mlt(k, v{a});\n"),
                    4 => format!("v{n} := pass_clip(v{a});\n"),
                    _ => format!("v{n} := pass(v{a});\n"),
                };
                src.push_str(&stmt);
                n += 1;
            }
            src.push_str(&format!("s = pass_clip(v{});\n", n - 1));
            src.push_str(&format!("y = pass(v{});\n", n - 1));
            src
        })
}

proptest! {
    /// Well-formed sources always build a DFG whose nodes are in
    /// topological order with correct arities.
    #[test]
    fn random_programs_build(src in arb_program()) {
        let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
        for (i, node) in dfg.nodes().iter().enumerate() {
            prop_assert_eq!(node.inputs.len(), node.op.arity());
            for input in &node.inputs {
                prop_assert!((input.0 as usize) < i);
            }
        }
    }

    /// Interpretation is deterministic and stays within the word range.
    #[test]
    fn interpretation_deterministic_and_in_range(
        src in arb_program(),
        samples in proptest::collection::vec(-32768i64..=32767, 1..12),
    ) {
        let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
        let q15 = WordFormat::q15();
        let mut a = Interpreter::new(&dfg, q15);
        let mut b = Interpreter::new(&dfg, q15);
        for &x in &samples {
            let ya = a.step(&[x]);
            let yb = b.step(&[x]);
            prop_assert_eq!(&ya, &yb);
            for &v in &ya {
                prop_assert!(q15.contains(v), "output {v} out of range");
            }
        }
    }

    /// Zero input from reset keeps every signal at zero (linearity sanity:
    /// the generated ops have no bias terms).
    #[test]
    fn zero_in_zero_out(src in arb_program(), frames in 1usize..8) {
        let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
        let mut interp = Interpreter::new(&dfg, WordFormat::q15());
        for _ in 0..frames {
            let y = interp.step(&[0]);
            prop_assert!(y.iter().all(|&v| v == 0));
        }
    }

    /// The parser round-trips through its own error paths without
    /// panicking on arbitrary input.
    #[test]
    fn parser_never_panics(junk in "[ -~\n]{0,120}") {
        let _ = parse(&junk);
    }
}
