//! Application source language and signal-flow graph for `dspcc`.
//!
//! The paper programs its cores in a small sequential DSP language
//! (section 7 shows the treble section of the audio application):
//!
//! ```text
//! /* Treble section */
//! x0 := u@2;            /* U delayed over 2 frames */
//! m  := mlt(d2, x0);
//! a  := pass(m);
//! x2 := v@1;
//! m  := mlt(e1, x2);
//! a  := add(m, a);
//! x1 := u@1;
//! m  := mlt(d1, x1);
//! rd := add_clip(m, a);
//! v  = rd;
//! ```
//!
//! This crate implements that language end to end:
//!
//! * [`parse`] — lexer + parser producing an AST ([`ast`]);
//! * [`Dfg`] — semantic analysis into a *signal-flow graph*: one node per
//!   operation, frame-delay taps (`u@2`) reading signal history, signal
//!   writes (`v = rd`) updating it;
//! * [`Interpreter`] — the bit-exact reference executor of the time-loop,
//!   used as the golden model against the cycle-accurate simulator.
//!
//! The body of the program **is** the time-loop: it executes once per
//! sample frame, the repetitive part of the DSP application that the
//! controller's hardware loop implements.
//!
//! # Example
//!
//! ```
//! use dspcc_dfg::{parse, Dfg, Interpreter};
//! use dspcc_num::WordFormat;
//!
//! let src = "
//!     input u; output y; signal s;
//!     coeff k = 0.5;
//!     s = add(mlt(k, u), s@1);   /* leaky accumulator */
//!     y = pass_clip(s);
//! ";
//! let program = parse(src)?;
//! let dfg = Dfg::build(&program)?;
//! let mut interp = Interpreter::new(&dfg, WordFormat::q15());
//! let q15 = WordFormat::q15();
//! let out = interp.step(&[q15.from_f64(0.5)]);
//! assert_eq!(out.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
mod graph;
mod interp;
mod lexer;
mod parser;
mod sema;

pub use graph::{Dfg, DfgNode, DfgOp, NodeId, SignalInfo};
pub use interp::{Interpreter, StepError};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use sema::SemaError;
