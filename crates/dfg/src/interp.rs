//! Reference interpreter: the golden model of time-loop semantics.
//!
//! Executes the signal-flow graph one frame at a time with the shared
//! fixed-point arithmetic of [`dspcc_num`], so generated code (run on the
//! cycle-accurate simulator) can be differential-tested against it
//! bit-exactly.

use std::collections::VecDeque;
use std::fmt;

use dspcc_num::WordFormat;

use crate::graph::{Dfg, DfgOp};

/// Invalid frame input handed to [`Interpreter::try_step`].
///
/// The same surface the cycle-accurate simulator checks
/// (`dspcc_sim::SimError::InputCount`): golden model and microcode
/// execution must agree not only on outputs but on *which inputs are
/// malformed* — the conformance fleet relies on that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// Wrong number of input samples for a frame.
    InputCount {
        /// Samples provided.
        got: usize,
        /// Samples expected (one per DFG input port).
        expected: usize,
    },
    /// An input sample is not representable in the word format.
    InputOutOfRange {
        /// The input port.
        port: usize,
        /// The offending sample.
        value: i64,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::InputCount { got, expected } => {
                write!(f, "frame got {got} input samples, expected {expected}")
            }
            StepError::InputOutOfRange { port, value } => {
                write!(f, "input sample {value} on port {port} out of format range")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// Frame-by-frame executor of a [`Dfg`].
///
/// # Example
///
/// ```
/// use dspcc_dfg::{parse, Dfg, Interpreter};
/// use dspcc_num::WordFormat;
///
/// let dfg = Dfg::build(&parse("input u; output y; y = add(u, u);")?)?;
/// let q15 = WordFormat::q15();
/// let mut interp = Interpreter::new(&dfg, q15);
/// assert_eq!(interp.step(&[100]), vec![200]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<'a> {
    dfg: &'a Dfg,
    format: WordFormat,
    /// Per signal: history ring, front = previous frame (`@1`).
    history: Vec<VecDeque<i64>>,
    /// Scratch: per-node values of the current frame.
    values: Vec<i64>,
    frames_run: u64,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with all delay lines zero-initialised (the
    /// hardware reset state).
    pub fn new(dfg: &'a Dfg, format: WordFormat) -> Self {
        let history = dfg
            .signals()
            .iter()
            .map(|s| {
                let mut h = VecDeque::with_capacity(s.max_tap_depth as usize);
                h.extend(std::iter::repeat_n(0, s.max_tap_depth as usize));
                h
            })
            .collect();
        Interpreter {
            dfg,
            format,
            history,
            values: vec![0; dfg.nodes().len()],
            frames_run: 0,
        }
    }

    /// The word format in use.
    pub fn format(&self) -> WordFormat {
        self.format
    }

    /// Number of frames executed so far.
    pub fn frames_run(&self) -> u64 {
        self.frames_run
    }

    /// Executes one frame: consumes one sample per input port, returns one
    /// sample per output port (in port order).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of input ports or
    /// if an input sample is not representable in the word format — use
    /// [`Interpreter::try_step`] for the non-panicking variant.
    pub fn step(&mut self, inputs: &[i64]) -> Vec<i64> {
        match self.try_step(inputs) {
            Ok(outputs) => outputs,
            Err(StepError::InputCount { .. }) => {
                panic!("expected one sample per input port")
            }
            Err(StepError::InputOutOfRange { value, .. }) => {
                panic!("input sample {value} out of range for {}", self.format)
            }
        }
    }

    /// As [`Interpreter::step`], but malformed frames are reported as
    /// [`StepError`] instead of panicking — the golden model mirrors the
    /// simulator's own input validation, so differential drivers can treat
    /// a disagreement on *validity* exactly like a disagreement on values.
    ///
    /// # Errors
    ///
    /// [`StepError::InputCount`] on wrong arity,
    /// [`StepError::InputOutOfRange`] on unrepresentable samples; the
    /// interpreter state is untouched in both cases.
    pub fn try_step(&mut self, inputs: &[i64]) -> Result<Vec<i64>, StepError> {
        if inputs.len() != self.dfg.input_ports().len() {
            return Err(StepError::InputCount {
                got: inputs.len(),
                expected: self.dfg.input_ports().len(),
            });
        }
        if let Some((port, &value)) = inputs
            .iter()
            .enumerate()
            .find(|&(_, &x)| !self.format.contains(x))
        {
            return Err(StepError::InputOutOfRange { port, value });
        }
        let fmt = self.format;
        let mut outputs = vec![0; self.dfg.output_ports().len()];
        let mut signal_updates: Vec<Option<i64>> = vec![None; self.dfg.signals().len()];
        for (i, node) in self.dfg.nodes().iter().enumerate() {
            let arg = |k: usize| self.values[node.inputs[k].0 as usize];
            let v = match &node.op {
                DfgOp::Input { port } => inputs[*port],
                DfgOp::Tap { signal, depth } => self.history[*signal][(*depth - 1) as usize],
                DfgOp::Coeff { index } => fmt.from_f64(self.dfg.coeffs()[*index].1),
                DfgOp::ProgConst { value } => fmt.from_f64(*value),
                DfgOp::Mlt => fmt.mult(arg(0), arg(1)),
                DfgOp::Add => fmt.add(arg(0), arg(1)),
                DfgOp::AddClip => fmt.add_clip(arg(0), arg(1)),
                DfgOp::Sub => fmt.sub(arg(0), arg(1)),
                DfgOp::Pass => arg(0),
                DfgOp::PassClip => fmt.saturate(arg(0)),
                DfgOp::Output { port } => {
                    outputs[*port] = arg(0);
                    arg(0)
                }
                DfgOp::SignalWrite { signal } => {
                    signal_updates[*signal] = Some(arg(0));
                    arg(0)
                }
            };
            self.values[i] = v;
        }
        // Advance histories: the frame's value of each signal becomes @1.
        for (s, info) in self.dfg.signals().iter().enumerate() {
            if info.max_tap_depth == 0 {
                continue;
            }
            let current = if info.is_input {
                let port = self
                    .dfg
                    .input_ports()
                    .iter()
                    .position(|p| *p == info.name)
                    .expect("input signal has a port");
                inputs[port]
            } else {
                // Sema guarantees tapped signals are updated every frame.
                signal_updates[s].expect("tapped signal updated")
            };
            self.history[s].push_front(current);
            self.history[s].truncate(info.max_tap_depth as usize);
        }
        self.frames_run += 1;
        Ok(outputs)
    }

    /// Runs one frame per row of `input_frames`, collecting output frames.
    pub fn run(&mut self, input_frames: &[Vec<i64>]) -> Vec<Vec<i64>> {
        input_frames.iter().map(|f| self.step(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn build(src: &str) -> Dfg {
        Dfg::build(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn passthrough() {
        let dfg = build("input u; output y; y = pass(u);");
        let mut i = Interpreter::new(&dfg, WordFormat::q15());
        assert_eq!(i.step(&[123]), vec![123]);
        assert_eq!(i.step(&[-45]), vec![-45]);
        assert_eq!(i.frames_run(), 2);
    }

    #[test]
    fn unit_delay() {
        let dfg = build("input u; output y; y = pass(u@1);");
        let mut i = Interpreter::new(&dfg, WordFormat::q15());
        assert_eq!(i.step(&[10]), vec![0]); // reset state
        assert_eq!(i.step(&[20]), vec![10]);
        assert_eq!(i.step(&[30]), vec![20]);
    }

    #[test]
    fn two_frame_delay() {
        let dfg = build("input u; output y; y = pass(u@2);");
        let mut i = Interpreter::new(&dfg, WordFormat::q15());
        assert_eq!(
            i.run(&[vec![1], vec![2], vec![3], vec![4]]),
            vec![vec![0], vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn feedback_accumulator() {
        // s = u + s@1 : running sum.
        let dfg = build("input u; signal s; output y; s = add(u, s@1); y = s;");
        let mut i = Interpreter::new(&dfg, WordFormat::q15());
        assert_eq!(i.step(&[5]), vec![5]);
        assert_eq!(i.step(&[7]), vec![12]);
        assert_eq!(i.step(&[1]), vec![13]);
    }

    #[test]
    fn coefficients_and_mult() {
        let q15 = WordFormat::q15();
        let dfg = build("input u; coeff k = 0.5; output y; y = mlt(k, u);");
        let mut i = Interpreter::new(&dfg, q15);
        let x = q15.from_f64(0.5);
        let y = i.step(&[x])[0];
        assert!((q15.to_f64(y) - 0.25).abs() < 1e-3);
    }

    #[test]
    fn clip_saturates() {
        let q15 = WordFormat::q15();
        let dfg = build("input u; output y; y = add_clip(u, u);");
        let mut i = Interpreter::new(&dfg, q15);
        assert_eq!(i.step(&[q15.max_value()]), vec![q15.max_value()]);
        // Plain add would wrap:
        let dfg2 = build("input u; output y; y = add(u, u);");
        let mut i2 = Interpreter::new(&dfg2, q15);
        assert_eq!(i2.step(&[q15.max_value()]), vec![-2]);
    }

    #[test]
    fn treble_section_runs() {
        let q15 = WordFormat::q15();
        let dfg = build(
            "input u; signal v; output y;
             coeff d1 = 0.25; coeff d2 = 0.125; coeff e1 = -0.5;
             x0 := u@2;
             m  := mlt(d2, x0);
             a  := pass(m);
             x2 := v@1;
             m  := mlt(e1, x2);
             a  := add(m, a);
             x1 := u@1;
             m  := mlt(d1, x1);
             rd := add_clip(m, a);
             v  = rd;
             y  = rd;",
        );
        let mut i = Interpreter::new(&dfg, q15);
        let one = q15.from_f64(0.9);
        // Impulse response: first frame all taps zero → output 0.
        assert_eq!(i.step(&[one]), vec![0]);
        // Second frame: u@1 = impulse → y = d1 * impulse.
        let y1 = i.step(&[0])[0];
        assert!((q15.to_f64(y1) - 0.25 * 0.9).abs() < 1e-3);
        // Third frame: u@2 = impulse, v@1 = y1 → d2*0.9 + e1*y1.
        let y2 = i.step(&[0])[0];
        let expected = 0.125 * 0.9 + (-0.5) * (0.25 * 0.9);
        assert!((q15.to_f64(y2) - expected).abs() < 1e-3, "{y2}");
    }

    #[test]
    fn multiple_outputs_in_port_order() {
        let dfg = build("input u; output a; output b; b = pass(u); a = add(u, u);");
        let mut i = Interpreter::new(&dfg, WordFormat::q15());
        // Port order is declaration order (a, b), not statement order.
        assert_eq!(i.step(&[3]), vec![6, 3]);
    }

    #[test]
    #[should_panic(expected = "one sample per input port")]
    fn wrong_input_count_panics() {
        let dfg = build("input u; output y; y = pass(u);");
        Interpreter::new(&dfg, WordFormat::q15()).step(&[]);
    }

    #[test]
    fn try_step_reports_arity_and_range_errors() {
        let dfg = build("input u; input v; output y; y = add(u, v);");
        let mut i = Interpreter::new(&dfg, WordFormat::q15());
        assert_eq!(
            i.try_step(&[1]),
            Err(StepError::InputCount {
                got: 1,
                expected: 2
            })
        );
        assert_eq!(
            i.try_step(&[1, 2, 3]),
            Err(StepError::InputCount {
                got: 3,
                expected: 2
            })
        );
        assert_eq!(
            i.try_step(&[1, 1 << 20]),
            Err(StepError::InputOutOfRange {
                port: 1,
                value: 1 << 20
            })
        );
        // Errors leave the state untouched: no frame was consumed...
        assert_eq!(i.frames_run(), 0);
        // ...and a well-formed frame still works.
        assert_eq!(i.try_step(&[3, 4]), Ok(vec![7]));
        assert_eq!(i.frames_run(), 1);
        // Display strings name the numbers.
        let e = StepError::InputCount {
            got: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("got 1"));
        assert!(StepError::InputOutOfRange { port: 0, value: 9 }
            .to_string()
            .contains("port 0"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_input_panics() {
        let dfg = build("input u; output y; y = pass(u);");
        Interpreter::new(&dfg, WordFormat::q15()).step(&[1 << 20]);
    }
}
