//! Hand-written lexer for the application source language.

use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds of the source language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `:=`
    Assign,
    /// `=`
    Equals,
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Assign => write!(f, "`:=`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::At => write!(f, "`@`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semicolon => write!(f, "`;`"),
        }
    }
}

/// Lexical error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `src`.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated comments, malformed numbers, or
/// unexpected characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    // Byte-sliced scanning: the language is ASCII, so non-ASCII bytes can
    // only be "unexpected character" errors (decoded properly below), and
    // identifiers/numbers are borrowed straight from the source with no
    // per-character collection.
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated comment".to_owned(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            ':' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Assign,
                    line,
                });
                i += 2;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
                i += 1;
            }
            '@' => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    line,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    line,
                });
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("malformed number `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            _ => {
                // `i` sits on a character boundary (everything consumed so
                // far was ASCII), so decode the real character.
                let other = src[i..].chars().next().unwrap_or('?');
                // Non-ASCII whitespace (a no-break space pasted from a
                // document, say) is still whitespace; Unicode line
                // terminators still count as line breaks so later
                // diagnostics point at the right line.
                if other.is_whitespace() {
                    if matches!(other, '\u{85}' | '\u{2028}' | '\u{2029}') {
                        line += 1;
                    }
                    i += other.len_utf8();
                    continue;
                }
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn skips_non_ascii_whitespace() {
        // A no-break space (U+00A0) between tokens — the kind of byte a
        // source picks up when copy-pasted from a document.
        let ks = kinds("input\u{a0}u;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("input".into()),
                TokenKind::Ident("u".into()),
                TokenKind::Semicolon,
            ]
        );
        // Unicode line terminators count as line breaks for diagnostics.
        let err = tokenize("input u;\u{2028}%").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
    }

    #[test]
    fn lexes_paper_statement() {
        let ks = kinds("m := mlt(d2, x0);");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("m".into()),
                TokenKind::Assign,
                TokenKind::Ident("mlt".into()),
                TokenKind::LParen,
                TokenKind::Ident("d2".into()),
                TokenKind::Comma,
                TokenKind::Ident("x0".into()),
                TokenKind::RParen,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn lexes_tap_and_update() {
        let ks = kinds("x0 := u@2; v = rd;");
        assert!(ks.contains(&TokenKind::At));
        assert!(ks.contains(&TokenKind::Equals));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Semicolon).count(), 2);
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = tokenize("/* one\ntwo */\nx := 1;").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(kinds("0.245"), vec![TokenKind::Number(0.245)]);
        assert_eq!(kinds("-0.5"), vec![TokenKind::Number(-0.5)]);
        assert_eq!(kinds("2"), vec![TokenKind::Number(2.0)]);
        assert_eq!(kinds("1e-3"), vec![TokenKind::Number(1e-3)]);
    }

    #[test]
    fn unterminated_comment_is_error() {
        let err = tokenize("x := 1; /* oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = tokenize("x := 1 # 2;").unwrap_err();
        assert!(err.message.contains('#'));
        assert!(err.to_string().starts_with("line 1:"));
    }

    #[test]
    fn malformed_number_is_error() {
        let err = tokenize("x := 1.2.3;").unwrap_err();
        assert!(err.message.contains("malformed number"));
    }

    #[test]
    fn identifiers_with_underscores() {
        assert_eq!(kinds("add_clip"), vec![TokenKind::Ident("add_clip".into())]);
    }
}
