//! The signal-flow graph (SFG / data-flow graph) built from the AST.
//!
//! One node per operation *use* — coefficients and taps are not shared
//! between consumers, because each consumer needs its own ROM fetch or RAM
//! read RT; common-subexpression sharing happens, if at all, at the
//! scheduler level when two identical RTs land in the same cycle.

use std::fmt;

/// Identifier of a node in a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Node operation kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum DfgOp {
    /// Current-frame sample from input port `port`.
    Input {
        /// Index into [`Dfg::input_ports`].
        port: usize,
    },
    /// Value of signal `signal`, `depth` frames ago (`depth ≥ 1`).
    Tap {
        /// Index into [`Dfg::signals`].
        signal: usize,
        /// Frames of delay.
        depth: u32,
    },
    /// Coefficient from the ROM.
    Coeff {
        /// Index into [`Dfg::coeffs`].
        index: usize,
    },
    /// Immediate constant from the program word.
    ProgConst {
        /// The constant's real value.
        value: f64,
    },
    /// Q-format multiply (2 inputs).
    Mlt,
    /// Wrapping add (2 inputs).
    Add,
    /// Saturating add (2 inputs).
    AddClip,
    /// Wrapping subtract (2 inputs).
    Sub,
    /// Identity (1 input).
    Pass,
    /// Saturating identity (1 input).
    PassClip,
    /// Emit to output port `port` (1 input).
    Output {
        /// Index into [`Dfg::output_ports`].
        port: usize,
    },
    /// Update signal `signal` for this frame (1 input).
    SignalWrite {
        /// Index into [`Dfg::signals`].
        signal: usize,
    },
}

impl DfgOp {
    /// Expected number of value inputs.
    pub fn arity(&self) -> usize {
        match self {
            DfgOp::Input { .. }
            | DfgOp::Tap { .. }
            | DfgOp::Coeff { .. }
            | DfgOp::ProgConst { .. } => 0,
            DfgOp::Pass | DfgOp::PassClip | DfgOp::Output { .. } | DfgOp::SignalWrite { .. } => 1,
            DfgOp::Mlt | DfgOp::Add | DfgOp::AddClip | DfgOp::Sub => 2,
        }
    }
}

/// A node: operation plus value inputs (node ids strictly smaller than the
/// node's own id, so node order is a topological order).
#[derive(Debug, Clone, PartialEq)]
pub struct DfgNode {
    /// The operation.
    pub op: DfgOp,
    /// Inputs in operand order.
    pub inputs: Vec<NodeId>,
    /// Diagnostic name (the assigned variable, where there is one).
    pub name: String,
}

/// A persistent signal: a declared `signal`, or an input stream whose
/// history is tapped.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalInfo {
    /// Source-level name.
    pub name: String,
    /// Deepest tap (`name@k`) in the program; 0 when never tapped.
    pub max_tap_depth: u32,
    /// Whether the signal is an input stream (written by sampling, not by
    /// an update statement).
    pub is_input: bool,
}

/// The signal-flow graph of one time-loop body.
///
/// Nodes are stored in evaluation (topological) order. Build one with
/// [`Dfg::build`] from a parsed [`crate::ast::SourceProgram`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dfg {
    pub(crate) nodes: Vec<DfgNode>,
    pub(crate) input_ports: Vec<String>,
    pub(crate) output_ports: Vec<String>,
    pub(crate) signals: Vec<SignalInfo>,
    pub(crate) coeffs: Vec<(String, f64)>,
}

impl Dfg {
    /// Nodes in evaluation order.
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.0 as usize]
    }

    /// Input port names in port order.
    pub fn input_ports(&self) -> &[String] {
        &self.input_ports
    }

    /// Output port names in port order.
    pub fn output_ports(&self) -> &[String] {
        &self.output_ports
    }

    /// Persistent signals (inputs included).
    pub fn signals(&self) -> &[SignalInfo] {
        &self.signals
    }

    /// ROM coefficients as `(name, value)` in ROM order.
    pub fn coeffs(&self) -> &[(String, f64)] {
        &self.coeffs
    }

    /// Ids of all nodes, in evaluation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Counts nodes matching `pred` — used for resource-mix reports.
    pub fn count_ops(&self, mut pred: impl FnMut(&DfgOp) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.op)).count()
    }

    /// A per-kind operation census: (multiplies, alu ops, taps, signal
    /// writes, coefficient fetches, program constants, inputs, outputs).
    ///
    /// The paper's section 7 sizes the audio application by exactly this
    /// mix ("the number of additions, RAM accesses and multiplications form
    /// the bottlenecks").
    pub fn census(&self) -> OpCensus {
        OpCensus {
            mults: self.count_ops(|o| matches!(o, DfgOp::Mlt)),
            alu_ops: self.count_ops(|o| {
                matches!(
                    o,
                    DfgOp::Add | DfgOp::AddClip | DfgOp::Sub | DfgOp::Pass | DfgOp::PassClip
                )
            }),
            taps: self.count_ops(|o| matches!(o, DfgOp::Tap { .. })),
            signal_writes: self.count_ops(|o| matches!(o, DfgOp::SignalWrite { .. })),
            coeff_fetches: self.count_ops(|o| matches!(o, DfgOp::Coeff { .. })),
            prog_consts: self.count_ops(|o| matches!(o, DfgOp::ProgConst { .. })),
            inputs: self.count_ops(|o| matches!(o, DfgOp::Input { .. })),
            outputs: self.count_ops(|o| matches!(o, DfgOp::Output { .. })),
        }
    }
}

/// Operation counts of a [`Dfg`] (see [`Dfg::census`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCensus {
    /// `mlt` nodes.
    pub mults: usize,
    /// `add`/`add_clip`/`sub`/`pass`/`pass_clip` nodes.
    pub alu_ops: usize,
    /// History taps (RAM reads).
    pub taps: usize,
    /// Signal updates (RAM writes).
    pub signal_writes: usize,
    /// Coefficient fetches (ROM reads).
    pub coeff_fetches: usize,
    /// Program constants.
    pub prog_consts: usize,
    /// Input samples per frame.
    pub inputs: usize,
    /// Output samples per frame.
    pub outputs: usize,
}

impl fmt::Display for OpCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mults={} alu={} taps={} writes={} coeffs={} consts={} in={} out={}",
            self.mults,
            self.alu_ops,
            self.taps,
            self.signal_writes,
            self.coeff_fetches,
            self.prog_consts,
            self.inputs,
            self.outputs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn arity_table() {
        assert_eq!(DfgOp::Mlt.arity(), 2);
        assert_eq!(DfgOp::Pass.arity(), 1);
        assert_eq!(DfgOp::Input { port: 0 }.arity(), 0);
        assert_eq!(DfgOp::SignalWrite { signal: 0 }.arity(), 1);
        assert_eq!(DfgOp::ProgConst { value: 0.0 }.arity(), 0);
    }

    #[test]
    fn census_of_treble_section() {
        let src = "
            input u; signal v; output y;
            coeff d1 = 0.1; coeff d2 = 0.2; coeff e1 = 0.3;
            x0 := u@2;
            m  := mlt(d2, x0);
            a  := pass(m);
            x2 := v@1;
            m  := mlt(e1, x2);
            a  := add(m, a);
            x1 := u@1;
            m  := mlt(d1, x1);
            rd := add_clip(m, a);
            v  = rd;
            y  = rd;
        ";
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let c = dfg.census();
        assert_eq!(c.mults, 3);
        assert_eq!(c.alu_ops, 3); // pass, add, add_clip
        assert_eq!(c.taps, 3); // u@2, v@1, u@1
        assert_eq!(c.signal_writes, 1); // v
        assert_eq!(c.coeff_fetches, 3);
        assert_eq!(c.outputs, 1);
        assert_eq!(c.inputs, 0); // u only used via taps
        assert!(c.to_string().contains("mults=3"));
    }

    #[test]
    fn nodes_are_in_topological_order() {
        let src = "input u; output y; y = add(mlt(u, u), u);";
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        for (i, n) in dfg.nodes().iter().enumerate() {
            for input in &n.inputs {
                assert!((input.0 as usize) < i, "node {i} uses later node");
            }
            assert_eq!(n.inputs.len(), n.op.arity());
        }
    }

    #[test]
    fn signals_track_max_tap_depth() {
        let src = "input u; signal v; output y; v = pass(u@3); y = v;";
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let u = dfg.signals().iter().find(|s| s.name == "u").unwrap();
        assert_eq!(u.max_tap_depth, 3);
        assert!(u.is_input);
        let v = dfg.signals().iter().find(|s| s.name == "v").unwrap();
        assert_eq!(v.max_tap_depth, 0);
        assert!(!v.is_input);
    }
}
