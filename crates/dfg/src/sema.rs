//! Semantic analysis: AST → signal-flow graph.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{AssignKind, Decl, Expr, SourceProgram, Stmt};
use crate::graph::{Dfg, DfgNode, DfgOp, NodeId, SignalInfo};

/// Semantic error with the offending source line where known.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// 1-based line, 0 if not statement-specific.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SemaError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symbol {
    Input { port: usize, signal: usize },
    Output { port: usize },
    Signal { signal: usize },
    Coeff { index: usize },
    Const { index: usize },
}

struct Builder<'a> {
    program: &'a SourceProgram,
    dfg: Dfg,
    symbols: BTreeMap<String, Symbol>,
    const_values: Vec<f64>,
    locals: BTreeMap<String, NodeId>,
    signal_current: Vec<Option<NodeId>>,
    output_assigned: Vec<bool>,
    input_nodes: Vec<Option<NodeId>>,
}

impl Dfg {
    /// Builds the signal-flow graph from a parsed program, performing all
    /// semantic checks.
    ///
    /// # Errors
    ///
    /// Returns [`SemaError`] on: duplicate declarations; assignment to
    /// inputs/coefficients; local assignment to declared names; double
    /// update of a signal or output; use of undeclared names; use of a
    /// signal's current value before its update; taps of non-signals;
    /// unknown operations or wrong arity; outputs never assigned; signals
    /// tapped but never updated.
    pub fn build(program: &SourceProgram) -> Result<Dfg, SemaError> {
        let mut b = Builder {
            program,
            dfg: Dfg::default(),
            symbols: BTreeMap::new(),
            const_values: Vec::new(),
            locals: BTreeMap::new(),
            signal_current: Vec::new(),
            output_assigned: Vec::new(),
            input_nodes: Vec::new(),
        };
        b.declare()?;
        for stmt in &program.stmts {
            b.statement(stmt)?;
        }
        b.finish()
    }
}

impl Builder<'_> {
    fn err(&self, line: u32, message: String) -> SemaError {
        SemaError { line, message }
    }

    fn declare(&mut self) -> Result<(), SemaError> {
        for decl in &self.program.decls {
            let name = decl.name().to_owned();
            if self.symbols.contains_key(&name) {
                return Err(self.err(0, format!("`{name}` declared twice")));
            }
            let sym = match decl {
                Decl::Input(_) => {
                    let port = self.dfg.input_ports.len();
                    self.dfg.input_ports.push(name.clone());
                    self.input_nodes.push(None);
                    let signal = self.dfg.signals.len();
                    self.dfg.signals.push(SignalInfo {
                        name: name.clone(),
                        max_tap_depth: 0,
                        is_input: true,
                    });
                    Symbol::Input { port, signal }
                }
                Decl::Output(_) => {
                    let port = self.dfg.output_ports.len();
                    self.dfg.output_ports.push(name.clone());
                    self.output_assigned.push(false);
                    Symbol::Output { port }
                }
                Decl::Signal(_) => {
                    let signal = self.dfg.signals.len();
                    self.dfg.signals.push(SignalInfo {
                        name: name.clone(),
                        max_tap_depth: 0,
                        is_input: false,
                    });
                    self.signal_current.push(None);
                    Symbol::Signal { signal }
                }
                Decl::Coeff(_, v) => {
                    let index = self.dfg.coeffs.len();
                    self.dfg.coeffs.push((name.clone(), *v));
                    Symbol::Coeff { index }
                }
                Decl::Const(_, v) => {
                    let index = self.const_values.len();
                    self.const_values.push(*v);
                    Symbol::Const { index }
                }
            };
            self.symbols.insert(name, sym);
        }
        // signal_current is indexed by signal id; inputs occupy slots too.
        self.signal_current = vec![None; self.dfg.signals.len()];
        Ok(())
    }

    fn add_node(&mut self, op: DfgOp, inputs: Vec<NodeId>, name: &str) -> NodeId {
        debug_assert_eq!(op.arity(), inputs.len());
        self.dfg.nodes.push(DfgNode {
            op,
            inputs,
            name: name.to_owned(),
        });
        NodeId((self.dfg.nodes.len() - 1) as u32)
    }

    fn statement(&mut self, stmt: &Stmt) -> Result<(), SemaError> {
        let value = self.expr(&stmt.expr, stmt.line, &stmt.target)?;
        match stmt.kind {
            AssignKind::Local => {
                if self.symbols.contains_key(&stmt.target) {
                    return Err(self.err(
                        stmt.line,
                        format!(
                            "`{}` is declared; use `=` to update it, `:=` is for locals",
                            stmt.target
                        ),
                    ));
                }
                self.locals.insert(stmt.target.clone(), value);
            }
            AssignKind::Update => match self.symbols.get(&stmt.target) {
                Some(&Symbol::Signal { signal }) => {
                    if self.signal_current[signal].is_some() {
                        return Err(self.err(
                            stmt.line,
                            format!("signal `{}` updated twice in one frame", stmt.target),
                        ));
                    }
                    let write =
                        self.add_node(DfgOp::SignalWrite { signal }, vec![value], &stmt.target);
                    let _ = write;
                    self.signal_current[signal] = Some(value);
                }
                Some(&Symbol::Output { port }) => {
                    if self.output_assigned[port] {
                        return Err(self.err(
                            stmt.line,
                            format!("output `{}` written twice in one frame", stmt.target),
                        ));
                    }
                    self.add_node(DfgOp::Output { port }, vec![value], &stmt.target);
                    self.output_assigned[port] = true;
                }
                Some(_) => {
                    return Err(self.err(
                        stmt.line,
                        format!("`{}` is not a signal or output", stmt.target),
                    ))
                }
                None => {
                    return Err(self.err(
                        stmt.line,
                        format!(
                            "`{}` is not declared; `=` updates a declared signal or output",
                            stmt.target
                        ),
                    ))
                }
            },
        }
        Ok(())
    }

    fn expr(&mut self, expr: &Expr, line: u32, ctx: &str) -> Result<NodeId, SemaError> {
        match expr {
            Expr::Number(v) => Ok(self.add_node(DfgOp::ProgConst { value: *v }, vec![], ctx)),
            Expr::Ref(name) => {
                if let Some(&node) = self.locals.get(name) {
                    return Ok(node);
                }
                match self.symbols.get(name).copied() {
                    Some(Symbol::Input { port, .. }) => {
                        // One Input node per port per frame: sampling twice
                        // reads the same value.
                        if let Some(n) = self.input_nodes[port] {
                            Ok(n)
                        } else {
                            let n = self.add_node(DfgOp::Input { port }, vec![], name);
                            self.input_nodes[port] = Some(n);
                            Ok(n)
                        }
                    }
                    Some(Symbol::Signal { signal }) => {
                        self.signal_current[signal].ok_or_else(|| {
                            self.err(
                                line,
                                format!(
                                    "signal `{name}` referenced before its update this frame; \
                                     use `{name}@1` for the previous frame"
                                ),
                            )
                        })
                    }
                    Some(Symbol::Coeff { index }) => {
                        Ok(self.add_node(DfgOp::Coeff { index }, vec![], name))
                    }
                    Some(Symbol::Const { index }) => {
                        let value = self.const_values[index];
                        Ok(self.add_node(DfgOp::ProgConst { value }, vec![], name))
                    }
                    Some(Symbol::Output { .. }) => {
                        Err(self.err(line, format!("output `{name}` cannot be read")))
                    }
                    None => Err(self.err(line, format!("`{name}` is not declared"))),
                }
            }
            Expr::Tap(name, depth) => match self.symbols.get(name).copied() {
                Some(Symbol::Input { signal, .. }) | Some(Symbol::Signal { signal }) => {
                    let info = &mut self.dfg.signals[signal];
                    info.max_tap_depth = info.max_tap_depth.max(*depth);
                    Ok(self.add_node(
                        DfgOp::Tap {
                            signal,
                            depth: *depth,
                        },
                        vec![],
                        &format!("{name}@{depth}"),
                    ))
                }
                Some(_) => Err(self.err(
                    line,
                    format!("`{name}` has no history; only inputs and signals can be tapped"),
                )),
                None => Err(self.err(line, format!("`{name}` is not declared"))),
            },
            Expr::Call(op, args) => {
                let dfg_op = match op.as_str() {
                    "mlt" => DfgOp::Mlt,
                    "add" => DfgOp::Add,
                    "add_clip" => DfgOp::AddClip,
                    "sub" => DfgOp::Sub,
                    "pass" => DfgOp::Pass,
                    "pass_clip" => DfgOp::PassClip,
                    other => return Err(self.err(line, format!("unknown operation `{other}`"))),
                };
                if args.len() != dfg_op.arity() {
                    return Err(self.err(
                        line,
                        format!(
                            "`{op}` takes {} argument(s), got {}",
                            dfg_op.arity(),
                            args.len()
                        ),
                    ));
                }
                let inputs: Result<Vec<NodeId>, SemaError> =
                    args.iter().map(|a| self.expr(a, line, ctx)).collect();
                Ok(self.add_node(dfg_op, inputs?, ctx))
            }
        }
    }

    fn finish(self) -> Result<Dfg, SemaError> {
        for (port, assigned) in self.output_assigned.iter().enumerate() {
            if !assigned {
                return Err(SemaError {
                    line: 0,
                    message: format!("output `{}` is never written", self.dfg.output_ports[port]),
                });
            }
        }
        for (i, info) in self.dfg.signals.iter().enumerate() {
            if !info.is_input && info.max_tap_depth > 0 && self.signal_current[i].is_none() {
                return Err(SemaError {
                    line: 0,
                    message: format!("signal `{}` is tapped but never updated", info.name),
                });
            }
        }
        Ok(self.dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn build(src: &str) -> Result<Dfg, SemaError> {
        Dfg::build(&parse(src).unwrap())
    }

    #[test]
    fn builds_simple_program() {
        let dfg = build("input u; output y; y = pass(u);").unwrap();
        assert_eq!(dfg.input_ports(), &["u".to_string()]);
        assert_eq!(dfg.output_ports(), &["y".to_string()]);
        assert_eq!(dfg.nodes().len(), 3); // input, pass, output
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = build("input u; signal u; output y; y = u;").unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn local_assign_to_declared_rejected() {
        let err = build("input u; signal v; output y; v := u; y = u;").unwrap_err();
        assert!(err.message.contains("use `=`"));
    }

    #[test]
    fn update_of_undeclared_rejected() {
        let err = build("input u; output y; w = u; y = u;").unwrap_err();
        assert!(err.message.contains("not declared"));
    }

    #[test]
    fn update_of_input_rejected() {
        let err = build("input u; output y; u = u; y = u;").unwrap_err();
        assert!(err.message.contains("not a signal or output"));
    }

    #[test]
    fn double_signal_update_rejected() {
        let err = build("input u; signal v; output y; v = u; v = u; y = v@1;").unwrap_err();
        assert!(err.message.contains("updated twice"));
    }

    #[test]
    fn double_output_write_rejected() {
        let err = build("input u; output y; y = u; y = u;").unwrap_err();
        assert!(err.message.contains("written twice"));
    }

    #[test]
    fn signal_read_before_update_rejected() {
        let err = build("input u; signal v; output y; y = v; v = u;").unwrap_err();
        assert!(err.message.contains("before its update"));
        assert!(err.message.contains("v@1"));
    }

    #[test]
    fn signal_read_after_update_ok() {
        let dfg = build("input u; signal v; output y; v = pass(u); y = v;").unwrap();
        // `y = v` reuses the pass node, no extra compute node.
        assert_eq!(dfg.count_ops(|o| matches!(o, DfgOp::Pass)), 1);
    }

    #[test]
    fn tap_of_coeff_rejected() {
        let err = build("input u; coeff c = 0.5; output y; y = c@1;").unwrap_err();
        assert!(err.message.contains("no history"));
    }

    #[test]
    fn unknown_op_rejected() {
        let err = build("input u; output y; y = frobnicate(u);").unwrap_err();
        assert!(err.message.contains("unknown operation"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = build("input u; output y; y = mlt(u);").unwrap_err();
        assert!(err.message.contains("takes 2 argument(s)"));
        let err = build("input u; output y; y = pass(u, u);").unwrap_err();
        assert!(err.message.contains("takes 1 argument(s)"));
    }

    #[test]
    fn unwritten_output_rejected() {
        let err = build("input u; output y; output z; y = u;").unwrap_err();
        assert!(err.message.contains("`z` is never written"));
    }

    #[test]
    fn tapped_but_never_updated_signal_rejected() {
        let err = build("input u; signal v; output y; y = v@1;").unwrap_err();
        assert!(err.message.contains("never updated"));
    }

    #[test]
    fn reading_output_rejected() {
        let err = build("input u; output y; output z; y = u; z = y;").unwrap_err();
        assert!(err.message.contains("cannot be read"));
    }

    #[test]
    fn input_sampled_once_per_frame() {
        let dfg = build("input u; output y; y = add(u, u);").unwrap();
        assert_eq!(dfg.count_ops(|o| matches!(o, DfgOp::Input { .. })), 1);
    }

    #[test]
    fn const_becomes_prog_const() {
        let dfg = build("input u; const half = 0.5; output y; y = mlt(half, u);").unwrap();
        assert_eq!(
            dfg.count_ops(|o| matches!(o, DfgOp::ProgConst { value } if *value == 0.5)),
            1
        );
        assert_eq!(dfg.coeffs().len(), 0);
    }

    #[test]
    fn locals_rebind() {
        // `m` is rebound, like the paper's treble section.
        let dfg = build(
            "input u; coeff a = 0.1; coeff b = 0.2; output y;
             m := mlt(a, u); n := pass(m); m := mlt(b, u); y = add(n, m);",
        )
        .unwrap();
        assert_eq!(dfg.count_ops(|o| matches!(o, DfgOp::Mlt)), 2);
    }

    #[test]
    fn error_display() {
        let e = SemaError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 3: boom");
        let e = SemaError {
            line: 0,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "boom");
    }
}
