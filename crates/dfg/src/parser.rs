//! Recursive-descent parser for the application source language.

use std::fmt;

use crate::ast::{AssignKind, Decl, Expr, SourceProgram, Stmt};
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// Parse error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line (0 for end of input).
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "at end of input: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a complete source program.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic problems; the error
/// carries the offending line.
///
/// # Example
///
/// ```
/// use dspcc_dfg::parse;
///
/// let p = parse("input u; output y; y = pass(u);")?;
/// assert_eq!(p.decls.len(), 2);
/// assert_eq!(p.stmts.len(), 1);
/// # Ok::<(), dspcc_dfg::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<SourceProgram, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const DECL_KEYWORDS: [&str; 5] = ["input", "output", "signal", "coeff", "const"];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            line: self.line(),
            message,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(t),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected {kind}, found {}", t.kind),
            }),
            None => Err(ParseError {
                line: 0,
                message: format!("expected {kind}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
            }) => Ok((s, line)),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected identifier, found {}", t.kind),
            }),
            None => Err(ParseError {
                line: 0,
                message: "expected identifier".to_owned(),
            }),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(n),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected number, found {}", t.kind),
            }),
            None => Err(ParseError {
                line: 0,
                message: "expected number".to_owned(),
            }),
        }
    }

    fn program(&mut self) -> Result<SourceProgram, ParseError> {
        let mut decls = Vec::new();
        // Declarations: keyword-led, must precede statements.
        while let Some(Token {
            kind: TokenKind::Ident(word),
            ..
        }) = self.peek()
        {
            if !DECL_KEYWORDS.contains(&word.as_str()) {
                break;
            }
            decls.push(self.decl()?);
        }
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
        }
        Ok(SourceProgram { decls, stmts })
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        let (keyword, _) = self.expect_ident()?;
        let (name, _) = self.expect_ident()?;
        let decl = match keyword.as_str() {
            "input" => Decl::Input(name),
            "output" => Decl::Output(name),
            "signal" => Decl::Signal(name),
            "coeff" => {
                self.expect(&TokenKind::Equals)?;
                let v = self.expect_number()?;
                Decl::Coeff(name, v)
            }
            "const" => {
                self.expect(&TokenKind::Equals)?;
                let v = self.expect_number()?;
                Decl::Const(name, v)
            }
            other => return Err(self.error(format!("unknown declaration keyword `{other}`"))),
        };
        self.expect(&TokenKind::Semicolon)?;
        Ok(decl)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let (target, line) = self.expect_ident()?;
        let kind = match self.next() {
            Some(Token {
                kind: TokenKind::Assign,
                ..
            }) => AssignKind::Local,
            Some(Token {
                kind: TokenKind::Equals,
                ..
            }) => AssignKind::Update,
            Some(t) => {
                return Err(ParseError {
                    line: t.line,
                    message: format!("expected `:=` or `=`, found {}", t.kind),
                })
            }
            None => {
                return Err(ParseError {
                    line: 0,
                    message: "expected `:=` or `=`".to_owned(),
                })
            }
        };
        let expr = self.expr()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Stmt {
            target,
            kind,
            expr,
            line,
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(Expr::Number(n)),
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => match self.peek().map(|t| &t.kind) {
                Some(TokenKind::At) => {
                    self.next();
                    let depth = self.expect_number()?;
                    if depth.fract() != 0.0 || depth < 1.0 {
                        return Err(self.error(format!(
                            "delay depth must be a positive integer, got {depth}"
                        )));
                    }
                    Ok(Expr::Tap(name, depth as u32))
                }
                Some(TokenKind::LParen) => {
                    self.next();
                    let mut args = vec![self.expr()?];
                    while self.peek().map(|t| &t.kind) == Some(&TokenKind::Comma) {
                        self.next();
                        args.push(self.expr()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call(name, args))
                }
                _ => Ok(Expr::Ref(name)),
            },
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected expression, found {}", t.kind),
            }),
            None => Err(ParseError {
                line: 0,
                message: "expected expression".to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_treble_section() {
        let src = "
            input u; signal v; output y;
            coeff d1 = 0.1; coeff d2 = 0.2; coeff e1 = 0.3;
            x0 := u@2; /* U delayed over 2 frames */
            m  := mlt(d2, x0);
            a  := pass(m);
            x2 := v@1;
            m  := mlt(e1, x2);
            a  := add(m, a);
            x1 := u@1;
            m  := mlt(d1, x1);
            rd := add_clip(m, a);
            v  = rd;
            y  = rd;
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.decls.len(), 6);
        assert_eq!(p.stmts.len(), 11);
        assert_eq!(p.stmts[0].target, "x0");
        assert_eq!(p.stmts[0].kind, AssignKind::Local);
        assert_eq!(p.stmts[0].expr, Expr::Tap("u".into(), 2));
        assert_eq!(p.stmts[9].kind, AssignKind::Update);
    }

    #[test]
    fn parses_nested_calls() {
        let p = parse("input u; output y; y = add(mlt(u, u), pass(u));").unwrap();
        match &p.stmts[0].expr {
            Expr::Call(op, args) => {
                assert_eq!(op, "add");
                assert!(matches!(&args[0], Expr::Call(m, _) if m == "mlt"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_number_literal_expr() {
        let p = parse("output y; y = 0.5;").unwrap();
        assert_eq!(p.stmts[0].expr, Expr::Number(0.5));
    }

    #[test]
    fn rejects_zero_delay() {
        let err = parse("input u; output y; y = u@0;").unwrap_err();
        assert!(err.message.contains("positive integer"));
    }

    #[test]
    fn rejects_fractional_delay() {
        let err = parse("input u; output y; y = u@1.5;").unwrap_err();
        assert!(err.message.contains("positive integer"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("input u; output y; y = u").unwrap_err();
        assert!(err.message.contains("`;`"));
        assert_eq!(err.line, 0);
    }

    #[test]
    fn rejects_bad_assignment_operator() {
        let err = parse("input u; output y; y @ u;").unwrap_err();
        assert!(err.message.contains("expected `:=` or `=`"));
    }

    #[test]
    fn rejects_unclosed_call() {
        let err = parse("input u; output y; y = add(u, u;").unwrap_err();
        assert!(err.message.contains("`)`"));
    }

    #[test]
    fn decls_must_precede_statements() {
        // A declaration keyword after a statement is treated as a statement
        // target, which then fails on the missing assignment operator.
        let err = parse("input u; y := u; output y;").unwrap_err();
        assert!(err.message.contains("expected `:=` or `=`"));
    }

    #[test]
    fn coeff_requires_value() {
        let err = parse("coeff d1;").unwrap_err();
        assert!(err.message.contains("`=`"), "{err}");
    }

    #[test]
    fn stmt_line_numbers_recorded() {
        let p = parse("input u;\noutput y;\ny = u;").unwrap();
        assert_eq!(p.stmts[0].line, 3);
    }

    #[test]
    fn error_display_includes_line() {
        let err = parse("input u; output y;\ny = @;").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
