//! Abstract syntax of the application source language.
//!
//! A program is a list of declarations followed by the statements of the
//! time-loop body. The grammar (EBNF):
//!
//! ```text
//! program   ::= { decl } { stmt }
//! decl      ::= ("input" | "output" | "signal") ident ";"
//!             | ("coeff" | "const") ident "=" number ";"
//! stmt      ::= ident ":=" expr ";"        (local assignment)
//!             | ident "=" expr ";"         (signal or output update)
//! expr      ::= ident
//!             | ident "@" integer          (frame-delay tap)
//!             | number                     (program constant literal)
//!             | ident "(" expr {"," expr} ")"   (operation)
//! ```
//!
//! Comments are `/* … */`. The operation names are those of the paper:
//! `mlt`, `add`, `add_clip`, `sub`, `pass`, `pass_clip`.

/// A parsed program: declarations plus the time-loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceProgram {
    /// Declarations in source order.
    pub decls: Vec<Decl>,
    /// Time-loop statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `input u;` — a sample stream read from an input port each frame.
    Input(String),
    /// `output y;` — a sample stream written to an output port each frame.
    Output(String),
    /// `signal v;` — a persistent signal whose delayed values (`v@k`) are
    /// available; backed by a RAM delay line.
    Signal(String),
    /// `coeff d1 = 0.245;` — a constant placed in the coefficient ROM.
    Coeff(String, f64),
    /// `const half = 0.5;` — a constant delivered by the program-constant
    /// unit (an immediate in the instruction word).
    Const(String, f64),
}

impl Decl {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            Decl::Input(n)
            | Decl::Output(n)
            | Decl::Signal(n)
            | Decl::Coeff(n, _)
            | Decl::Const(n, _) => n,
        }
    }
}

/// A time-loop statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Assigned name.
    pub target: String,
    /// `:=` (local) or `=` (signal/output update).
    pub kind: AssignKind,
    /// Right-hand side.
    pub expr: Expr,
    /// 1-based source line, for diagnostics.
    pub line: u32,
}

/// The two assignment forms of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignKind {
    /// `x := e;` — (re)binds a local name for the rest of the frame.
    Local,
    /// `v = e;` — updates a declared signal or output once per frame.
    Update,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A reference to a local, signal (current frame), input (current
    /// sample), coefficient or constant.
    Ref(String),
    /// `name@k`: the value of a signal or input `k` frames ago (`k ≥ 1`).
    Tap(String, u32),
    /// A literal number, materialised as a program constant.
    Number(f64),
    /// An operation application, e.g. `mlt(d2, x0)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a call.
    pub fn call(op: &str, args: Vec<Expr>) -> Self {
        Expr::Call(op.to_owned(), args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_name_accessor() {
        assert_eq!(Decl::Input("u".into()).name(), "u");
        assert_eq!(Decl::Coeff("d1".into(), 0.5).name(), "d1");
        assert_eq!(Decl::Signal("v".into()).name(), "v");
        assert_eq!(Decl::Const("c".into(), 1.0).name(), "c");
        assert_eq!(Decl::Output("y".into()).name(), "y");
    }

    #[test]
    fn expr_call_constructor() {
        let e = Expr::call("mlt", vec![Expr::Ref("a".into()), Expr::Ref("b".into())]);
        match e {
            Expr::Call(op, args) => {
                assert_eq!(op, "mlt");
                assert_eq!(args.len(), 2);
            }
            _ => panic!("expected call"),
        }
    }
}
