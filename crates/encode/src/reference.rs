//! Retained string-keyed reference implementations.
//!
//! These are the seed implementations of register allocation and
//! instruction encoding, exactly as they ran before the interned-symbol
//! rewrite: live ranges and assignments keyed by `(register-file name,
//! virtual index)` string pairs in `BTreeMap`s, RTs rebuilt through the
//! name-based `add_usage` path, and the encoder matching fields by string
//! comparison. They exist so the differential property test
//! (`tests/prop_intern.rs`) can pin the id-based production paths
//! **bit-identical** to the string semantics on random programs — the
//! same role `dspcc_graph::naive` and `dspcc_sim::reference` play for
//! their substrates. Never call these from production code.

use std::collections::BTreeMap;

use dspcc_arch::Datapath;
use dspcc_ir::{Program, RegRef, RtId};
use dspcc_num::WordFormat;
use dspcc_rtgen::{Immediate, VIRTUAL_BASE};
use dspcc_sched::Schedule;

use crate::encoder::{decode_imm_raw, merge_field, EncodeError};
use crate::layout::{FieldLayout, ImmKind};
use crate::regalloc::{RegAllocError, RegAssignment};
use crate::word::Word;

/// The seed's string-keyed register allocator (see module docs).
///
/// # Errors
///
/// As [`crate::allocate_registers`].
pub fn allocate_registers_reference(
    program: &Program,
    schedule: &Schedule,
    dp: &Datapath,
    pinned: &[(String, u32)],
) -> Result<RegAssignment, RegAllocError> {
    let issue = schedule.issue_cycles(program.rt_count());
    // Live ranges per (rf, virtual index): (write_cycle, last_read_cycle).
    let mut ranges: BTreeMap<(String, u32), (u32, u32)> = BTreeMap::new();
    for (id, rt) in program.rts() {
        let t = issue[id.0 as usize].expect("schedule covers all RTs");
        let write_time = t + rt.latency();
        for dest in rt.dests() {
            if dest.index() < VIRTUAL_BASE {
                continue; // pre-colored
            }
            let key = (dest.rf().name().to_owned(), dest.index());
            let e = ranges.entry(key).or_insert((write_time, write_time));
            e.0 = e.0.min(write_time);
        }
    }
    for (id, rt) in program.rts() {
        let t = issue[id.0 as usize].expect("schedule covers all RTs");
        for opr in rt.operands() {
            if opr.index() < VIRTUAL_BASE {
                continue;
            }
            let key = (opr.rf().name().to_owned(), opr.index());
            match ranges.get_mut(&key) {
                Some(e) => e.1 = e.1.max(t),
                None => {
                    return Err(RegAllocError::NeverWritten {
                        rf: key.0,
                        virtual_index: key.1,
                    })
                }
            }
        }
    }
    // Group ranges per register file and linear-scan each.
    let mut per_rf: BTreeMap<String, Vec<(u32, u32, u32)>> = BTreeMap::new();
    for (&(ref rf, virt), &(w, r)) in &ranges {
        per_rf.entry(rf.clone()).or_default().push((w, r, virt));
    }
    let mut mapping: BTreeMap<(String, u32), u32> = BTreeMap::new();
    let mut peak_usage: BTreeMap<String, u32> = BTreeMap::new();
    for (rf, mut items) in per_rf {
        let size = dp.register_file(&rf).map(|s| s.size()).unwrap_or(u32::MAX);
        let pinned_here: Vec<u32> = pinned
            .iter()
            .filter(|(p, _)| *p == rf)
            .map(|&(_, i)| i)
            .collect();
        let pool: Vec<u32> = (0..size).filter(|i| !pinned_here.contains(i)).collect();
        items.sort_by_key(|&(w, r, v)| (w, r, v));
        // Active: (last_read, physical).
        let mut active: Vec<(u32, u32)> = Vec::new();
        let mut free: Vec<u32> = pool.clone();
        free.reverse(); // pop from the low end
        let mut peak = 0u32;
        for (w, r, virt) in items {
            active.retain(|&(last_read, phys)| {
                if last_read < w {
                    free.push(phys);
                    false
                } else {
                    true
                }
            });
            let phys = match free.pop() {
                Some(p) => p,
                None => {
                    return Err(RegAllocError::Pressure {
                        rf,
                        needed: active.len() as u32 + 1 + pinned_here.len() as u32,
                        available: size,
                    })
                }
            };
            active.push((r, phys));
            peak = peak.max(active.len() as u32 + pinned_here.len() as u32);
            mapping.insert((rf.clone(), virt), phys);
        }
        peak_usage.insert(rf, peak);
    }
    // Rewrite the program with physical indices by rebuilding every RT
    // through the name-based API (the seed behaviour).
    let mut rewritten = program.clone();
    for id in rewritten.rt_ids().collect::<Vec<RtId>>() {
        let rt = rewritten.rt_mut(id);
        let remap = |reg: &RegRef| -> RegRef {
            if reg.index() < VIRTUAL_BASE {
                *reg
            } else {
                let phys = mapping[&(reg.rf().name().to_owned(), reg.index())];
                RegRef::new(reg.rf().name(), phys)
            }
        };
        let mut fresh = dspcc_ir::Rt::new(rt.name());
        fresh.set_latency(rt.latency());
        for d in rt.dests() {
            fresh.add_dest(remap(d));
        }
        for o in rt.operands() {
            fresh.add_operand(remap(o));
        }
        for &d in rt.defs() {
            fresh.add_def(d);
        }
        for &u in rt.uses() {
            fresh.add_use(u);
        }
        for (res, usage) in rt.usages() {
            fresh.add_usage(res.name(), usage.clone());
        }
        *rt = fresh;
    }
    Ok(RegAssignment {
        program: rewritten,
        mapping,
        peak_usage,
    })
}

/// The seed's string-matching encoder (see module docs).
///
/// # Errors
///
/// As [`crate::encode`].
pub fn encode_reference(
    program: &Program,
    schedule: &Schedule,
    layout: &FieldLayout,
    immediates: &BTreeMap<RtId, Immediate>,
    format: WordFormat,
) -> Result<Vec<Word>, EncodeError> {
    let mut words = Vec::new();
    for (cycle, instr) in schedule.instructions() {
        let mut word = Word::new(layout.width());
        let mut claimed: BTreeMap<String, Word> = BTreeMap::new();
        for &rt_id in instr {
            let rt = program.rt(rt_id);
            let field = layout
                .fields()
                .iter()
                .find(|f| rt.usage_of(&f.opu).is_some())
                .ok_or_else(|| EncodeError::UnknownOpu {
                    rt: rt.name().to_owned(),
                })?;
            let mut scratch = Word::new(layout.width());
            encode_rt_reference(program, rt_id, field, immediates, format, &mut scratch)?;
            if let Some(prev) = claimed.get(&field.opu) {
                if *prev != scratch {
                    return Err(EncodeError::FieldClash {
                        opu: field.opu.clone(),
                        cycle,
                    });
                }
                continue;
            }
            merge_field(&mut word, &scratch, field);
            claimed.insert(field.opu.clone(), scratch);
        }
        words.push(word);
    }
    Ok(words)
}

fn encode_rt_reference(
    program: &Program,
    rt_id: RtId,
    field: &crate::layout::OpuField,
    immediates: &BTreeMap<RtId, Immediate>,
    format: WordFormat,
    word: &mut Word,
) -> Result<(), EncodeError> {
    let rt = program.rt(rt_id);
    let op = rt
        .usage_of(&field.opu)
        .expect("field matched this RT")
        .op()
        .to_owned();
    let opcode = field.opcode_of(&op).ok_or_else(|| EncodeError::UnknownOp {
        opu: field.opu.clone(),
        op: op.clone(),
    })?;
    if field.opcode_bits > 0 {
        word.set_bits(field.opcode_offset, field.opcode_bits, opcode);
    }
    let mut used = vec![false; rt.operands().len()];
    for spec in &field.operands {
        if let Some(i) = rt
            .operands()
            .iter()
            .enumerate()
            .position(|(i, o)| !used[i] && o.rf().name() == spec.rf)
        {
            used[i] = true;
            if spec.bits > 0 {
                word.set_bits(spec.offset, spec.bits, rt.operands()[i].index() as u64);
            }
        }
    }
    for dest in rt.dests() {
        let spec = field
            .dests
            .iter()
            .find(|d| d.rf == dest.rf().name())
            .ok_or_else(|| EncodeError::BadDest {
                opu: field.opu.clone(),
                rf: dest.rf().name().to_owned(),
            })?;
        word.set_bits(spec.enable_offset, 1, 1);
        if spec.addr_bits > 0 {
            word.set_bits(spec.addr_offset, spec.addr_bits, dest.index() as u64);
        }
    }
    if let Some((offset, bits, kind)) = field.imm {
        let imm = immediates
            .get(&rt_id)
            .ok_or_else(|| EncodeError::MissingImmediate {
                rt: rt.name().to_owned(),
            })?;
        let raw: i64 = match (imm, kind) {
            (Immediate::Fixed(v), ImmKind::ProgConst) => format.from_f64(*v),
            (Immediate::Raw(v), ImmKind::ProgConst) => *v,
            (Immediate::RomAddr(a), ImmKind::RomAddr) => *a as i64,
            (other, k) => {
                unreachable!("immediate {other:?} in {k:?} field of `{}`", field.opu)
            }
        };
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let encoded = (raw as u64) & mask;
        let back = decode_imm_raw(encoded, bits, kind, format);
        if back != raw {
            return Err(EncodeError::ImmediateOverflow {
                opu: field.opu.clone(),
                value: raw,
                bits,
            });
        }
        word.set_bits(offset, bits, encoded);
    }
    Ok(())
}
