//! Post-schedule register allocation.
//!
//! RT generation uses one virtual register per value (indices ≥
//! [`dspcc_rtgen::VIRTUAL_BASE`]); after scheduling, the live range of
//! each `(value, register file)` pair is known exactly — from the cycle
//! the value lands in the file until its last read from that file — and a
//! linear scan maps it to a physical register. A register may be re-read
//! and re-written in the same cycle (register files read before write,
//! figure 2's buffered paths), so ranges touching end-to-start may share.
//!
//! Running out of registers is a *feasibility* failure reported back to
//! the designer, exactly like a missed cycle budget (paper section 4:
//! "If this does not result in a feasible solution an iteration cycle is
//! required in which the source must be improved").

use std::collections::BTreeMap;
use std::fmt;

use dspcc_arch::Datapath;
use dspcc_ir::{Program, Resource};
use dspcc_rtgen::VIRTUAL_BASE;
use dspcc_sched::Schedule;

/// The physical register assignment: `(rf, virtual index) → physical
/// index`, plus the rewritten program.
#[derive(Debug, Clone)]
pub struct RegAssignment {
    /// Program with all register references physical.
    pub program: Program,
    /// Mapping used, for reports: `(rf, virtual) → physical`.
    pub mapping: BTreeMap<(String, u32), u32>,
    /// Peak register usage per file, for the feasibility report.
    pub peak_usage: BTreeMap<String, u32>,
}

/// Register-allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegAllocError {
    /// A register file cannot hold its simultaneously-live values.
    Pressure {
        /// The register file.
        rf: String,
        /// Registers needed at the worst cycle.
        needed: u32,
        /// Registers available (after pinned ones).
        available: u32,
    },
    /// A virtual register is read but never written in its file.
    NeverWritten {
        /// The register file.
        rf: String,
        /// The virtual index.
        virtual_index: u32,
    },
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegAllocError::Pressure {
                rf,
                needed,
                available,
            } => write!(
                f,
                "register file `{rf}` needs {needed} registers, has {available}; \
                 rewrite the source or enlarge the file"
            ),
            RegAllocError::NeverWritten { rf, virtual_index } => write!(
                f,
                "virtual register {virtual_index} of `{rf}` is read but never written"
            ),
        }
    }
}

impl std::error::Error for RegAllocError {}

/// Allocates physical registers for a scheduled program.
///
/// `pinned` registers (e.g. the frame pointer) are never handed out.
///
/// # Errors
///
/// Returns [`RegAllocError`] on capacity overflow or dangling reads.
pub fn allocate_registers(
    program: &Program,
    schedule: &Schedule,
    dp: &Datapath,
    pinned: &[(String, u32)],
) -> Result<RegAssignment, RegAllocError> {
    let issue = schedule.issue_cycles(program.rt_count());
    // Live ranges in dense per-register-file tables: register files are
    // identified by interned `Resource`, virtual indices are dense value
    // ids (`VIRTUAL_BASE + value`), so range recording and the final
    // rewrite are array indexing — no string-keyed map on the hot path.
    let mut rfs: Vec<Resource> = Vec::new();
    // ranges[rf slot][value] = (write_cycle, last_read_cycle).
    let mut ranges: Vec<Vec<Option<(u32, u32)>>> = Vec::new();
    let slot_of = |rfs: &[Resource], rf: Resource| rfs.iter().position(|&x| x == rf);
    for (id, rt) in program.rts() {
        let t = issue[id.0 as usize].expect("schedule covers all RTs");
        let write_time = t + rt.latency();
        for dest in rt.dests() {
            if dest.index() < VIRTUAL_BASE {
                continue; // pre-colored
            }
            let slot = match slot_of(&rfs, *dest.rf()) {
                Some(s) => s,
                None => {
                    rfs.push(*dest.rf());
                    ranges.push(Vec::new());
                    rfs.len() - 1
                }
            };
            let v = (dest.index() - VIRTUAL_BASE) as usize;
            if ranges[slot].len() <= v {
                ranges[slot].resize(v + 1, None);
            }
            let e = ranges[slot][v].get_or_insert((write_time, write_time));
            e.0 = e.0.min(write_time);
        }
    }
    for (id, rt) in program.rts() {
        let t = issue[id.0 as usize].expect("schedule covers all RTs");
        for opr in rt.operands() {
            if opr.index() < VIRTUAL_BASE {
                continue;
            }
            let v = (opr.index() - VIRTUAL_BASE) as usize;
            let range = slot_of(&rfs, *opr.rf())
                .and_then(|slot| ranges[slot].get_mut(v))
                .and_then(|r| r.as_mut());
            match range {
                Some(e) => e.1 = e.1.max(t),
                None => {
                    return Err(RegAllocError::NeverWritten {
                        rf: opr.rf().name().to_owned(),
                        virtual_index: opr.index(),
                    })
                }
            }
        }
    }
    // Linear-scan each register file. Files are processed in name order so
    // the reported maps read deterministically; assignments within a file
    // depend only on that file's ranges, never on interning order.
    let mut order: Vec<usize> = (0..rfs.len()).collect();
    order.sort_by_key(|&s| rfs[s].name());
    // phys[rf slot][value] = allocated physical index.
    let mut phys_of: Vec<Vec<Option<u32>>> = ranges.iter().map(|r| vec![None; r.len()]).collect();
    let mut mapping: BTreeMap<(String, u32), u32> = BTreeMap::new();
    let mut peak_usage: BTreeMap<String, u32> = BTreeMap::new();
    for slot in order {
        let rf = rfs[slot].name();
        let size = dp.register_file(rf).map(|s| s.size()).unwrap_or(u32::MAX);
        let pinned_here: Vec<u32> = pinned
            .iter()
            .filter(|(p, _)| p == rf)
            .map(|&(_, i)| i)
            .collect();
        let mut items: Vec<(u32, u32, u32)> = ranges[slot]
            .iter()
            .enumerate()
            .filter_map(|(v, r)| r.map(|(w, rd)| (w, rd, VIRTUAL_BASE + v as u32)))
            .collect();
        items.sort_unstable_by_key(|&(w, r, v)| (w, r, v));
        // Active: (last_read, physical).
        let mut active: Vec<(u32, u32)> = Vec::new();
        let mut free: Vec<u32> = (0..size)
            .rev() // pop from the low end
            .filter(|i| !pinned_here.contains(i))
            .collect();
        let mut peak = 0u32;
        for (w, r, virt) in items {
            // Expire ranges read strictly before this value becomes
            // visible: a write landing at cycle `w` replaces the register
            // content *for* cycle `w` (the commit happens at the end of
            // `w − 1`), so a last read at `w` itself would see the new
            // value.
            active.retain(|&(last_read, phys)| {
                if last_read < w {
                    free.push(phys);
                    false
                } else {
                    true
                }
            });
            let phys = match free.pop() {
                Some(p) => p,
                None => {
                    return Err(RegAllocError::Pressure {
                        rf: rf.to_owned(),
                        needed: active.len() as u32 + 1 + pinned_here.len() as u32,
                        available: size,
                    })
                }
            };
            active.push((r, phys));
            peak = peak.max(active.len() as u32 + pinned_here.len() as u32);
            phys_of[slot][(virt - VIRTUAL_BASE) as usize] = Some(phys);
            mapping.insert((rf.to_owned(), virt), phys);
        }
        peak_usage.insert(rf.to_owned(), peak);
    }
    // Rewrite the register references in place — usages, defs, uses, and
    // latencies are untouched, so nothing is re-interned or re-allocated.
    let mut rewritten = program.clone();
    for id in rewritten.rt_ids().collect::<Vec<_>>() {
        rewritten.rt_mut(id).remap_registers(|reg| {
            if reg.index() < VIRTUAL_BASE {
                *reg
            } else {
                let slot = slot_of(&rfs, *reg.rf()).expect("range recorded for virtual register");
                let phys = phys_of[slot][(reg.index() - VIRTUAL_BASE) as usize]
                    .expect("virtual register allocated");
                reg.with_index(phys)
            }
        });
    }
    Ok(RegAssignment {
        program: rewritten,
        mapping,
        peak_usage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::{DatapathBuilder, OpuKind};
    use dspcc_ir::{RegRef, Rt, Usage, ValueId};

    fn small_dp(rf_size: u32) -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_a", rf_size)
            .register_file("rf_b", rf_size)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_a", "rf_b"])
            .output("alu", "bus_alu")
            .write_port("rf_a", &["bus_alu"])
            .write_port("rf_b", &["bus_alu"])
            .build()
            .unwrap()
    }

    /// producer(v0) → consumer chain of `n` values through rf_a.
    fn chain(n: u32) -> (Program, Schedule) {
        let mut p = Program::new();
        let mut s = Schedule::new();
        let mut prev: Option<ValueId> = None;
        for i in 0..n {
            let v = p.add_value(format!("v{i}"));
            let mut rt = Rt::new(format!("op{i}"));
            rt.add_dest(RegRef::new("rf_a", VIRTUAL_BASE + v.0));
            rt.add_def(v);
            if let Some(pv) = prev {
                rt.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + pv.0));
                rt.add_use(pv);
            }
            rt.add_usage("alu", Usage::apply("pass", [format!("v{i}")]));
            let id = p.add_rt(rt);
            s.place(id, i);
            prev = Some(v);
        }
        (p, s)
    }

    #[test]
    fn chain_reuses_registers() {
        let (p, s) = chain(6);
        let dp = small_dp(2);
        // Each value dies right as the next is written → 2 registers do.
        let a = allocate_registers(&p, &s, &dp, &[]).unwrap();
        assert!(a.peak_usage["rf_a"] <= 2, "{:?}", a.peak_usage);
        // All references physical now.
        for (_, rt) in a.program.rts() {
            for r in rt.dests().iter().chain(rt.operands()) {
                assert!(r.index() < VIRTUAL_BASE);
                assert!(r.index() < 2);
            }
        }
    }

    #[test]
    fn parallel_lives_need_distinct_registers() {
        // Two values written in cycles 0,1 both read at cycle 5.
        let mut p = Program::new();
        let mut s = Schedule::new();
        let v0 = p.add_value("v0");
        let v1 = p.add_value("v1");
        for (i, v) in [v0, v1].into_iter().enumerate() {
            let mut rt = Rt::new(format!("w{i}"));
            rt.add_dest(RegRef::new("rf_a", VIRTUAL_BASE + v.0));
            rt.add_def(v);
            rt.add_usage("alu", Usage::apply("pass", [format!("v{i}")]));
            let id = p.add_rt(rt);
            s.place(id, i as u32);
        }
        let mut reader = Rt::new("r");
        reader.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v0.0));
        reader.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v1.0));
        reader.add_use(v0);
        reader.add_use(v1);
        // v1 also lands in rf_a to force two live registers there.
        let mut w2 = Rt::new("w2");
        w2.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v1.0));
        w2.add_use(v1);
        // v1 must be written into rf_a too: emulate multi-dest.
        p.rt_mut(dspcc_ir::RtId(1))
            .add_dest(RegRef::new("rf_a", VIRTUAL_BASE + v1.0));
        let rid = p.add_rt(reader);
        let wid = p.add_rt(w2);
        s.place(rid, 5);
        s.place(wid, 5);
        let dp = small_dp(2);
        let a = allocate_registers(&p, &s, &dp, &[]).unwrap();
        let r0 = a.mapping[&("rf_a".to_owned(), VIRTUAL_BASE + v0.0)];
        let r1 = a.mapping[&("rf_a".to_owned(), VIRTUAL_BASE + v1.0)];
        assert_ne!(r0, r1);
        assert_eq!(a.peak_usage["rf_a"], 2);
    }

    #[test]
    fn pressure_error_when_file_too_small() {
        // 3 values all live to the end, file of 2.
        let mut p = Program::new();
        let mut s = Schedule::new();
        let mut reader = Rt::new("r");
        for i in 0..3 {
            let v = p.add_value(format!("v{i}"));
            let mut rt = Rt::new(format!("w{i}"));
            rt.add_dest(RegRef::new("rf_a", VIRTUAL_BASE + v.0));
            rt.add_def(v);
            rt.add_usage("alu", Usage::apply("pass", [format!("v{i}")]));
            let id = p.add_rt(rt);
            s.place(id, i);
            reader.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v.0));
            reader.add_use(v);
        }
        let rid = p.add_rt(reader);
        s.place(rid, 9);
        let dp = small_dp(2);
        let err = allocate_registers(&p, &s, &dp, &[]).unwrap_err();
        match err {
            RegAllocError::Pressure {
                rf,
                needed,
                available,
            } => {
                assert_eq!(rf, "rf_a");
                assert_eq!(available, 2);
                assert!(needed >= 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pinned_registers_not_allocated() {
        let (p, s) = chain(2);
        let dp = small_dp(2);
        let a = allocate_registers(&p, &s, &dp, &[("rf_a".to_owned(), 0)]).unwrap();
        for &phys in a.mapping.values() {
            assert_ne!(phys, 0, "pinned register handed out");
        }
    }

    #[test]
    fn never_written_detected() {
        let mut p = Program::new();
        let v = p.add_value("ghost");
        let mut rt = Rt::new("r");
        rt.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v.0));
        rt.add_usage("alu", Usage::token("pass"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let dp = small_dp(2);
        let err = allocate_registers(&p, &s, &dp, &[]).unwrap_err();
        assert!(matches!(err, RegAllocError::NeverWritten { .. }));
        assert!(err.to_string().contains("never written"));
    }

    #[test]
    fn same_cycle_read_write_shares_register() {
        // v0 last read at cycle 2; v1 written (lands) at cycle 2 → same reg OK.
        let mut p = Program::new();
        let mut s = Schedule::new();
        let v0 = p.add_value("v0");
        let v1 = p.add_value("v1");
        let mut w0 = Rt::new("w0");
        w0.add_dest(RegRef::new("rf_a", VIRTUAL_BASE + v0.0));
        w0.add_def(v0);
        w0.add_usage("alu", Usage::apply("pass", ["v0"]));
        let id0 = p.add_rt(w0);
        s.place(id0, 0);
        let mut rw = Rt::new("rw"); // reads v0, defines v1 (lands at 2)
        rw.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v0.0));
        rw.add_use(v0);
        rw.add_dest(RegRef::new("rf_a", VIRTUAL_BASE + v1.0));
        rw.add_def(v1);
        rw.add_usage("alu", Usage::apply("pass", ["v1"]));
        let id1 = p.add_rt(rw);
        s.place(id1, 2);
        let mut r1 = Rt::new("r1");
        r1.add_operand(RegRef::new("rf_a", VIRTUAL_BASE + v1.0));
        r1.add_use(v1);
        r1.add_usage("alu", Usage::apply("pass", ["x"]));
        let id2 = p.add_rt(r1);
        s.place(id2, 4);
        let dp = small_dp(1); // only one register!
        let a = allocate_registers(&p, &s, &dp, &[]).unwrap();
        assert_eq!(a.peak_usage["rf_a"], 1);
    }
}
