//! A fixed-width bit vector: one VLIW instruction word.

use std::fmt;

/// An instruction word of arbitrary bit width.
///
/// Bit 0 is the least significant bit of the first limb; fields are
/// addressed by `(offset, width)` with `width ≤ 64`.
///
/// # Example
///
/// ```
/// use dspcc_encode::Word;
///
/// let mut w = Word::new(100);
/// w.set_bits(70, 16, 0xBEEF);
/// assert_eq!(w.bits(70, 16), 0xBEEF);
/// assert_eq!(w.bits(0, 16), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    width: u32,
    limbs: Vec<u64>,
}

impl Word {
    /// An all-zero word of `width` bits.
    pub fn new(width: u32) -> Self {
        Word {
            width,
            limbs: vec![0; width.div_ceil(64) as usize],
        }
    }

    /// The word's bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Writes `value` into the field at `offset` of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the field exceeds the word, `width > 64`, or `value`
    /// does not fit the field.
    pub fn set_bits(&mut self, offset: u32, width: u32, value: u64) {
        assert!(width <= 64, "field width > 64");
        assert!(
            offset + width <= self.width,
            "field {offset}+{width} exceeds word width {}",
            self.width
        );
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let limb = (offset / 64) as usize;
        let shift = offset % 64;
        // Clear then set, possibly across a limb boundary.
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        self.limbs[limb] &= !(mask << shift);
        self.limbs[limb] |= (value & mask) << shift;
        let spill = (shift + width).saturating_sub(64);
        if spill > 0 {
            let hi_mask = (1u64 << spill) - 1;
            self.limbs[limb + 1] &= !hi_mask;
            self.limbs[limb + 1] |= (value >> (width - spill)) & hi_mask;
        }
    }

    /// Reads the field at `offset` of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the field exceeds the word or `width > 64`.
    pub fn bits(&self, offset: u32, width: u32) -> u64 {
        assert!(width <= 64, "field width > 64");
        assert!(
            offset + width <= self.width,
            "field {offset}+{width} exceeds word width {}",
            self.width
        );
        if width == 0 {
            return 0;
        }
        let limb = (offset / 64) as usize;
        let shift = offset % 64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut v = (self.limbs[limb] >> shift) & mask;
        let spill = (shift + width).saturating_sub(64);
        if spill > 0 {
            let hi = self.limbs[limb + 1] & ((1u64 << spill) - 1);
            v |= hi << (width - spill);
        }
        v
    }

    /// Whether every bit is zero (a NOP word in the derived formats, whose
    /// opcode encodings reserve 0 for "no operation").
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }
}

impl fmt::Display for Word {
    /// Hex dump, most significant limb first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i + 1 == self.limbs.len() {
                let rem = self.width % 64;
                let digits = if rem == 0 {
                    16
                } else {
                    (rem as usize).div_ceil(4)
                };
                write!(f, "{limb:0digits$x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_word_is_zero() {
        let w = Word::new(130);
        assert!(w.is_zero());
        assert_eq!(w.width(), 130);
        assert_eq!(w.bits(0, 64), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut w = Word::new(32);
        w.set_bits(3, 7, 0x55);
        assert_eq!(w.bits(3, 7), 0x55);
        assert_eq!(w.bits(0, 3), 0);
        assert_eq!(w.bits(10, 8), 0);
    }

    #[test]
    fn fields_cross_limb_boundaries() {
        let mut w = Word::new(130);
        w.set_bits(60, 10, 0x3FF);
        assert_eq!(w.bits(60, 10), 0x3FF);
        assert_eq!(w.bits(50, 10), 0);
        assert_eq!(w.bits(70, 10), 0);
        w.set_bits(120, 10, 0x2AA);
        assert_eq!(w.bits(120, 10), 0x2AA);
    }

    #[test]
    fn overwrite_clears_old_bits() {
        let mut w = Word::new(16);
        w.set_bits(4, 8, 0xFF);
        w.set_bits(4, 8, 0x0F);
        assert_eq!(w.bits(4, 8), 0x0F);
    }

    #[test]
    fn adjacent_fields_do_not_interfere() {
        let mut w = Word::new(24);
        w.set_bits(0, 8, 0xAB);
        w.set_bits(8, 8, 0xCD);
        w.set_bits(16, 8, 0xEF);
        assert_eq!(w.bits(0, 8), 0xAB);
        assert_eq!(w.bits(8, 8), 0xCD);
        assert_eq!(w.bits(16, 8), 0xEF);
    }

    #[test]
    fn zero_width_field_is_noop() {
        let mut w = Word::new(8);
        w.set_bits(4, 0, 0);
        assert_eq!(w.bits(4, 0), 0);
        assert!(w.is_zero());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = Word::new(16);
        w.set_bits(0, 4, 16);
    }

    #[test]
    #[should_panic(expected = "exceeds word width")]
    fn out_of_range_field_panics() {
        let w = Word::new(16);
        w.bits(10, 8);
    }

    #[test]
    fn display_hex() {
        let mut w = Word::new(20);
        w.set_bits(0, 20, 0xABCDE);
        assert_eq!(w.to_string(), "abcde");
    }

    #[test]
    fn full_64_bit_field() {
        let mut w = Word::new(128);
        w.set_bits(32, 64, u64::MAX);
        assert_eq!(w.bits(32, 64), u64::MAX);
        assert_eq!(w.bits(0, 32), 0);
        assert_eq!(w.bits(96, 32), 0);
    }
}
