//! Derivation of the VLIW word format from the datapath.
//!
//! Every OPU owns one field of the instruction word:
//!
//! ```text
//! | opcode | operand reg addr per input port | per writable RF: en + reg addr | imm |
//! ```
//!
//! Opcode 0 is reserved for "no operation on this unit", so the all-zero
//! word is the NOP instruction (construction rule 1 for free). The
//! destination sub-fields cover every register file reachable from the
//! unit's output bus; the write-enable bit doubles as the multiplexer
//! select at the register file (only one unit may assert a write per file
//! per cycle — guaranteed by the write-port resource conflicts).

use std::fmt;

use dspcc_arch::{Datapath, OpuKind};
use dspcc_num::WordFormat;

/// What an OPU's immediate field holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmKind {
    /// A program constant: a full datapath word inside the instruction.
    ProgConst,
    /// An address into the coefficient ROM.
    RomAddr,
}

/// An operand sub-field: the register address read from one input port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandSpec {
    /// Register file feeding the port.
    pub rf: String,
    /// Bit offset within the word.
    pub offset: u32,
    /// Field width.
    pub bits: u32,
}

/// A destination sub-field: write-enable plus register address for one
/// reachable register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestSpec {
    /// The destination register file.
    pub rf: String,
    /// Bit offset of the write-enable bit.
    pub enable_offset: u32,
    /// Bit offset of the register address.
    pub addr_offset: u32,
    /// Register-address width.
    pub addr_bits: u32,
}

/// One OPU's field in the instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpuField {
    /// The OPU.
    pub opu: String,
    /// Its kind (fixes simulation semantics).
    pub kind: OpuKind,
    /// Operation names; opcode `i+1` encodes `ops[i]`, opcode 0 is NOP.
    pub ops: Vec<String>,
    /// Offset of the opcode sub-field.
    pub opcode_offset: u32,
    /// Width of the opcode sub-field.
    pub opcode_bits: u32,
    /// Operand sub-fields in input-port order.
    pub operands: Vec<OperandSpec>,
    /// Destination sub-fields for every register file on the output bus.
    pub dests: Vec<DestSpec>,
    /// Immediate sub-field `(offset, bits, kind)` for constant units.
    pub imm: Option<(u32, u32, ImmKind)>,
}

impl OpuField {
    /// Index of `op` in the opcode encoding (1-based; 0 is NOP).
    pub fn opcode_of(&self, op: &str) -> Option<u64> {
        self.ops.iter().position(|o| o == op).map(|i| i as u64 + 1)
    }
}

/// The complete word format: one field per OPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    fields: Vec<OpuField>,
    width: u32,
}

impl FieldLayout {
    /// Derives the word format for `dp` with datapath word width taken
    /// from `format` (for program-constant immediates).
    pub fn derive(dp: &Datapath, format: WordFormat) -> FieldLayout {
        let mut fields = Vec::new();
        let mut cursor = 0u32;
        for opu in dp.opus() {
            let ops: Vec<String> = opu.ops().map(|(o, _)| o.to_owned()).collect();
            let opcode_bits = width_for(ops.len() as u32 + 1);
            let opcode_offset = cursor;
            cursor += opcode_bits;
            let mut operands = Vec::new();
            for rf in opu.inputs() {
                let size = dp.register_file(rf).expect("validated rf").size();
                let bits = width_for(size);
                operands.push(OperandSpec {
                    rf: rf.clone(),
                    offset: cursor,
                    bits,
                });
                cursor += bits;
            }
            let mut dests = Vec::new();
            if let Some(bus) = opu.output_bus() {
                for rf in dp.rfs_written_from(bus) {
                    let addr_bits = width_for(rf.size());
                    dests.push(DestSpec {
                        rf: rf.name().to_owned(),
                        enable_offset: cursor,
                        addr_offset: cursor + 1,
                        addr_bits,
                    });
                    cursor += 1 + addr_bits;
                }
            }
            let imm = match opu.kind() {
                OpuKind::ProgConst => {
                    let bits = format.width();
                    let spec = (cursor, bits, ImmKind::ProgConst);
                    cursor += bits;
                    Some(spec)
                }
                OpuKind::Rom => {
                    let bits = width_for(opu.memory_size());
                    let spec = (cursor, bits, ImmKind::RomAddr);
                    cursor += bits;
                    Some(spec)
                }
                _ => None,
            };
            fields.push(OpuField {
                opu: opu.name().to_owned(),
                kind: opu.kind(),
                ops,
                opcode_offset,
                opcode_bits,
                operands,
                dests,
                imm,
            });
        }
        FieldLayout {
            fields,
            width: cursor,
        }
    }

    /// Total word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// All fields in OPU declaration order.
    pub fn fields(&self) -> &[OpuField] {
        &self.fields
    }

    /// The field of a given OPU.
    pub fn field(&self, opu: &str) -> Option<&OpuField> {
        self.fields.iter().find(|f| f.opu == opu)
    }
}

impl fmt::Display for FieldLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "word format: {} bits", self.width)?;
        for field in &self.fields {
            let end = field
                .imm
                .map(|(o, b, _)| o + b)
                .or_else(|| field.dests.last().map(|d| d.addr_offset + d.addr_bits))
                .or_else(|| field.operands.last().map(|o| o.offset + o.bits))
                .unwrap_or(field.opcode_offset + field.opcode_bits);
            writeln!(
                f,
                "  {:<10} bits {:>3}..{:<3} opcode({}) operands({}) dests({}){}",
                field.opu,
                field.opcode_offset,
                end,
                field.ops.len(),
                field.operands.len(),
                field.dests.len(),
                if field.imm.is_some() { " imm" } else { "" }
            )?;
        }
        Ok(())
    }
}

fn width_for(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::DatapathBuilder;

    fn dp() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_a", 8)
            .register_file("rf_b", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("sub", 1), ("pass", 1)])
            .inputs("alu", &["rf_a", "rf_b"])
            .output("alu", "bus_alu")
            .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
            .output("prgc", "bus_prgc")
            .opu(OpuKind::Rom, "rom", &[("const", 1)])
            .memory("rom", 32)
            .output("rom", "bus_rom")
            .write_port("rf_a", &["bus_alu", "bus_prgc", "bus_rom"])
            .write_port("rf_b", &["bus_alu"])
            .build()
            .unwrap()
    }

    #[test]
    fn field_sizes() {
        let layout = FieldLayout::derive(&dp(), WordFormat::q15());
        let alu = layout.field("alu").unwrap();
        assert_eq!(alu.opcode_bits, 2); // 3 ops + nop
        assert_eq!(alu.operands[0].bits, 3); // 8 registers
        assert_eq!(alu.operands[1].bits, 2); // 4 registers
        assert_eq!(alu.dests.len(), 2); // rf_a and rf_b on bus_alu
        let prgc = layout.field("prgc").unwrap();
        assert_eq!(prgc.opcode_bits, 1);
        let (_, bits, kind) = prgc.imm.unwrap();
        assert_eq!(bits, 16);
        assert_eq!(kind, ImmKind::ProgConst);
        let rom = layout.field("rom").unwrap();
        let (_, bits, kind) = rom.imm.unwrap();
        assert_eq!(bits, 5); // 32 words
        assert_eq!(kind, ImmKind::RomAddr);
    }

    #[test]
    fn fields_do_not_overlap() {
        let layout = FieldLayout::derive(&dp(), WordFormat::q15());
        let mut intervals: Vec<(u32, u32)> = Vec::new();
        for f in layout.fields() {
            intervals.push((f.opcode_offset, f.opcode_bits));
            for o in &f.operands {
                intervals.push((o.offset, o.bits));
            }
            for d in &f.dests {
                intervals.push((d.enable_offset, 1));
                intervals.push((d.addr_offset, d.addr_bits));
            }
            if let Some((o, b, _)) = f.imm {
                intervals.push((o, b));
            }
        }
        intervals.retain(|&(_, b)| b > 0);
        intervals.sort();
        for w in intervals.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "fields overlap: {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        let (last_off, last_bits) = *intervals.last().unwrap();
        assert!(last_off + last_bits <= layout.width());
    }

    #[test]
    fn opcode_of_is_one_based() {
        let layout = FieldLayout::derive(&dp(), WordFormat::q15());
        let alu = layout.field("alu").unwrap();
        // Ops are stored sorted: add, pass, sub.
        assert_eq!(alu.opcode_of("add"), Some(1));
        assert_eq!(alu.opcode_of("pass"), Some(2));
        assert_eq!(alu.opcode_of("sub"), Some(3));
        assert_eq!(alu.opcode_of("mult"), None);
    }

    #[test]
    fn display_mentions_width_and_fields() {
        let layout = FieldLayout::derive(&dp(), WordFormat::q15());
        let s = layout.to_string();
        assert!(s.contains("word format"));
        assert!(s.contains("alu"));
        assert!(s.contains("imm"));
    }

    #[test]
    fn width_for_edge_cases() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 0);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(8), 3);
        assert_eq!(width_for(9), 4);
    }
}
