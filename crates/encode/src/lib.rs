//! Instruction encoding for `dspcc` (the tail of compiler step 3).
//!
//! After scheduling, the paper's flow performs "instruction encoding" and
//! controller generation. This crate turns a schedule into executable
//! microcode:
//!
//! * [`regalloc`] — post-schedule register allocation: virtual registers
//!   (one per value) are mapped to physical registers of each distributed
//!   register file by linear scan over issue-cycle live ranges; exceeding
//!   a file's capacity is a feasibility failure fed back to the designer.
//! * [`layout`] — derivation of the VLIW *word format* from the datapath:
//!   one field per OPU (opcode, operand register addresses, destination
//!   write-enables + addresses, immediates). This is the microcode format
//!   a core's instruction ROM actually stores.
//! * [`encoder`] — encoding each schedule cycle into a [`word::Word`] and
//!   the inverse decoding used by the cycle-accurate simulator and for
//!   round-trip tests.
//!
//! The result, [`Microcode`], is everything the core needs to run: the
//! instruction words, the coefficient-ROM image, the ACU's modulus
//! configuration, and the IO port maps.

pub mod encoder;
pub mod layout;
pub mod reference;
pub mod regalloc;
pub mod word;

use dspcc_num::WordFormat;

pub use encoder::{decode, encode, DecodedInstruction, EncodeError, OpuAction};
pub use layout::{FieldLayout, ImmKind, OpuField};
pub use regalloc::{allocate_registers, RegAllocError, RegAssignment};
pub use word::Word;

/// Executable microcode for one core + application: the output of the
/// whole compiler.
#[derive(Debug, Clone)]
pub struct Microcode {
    /// One instruction word per schedule cycle.
    pub words: Vec<Word>,
    /// The word format the words are encoded in.
    pub layout: FieldLayout,
    /// Coefficient ROM image (fixed-point words).
    pub rom_image: Vec<i64>,
    /// ACU circular-region modulus (power of two).
    pub region_size: u32,
    /// Output writes in issue order per output OPU: `(opu, DFG port)`.
    pub output_order: Vec<(String, usize)>,
    /// Input reads in issue order per input OPU: `(opu, DFG port)`.
    pub input_order: Vec<(String, usize)>,
    /// The datapath word format (bit width) of the core.
    pub word_format: WordFormat,
}

impl Microcode {
    /// Program length in instructions (= time-loop cycle count).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total instruction-ROM bits: length × word width — the cost metric
    /// that motivates vertical instruction sets (paper section 6).
    pub fn rom_bits(&self) -> u64 {
        self.words.len() as u64 * self.layout.width() as u64
    }
}
