//! Encoding schedules into instruction words and decoding them back.

use std::collections::BTreeMap;
use std::fmt;

use dspcc_arch::OpuKind;
use dspcc_ir::{Program, RtId};
use dspcc_num::WordFormat;
use dspcc_rtgen::Immediate;
use dspcc_sched::Schedule;

use crate::layout::{FieldLayout, ImmKind, OpuField};
use crate::word::Word;

/// Encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An RT uses no OPU known to the word format.
    UnknownOpu {
        /// The RT's diagnostic name.
        rt: String,
    },
    /// An RT's operation is not in its OPU's opcode table.
    UnknownOp {
        /// The OPU.
        opu: String,
        /// The operation.
        op: String,
    },
    /// Two non-identical RTs target the same OPU field in one cycle.
    FieldClash {
        /// The OPU.
        opu: String,
        /// The cycle.
        cycle: u32,
    },
    /// A destination register file is not reachable from the OPU's bus.
    BadDest {
        /// The OPU.
        opu: String,
        /// The register file.
        rf: String,
    },
    /// A constant RT has no recorded immediate.
    MissingImmediate {
        /// The RT's diagnostic name.
        rt: String,
    },
    /// An immediate does not fit its field.
    ImmediateOverflow {
        /// The OPU.
        opu: String,
        /// The value.
        value: i64,
        /// Field width.
        bits: u32,
    },
    /// [`decode`] met an opcode past the field's operation table — a
    /// word no encoder produced (corrupted or hand-forged microcode).
    BadOpcode {
        /// The OPU whose field held the opcode.
        opu: String,
        /// The out-of-table opcode value.
        opcode: u64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnknownOpu { rt } => write!(f, "RT `{rt}` uses no known OPU"),
            EncodeError::UnknownOp { opu, op } => {
                write!(f, "`{op}` is not an opcode of `{opu}`")
            }
            EncodeError::FieldClash { opu, cycle } => {
                write!(f, "two RTs fight over `{opu}`'s field in cycle {cycle}")
            }
            EncodeError::BadDest { opu, rf } => {
                write!(f, "`{opu}` cannot write register file `{rf}`")
            }
            EncodeError::MissingImmediate { rt } => {
                write!(f, "constant RT `{rt}` has no immediate")
            }
            EncodeError::ImmediateOverflow { opu, value, bits } => {
                write!(f, "immediate {value} of `{opu}` overflows {bits} bits")
            }
            EncodeError::BadOpcode { opu, opcode } => {
                write!(f, "opcode {opcode} of `{opu}` is past its operation table")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes a scheduled, register-allocated program into instruction words
/// (one per cycle, including NOP cycles).
///
/// # Errors
///
/// Returns [`EncodeError`] on any mismatch between RTs and the word
/// format — all of which indicate earlier pipeline bugs, not user errors.
pub fn encode(
    program: &Program,
    schedule: &Schedule,
    layout: &FieldLayout,
    immediates: &BTreeMap<RtId, Immediate>,
    format: WordFormat,
) -> Result<Vec<Word>, EncodeError> {
    // Resolve every field's OPU name to its interned resource id once;
    // the per-RT field search below is then pure integer compares, and
    // per-cycle claim tracking indexes by field position instead of
    // keying a map by OPU name.
    let field_res: Vec<dspcc_ir::Resource> = layout
        .fields()
        .iter()
        .map(|f| dspcc_ir::Resource::new(&f.opu))
        .collect();
    let mut words = Vec::new();
    let mut claimed: Vec<Option<Word>> = vec![None; layout.fields().len()];
    for (cycle, instr) in schedule.instructions() {
        let mut word = Word::new(layout.width());
        for c in claimed.iter_mut() {
            *c = None;
        }
        for &rt_id in instr {
            let rt = program.rt(rt_id);
            let fidx = field_res
                .iter()
                .position(|&res| rt.usage_id_of(res).is_some())
                .ok_or_else(|| EncodeError::UnknownOpu {
                    rt: rt.name().to_owned(),
                })?;
            let field = &layout.fields()[fidx];
            // Encode this RT's contribution into a scratch word first so
            // identical RTs sharing a cycle can be detected cheaply.
            let mut scratch = Word::new(layout.width());
            encode_rt(
                program,
                rt_id,
                field,
                field_res[fidx],
                immediates,
                format,
                &mut scratch,
            )?;
            if let Some(prev) = &claimed[fidx] {
                if *prev != scratch {
                    return Err(EncodeError::FieldClash {
                        opu: field.opu.clone(),
                        cycle,
                    });
                }
                continue;
            }
            merge_field(&mut word, &scratch, field);
            claimed[fidx] = Some(scratch);
        }
        words.push(word);
    }
    Ok(words)
}

pub(crate) fn merge_field(word: &mut Word, scratch: &Word, field: &OpuField) {
    let mut copy = |offset: u32, bits: u32| {
        if bits > 0 {
            word.set_bits(offset, bits, scratch.bits(offset, bits));
        }
    };
    copy(field.opcode_offset, field.opcode_bits);
    for o in &field.operands {
        copy(o.offset, o.bits);
    }
    for d in &field.dests {
        copy(d.enable_offset, 1);
        copy(d.addr_offset, d.addr_bits);
    }
    if let Some((offset, bits, _)) = field.imm {
        copy(offset, bits);
    }
}

fn encode_rt(
    program: &Program,
    rt_id: RtId,
    field: &OpuField,
    field_res: dspcc_ir::Resource,
    immediates: &BTreeMap<RtId, Immediate>,
    format: WordFormat,
    word: &mut Word,
) -> Result<(), EncodeError> {
    let rt = program.rt(rt_id);
    let op = rt
        .usage_id_of(field_res)
        .expect("field matched this RT")
        .get()
        .op();
    let opcode = field.opcode_of(op).ok_or_else(|| EncodeError::UnknownOp {
        opu: field.opu.clone(),
        op: op.to_owned(),
    })?;
    if field.opcode_bits > 0 {
        word.set_bits(field.opcode_offset, field.opcode_bits, opcode);
    }
    // Operands: match each input port with the first unconsumed operand
    // from the same register file (source order == port order when files
    // coincide).
    let mut used = vec![false; rt.operands().len()];
    for spec in &field.operands {
        if let Some(i) = rt
            .operands()
            .iter()
            .enumerate()
            .position(|(i, o)| !used[i] && o.rf().name() == spec.rf)
        {
            used[i] = true;
            if spec.bits > 0 {
                word.set_bits(spec.offset, spec.bits, rt.operands()[i].index() as u64);
            }
        }
    }
    // Destinations.
    for dest in rt.dests() {
        let spec = field
            .dests
            .iter()
            .find(|d| d.rf == dest.rf().name())
            .ok_or_else(|| EncodeError::BadDest {
                opu: field.opu.clone(),
                rf: dest.rf().name().to_owned(),
            })?;
        word.set_bits(spec.enable_offset, 1, 1);
        if spec.addr_bits > 0 {
            word.set_bits(spec.addr_offset, spec.addr_bits, dest.index() as u64);
        }
    }
    // Immediate.
    if let Some((offset, bits, kind)) = field.imm {
        let imm = immediates
            .get(&rt_id)
            .ok_or_else(|| EncodeError::MissingImmediate {
                rt: rt.name().to_owned(),
            })?;
        let raw: i64 = match (imm, kind) {
            (Immediate::Fixed(v), ImmKind::ProgConst) => format.from_f64(*v),
            (Immediate::Raw(v), ImmKind::ProgConst) => *v,
            (Immediate::RomAddr(a), ImmKind::RomAddr) => *a as i64,
            (other, k) => {
                unreachable!("immediate {other:?} in {k:?} field of `{}`", field.opu)
            }
        };
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let encoded = (raw as u64) & mask;
        // Reject true overflow (sign-extension round trip must hold).
        let back = decode_imm(encoded, bits, kind, format);
        if back != raw {
            return Err(EncodeError::ImmediateOverflow {
                opu: field.opu.clone(),
                value: raw,
                bits,
            });
        }
        word.set_bits(offset, bits, encoded);
    }
    Ok(())
}

pub(crate) fn decode_imm_raw(encoded: u64, bits: u32, kind: ImmKind, format: WordFormat) -> i64 {
    decode_imm(encoded, bits, kind, format)
}

fn decode_imm(encoded: u64, bits: u32, kind: ImmKind, format: WordFormat) -> i64 {
    match kind {
        ImmKind::RomAddr => encoded as i64,
        ImmKind::ProgConst => {
            // Two's complement sign extension at the datapath word width.
            let _ = format;
            let sign = 1u64 << (bits - 1);
            if encoded & sign != 0 {
                (encoded as i64) - (1i64 << bits)
            } else {
                encoded as i64
            }
        }
    }
}

/// One OPU's decoded activity in a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpuAction {
    /// The OPU.
    pub opu: String,
    /// Its kind.
    pub kind: OpuKind,
    /// Decoded operation name.
    pub op: String,
    /// Operand register index per input port (0 for unused ports).
    pub operand_regs: Vec<u32>,
    /// Enabled destinations `(register file, register)`.
    pub dests: Vec<(String, u32)>,
    /// Decoded immediate (sign-extended for program constants).
    pub imm: Option<i64>,
}

/// A fully decoded instruction word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedInstruction {
    /// Active OPUs this cycle (NOP units omitted).
    pub actions: Vec<OpuAction>,
}

/// Decodes one instruction word.
///
/// # Errors
///
/// [`EncodeError::BadOpcode`] when a field holds an opcode past its
/// operation table — a word that no encoder produced (corrupted or
/// hand-forged microcode). Well-formed words always decode: the opcode
/// field is `ceil(log2(ops+1))` bits, so only the unused tail encodings
/// of a non-power-of-two table can trigger this.
pub fn decode(
    word: &Word,
    layout: &FieldLayout,
    format: WordFormat,
) -> Result<DecodedInstruction, EncodeError> {
    let mut actions = Vec::new();
    for field in layout.fields() {
        let opcode = if field.opcode_bits == 0 {
            // Single-op unit: active iff anything in its field is set —
            // conservatively decode via dest enables / operands below.
            // (Derived layouts always have ≥1 opcode bit because NOP is
            // encoding 0 of at least {nop, op}.)
            0
        } else {
            word.bits(field.opcode_offset, field.opcode_bits)
        };
        if opcode == 0 {
            continue;
        }
        let op = field
            .ops
            .get((opcode - 1) as usize)
            .ok_or_else(|| EncodeError::BadOpcode {
                opu: field.opu.clone(),
                opcode,
            })?
            .clone();
        let operand_regs: Vec<u32> = field
            .operands
            .iter()
            .map(|o| {
                if o.bits == 0 {
                    0
                } else {
                    word.bits(o.offset, o.bits) as u32
                }
            })
            .collect();
        let dests: Vec<(String, u32)> = field
            .dests
            .iter()
            .filter(|d| word.bits(d.enable_offset, 1) == 1)
            .map(|d| {
                let addr = if d.addr_bits == 0 {
                    0
                } else {
                    word.bits(d.addr_offset, d.addr_bits) as u32
                };
                (d.rf.clone(), addr)
            })
            .collect();
        let imm = field
            .imm
            .map(|(offset, bits, kind)| decode_imm(word.bits(offset, bits), bits, kind, format));
        actions.push(OpuAction {
            opu: field.opu.clone(),
            kind: field.kind,
            op,
            operand_regs,
            dests,
            imm,
        });
    }
    Ok(DecodedInstruction { actions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::{Datapath, DatapathBuilder};
    use dspcc_ir::{RegRef, Rt, Usage};

    fn dp() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_a", 8)
            .register_file("rf_b", 8)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_a", "rf_b"])
            .output("alu", "bus_alu")
            .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
            .output("prgc", "bus_prgc")
            .write_port("rf_a", &["bus_alu", "bus_prgc"])
            .write_port("rf_b", &["bus_alu"])
            .build()
            .unwrap()
    }

    fn add_rt() -> Rt {
        let mut rt = Rt::new("add");
        rt.add_operand(RegRef::new("rf_a", 3));
        rt.add_operand(RegRef::new("rf_b", 5));
        rt.add_dest(RegRef::new("rf_b", 2));
        rt.add_usage("alu", Usage::token("add"));
        rt.add_usage("bus_alu", Usage::apply("add", ["v0"]));
        rt
    }

    #[test]
    fn encode_decode_round_trip() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let id = p.add_rt(add_rt());
        let mut s = Schedule::new();
        s.place(id, 0);
        let words = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap();
        assert_eq!(words.len(), 1);
        let d = decode(&words[0], &layout, WordFormat::q15()).unwrap();
        assert_eq!(d.actions.len(), 1);
        let a = &d.actions[0];
        assert_eq!(a.opu, "alu");
        assert_eq!(a.op, "add");
        assert_eq!(a.operand_regs, vec![3, 5]);
        assert_eq!(a.dests, vec![("rf_b".to_owned(), 2)]);
        assert_eq!(a.imm, None);
    }

    #[test]
    fn nop_cycles_decode_empty() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let id = p.add_rt(add_rt());
        let mut s = Schedule::new();
        s.place(id, 2); // cycles 0,1 empty
        let words = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap();
        assert_eq!(words.len(), 3);
        assert!(words[0].is_zero());
        assert!(decode(&words[1], &layout, WordFormat::q15())
            .unwrap()
            .actions
            .is_empty());
        assert!(!decode(&words[2], &layout, WordFormat::q15())
            .unwrap()
            .actions
            .is_empty());
    }

    #[test]
    fn immediates_round_trip_signed() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("const");
        rt.add_dest(RegRef::new("rf_a", 1));
        rt.add_usage("prgc", Usage::token("const"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        for value in [-0.5f64, 0.25, -1.0, 0.999] {
            let imms: BTreeMap<RtId, Immediate> =
                [(id, Immediate::Fixed(value))].into_iter().collect();
            let words = encode(&p, &s, &layout, &imms, WordFormat::q15()).unwrap();
            let d = decode(&words[0], &layout, WordFormat::q15()).unwrap();
            let expected = WordFormat::q15().from_f64(value);
            assert_eq!(d.actions[0].imm, Some(expected), "value {value}");
        }
    }

    #[test]
    fn raw_immediates_round_trip() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("addr");
        rt.add_dest(RegRef::new("rf_a", 0));
        rt.add_usage("prgc", Usage::token("const"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let imms: BTreeMap<RtId, Immediate> = [(id, Immediate::Raw(37))].into_iter().collect();
        let words = encode(&p, &s, &layout, &imms, WordFormat::q15()).unwrap();
        let d = decode(&words[0], &layout, WordFormat::q15()).unwrap();
        assert_eq!(d.actions[0].imm, Some(37));
    }

    #[test]
    fn missing_immediate_reported() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("const");
        rt.add_usage("prgc", Usage::token("const"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let err = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap_err();
        assert!(matches!(err, EncodeError::MissingImmediate { .. }));
    }

    #[test]
    fn field_clash_detected() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let a = p.add_rt(add_rt());
        let mut other = add_rt();
        other.add_usage("alu", Usage::token("pass"));
        let b = p.add_rt(other);
        let mut s = Schedule::new();
        s.place(a, 0);
        s.place(b, 0);
        let err = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap_err();
        assert!(
            matches!(err, EncodeError::FieldClash { cycle: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn identical_rts_share_field() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let a = p.add_rt(add_rt());
        let b = p.add_rt(add_rt());
        let mut s = Schedule::new();
        s.place(a, 0);
        s.place(b, 0);
        let words = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap();
        let d = decode(&words[0], &layout, WordFormat::q15()).unwrap();
        assert_eq!(d.actions.len(), 1);
    }

    #[test]
    fn bad_dest_reported() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("bad");
        rt.add_dest(RegRef::new("rf_nowhere", 0));
        rt.add_usage("alu", Usage::token("add"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let err = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap_err();
        assert!(matches!(err, EncodeError::BadDest { .. }));
        assert!(err.to_string().contains("rf_nowhere"));
    }

    #[test]
    fn immediate_overflow_reported() {
        // A raw immediate wider than the program-constant field (the
        // datapath word width): the sign-extension round trip fails and
        // the encoder reports the field overflow instead of silently
        // truncating bits into the ROM.
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("huge");
        rt.add_dest(RegRef::new("rf_a", 0));
        rt.add_usage("prgc", Usage::token("const"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let imms: BTreeMap<RtId, Immediate> = [(id, Immediate::Raw(1 << 40))].into_iter().collect();
        let err = encode(&p, &s, &layout, &imms, WordFormat::q15()).unwrap_err();
        match err {
            EncodeError::ImmediateOverflow {
                ref opu,
                value,
                bits,
            } => {
                assert_eq!(opu, "prgc");
                assert_eq!(value, 1 << 40);
                assert!(bits < 40);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
        assert!(err.to_string().contains("overflows"));
        // The largest representable value still encodes.
        let max = WordFormat::q15().max_value();
        let ok: BTreeMap<RtId, Immediate> = [(id, Immediate::Raw(max))].into_iter().collect();
        let words = encode(&p, &s, &layout, &ok, WordFormat::q15()).unwrap();
        let d = decode(&words[0], &layout, WordFormat::q15()).unwrap();
        assert_eq!(d.actions[0].imm, Some(max));
    }

    #[test]
    fn unknown_op_reported() {
        // An RT whose operation is absent from its OPU's opcode table:
        // `mult` is not an ALU opcode.
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("misop");
        rt.add_usage("alu", Usage::token("mult"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let err = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap_err();
        assert!(
            matches!(err, EncodeError::UnknownOp { ref opu, ref op } if opu == "alu" && op == "mult"),
            "{err}"
        );
        assert!(err.to_string().contains("not an opcode"));
    }

    #[test]
    fn unknown_opu_reported() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let mut rt = Rt::new("mystery");
        rt.add_usage("fpga", Usage::token("bitstream"));
        let id = p.add_rt(rt);
        let mut s = Schedule::new();
        s.place(id, 0);
        let err = encode(&p, &s, &layout, &BTreeMap::new(), WordFormat::q15()).unwrap_err();
        assert!(matches!(err, EncodeError::UnknownOpu { .. }));
    }

    #[test]
    fn two_compatible_units_encode_in_one_word() {
        let dp = dp();
        let layout = FieldLayout::derive(&dp, WordFormat::q15());
        let mut p = Program::new();
        let a = p.add_rt(add_rt());
        let mut c = Rt::new("const");
        c.add_dest(RegRef::new("rf_a", 7));
        c.add_usage("prgc", Usage::token("const"));
        let b = p.add_rt(c);
        let mut s = Schedule::new();
        s.place(a, 0);
        s.place(b, 0);
        let imms: BTreeMap<RtId, Immediate> = [(b, Immediate::Fixed(0.5))].into_iter().collect();
        let words = encode(&p, &s, &layout, &imms, WordFormat::q15()).unwrap();
        let d = decode(&words[0], &layout, WordFormat::q15()).unwrap();
        assert_eq!(d.actions.len(), 2);
        let names: Vec<&str> = d.actions.iter().map(|a| a.opu.as_str()).collect();
        assert!(names.contains(&"alu") && names.contains(&"prgc"));
    }
}
