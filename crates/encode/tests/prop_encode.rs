//! Property-based tests for the encoding layer: bit-field algebra on
//! instruction words and layout integrity on the prepackaged cores.

use dspcc_encode::Word;
use proptest::prelude::*;

/// Non-overlapping random fields inside one word.
fn arb_fields() -> impl Strategy<Value = (u32, Vec<(u32, u32, u64)>)> {
    (64u32..260).prop_flat_map(|width| {
        proptest::collection::vec((0u32..16, 1u32..33, any::<u64>()), 1..12).prop_map(move |raw| {
            // Lay the requested field sizes out back-to-back so they
            // never overlap, clipping at the word end.
            let mut fields = Vec::new();
            let mut cursor = 0u32;
            for (gap, bits, value) in raw {
                let offset = cursor + gap;
                if offset + bits > width {
                    break;
                }
                let mask = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                fields.push((offset, bits, value & mask));
                cursor = offset + bits;
            }
            (width, fields)
        })
    })
}

proptest! {
    /// Every field reads back exactly what was written, independent of
    /// write order, and untouched bits stay zero.
    #[test]
    fn disjoint_fields_are_independent((width, fields) in arb_fields()) {
        let mut w = Word::new(width);
        for &(offset, bits, value) in &fields {
            w.set_bits(offset, bits, value);
        }
        for &(offset, bits, value) in &fields {
            prop_assert_eq!(w.bits(offset, bits), value);
        }
        // Rewriting in reverse order changes nothing.
        let mut w2 = Word::new(width);
        for &(offset, bits, value) in fields.iter().rev() {
            w2.set_bits(offset, bits, value);
        }
        prop_assert_eq!(w, w2);
    }

    /// Overwriting a field replaces it completely.
    #[test]
    fn overwrite_replaces((width, fields) in arb_fields(), replacement in any::<u64>()) {
        prop_assume!(!fields.is_empty());
        let mut w = Word::new(width);
        for &(offset, bits, value) in &fields {
            w.set_bits(offset, bits, value);
        }
        let (offset, bits, _) = fields[0];
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        w.set_bits(offset, bits, replacement & mask);
        prop_assert_eq!(w.bits(offset, bits), replacement & mask);
        // Other fields untouched.
        for &(o, b, v) in &fields[1..] {
            prop_assert_eq!(w.bits(o, b), v);
        }
    }
}

#[test]
fn prepackaged_core_layouts_are_tight() {
    use dspcc_arch::{DatapathBuilder, OpuKind};
    use dspcc_encode::FieldLayout;
    use dspcc_num::WordFormat;
    // A representative multi-unit core: the layout must place every
    // sub-field inside the word with no overlap (checked by construction
    // in unit tests; here we check the derived width is minimal: the sum
    // of all sub-field widths).
    let dp = DatapathBuilder::new()
        .register_file("rf_a", 8)
        .register_file("rf_b", 4)
        .opu(OpuKind::Alu, "alu", &[("add", 1), ("sub", 1)])
        .inputs("alu", &["rf_a", "rf_b"])
        .output("alu", "bus_alu")
        .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
        .output("prgc", "bus_prgc")
        .write_port("rf_a", &["bus_alu", "bus_prgc"])
        .write_port("rf_b", &["bus_alu"])
        .build()
        .unwrap();
    let layout = FieldLayout::derive(&dp, WordFormat::q15());
    let mut sum = 0u32;
    for f in layout.fields() {
        sum += f.opcode_bits;
        sum += f.operands.iter().map(|o| o.bits).sum::<u32>();
        sum += f.dests.iter().map(|d| 1 + d.addr_bits).sum::<u32>();
        if let Some((_, bits, _)) = f.imm {
            sum += bits;
        }
    }
    assert_eq!(layout.width(), sum, "derived layout wastes no bits");
}
