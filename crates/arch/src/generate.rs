//! Seeded architecture generation — random-but-valid in-house cores.
//!
//! The paper's whole point is *retargetability*: the code generator is
//! driven by an architecture description, not baked against one core. Yet
//! a test suite that only ever compiles for a handful of hand-written
//! datapaths exercises exactly those datapaths' corners and no others.
//! This module turns the architecture axis into test input: a
//! [`CoreGenerator`] synthesizes a pseudo-random [`Datapath`] (OPUs with
//! randomized operation sets and latencies, register files with randomized
//! sizes, a randomized bus-connectivity overlay) plus a matching
//! [`Controller`] — **deterministically** from a `u64` seed, with no
//! wall-clock, thread-id, or global-state input whatsoever, so a failing
//! seed reproduces anywhere.
//!
//! # Validity invariants
//!
//! Every value returned by [`CoreGenerator::generate`] satisfies:
//!
//! 1. the datapath passes [`ArchPlan::build`]'s referential validation
//!    (the same path every hand-written core takes);
//! 2. a routable *backbone* exists: input port → RAM/MULT/ALU → output
//!    port, ACU offsets reachable from the program-constant unit, RAM
//!    addresses from the ACU, coefficients from the ROM — so RT generation
//!    can lower the standard application corpus (a core may still be
//!    legitimately *infeasible* for a given program — too little RAM, too
//!    few registers, too tight a controller — which the conformance fleet
//!    classifies as `Infeasible`, never as a generator bug);
//! 3. at least one ALU supports `pass` (the router's bridge operation) and
//!    every OPU supports at least one operation;
//! 4. all operation names are drawn from the simulator's executable
//!    vocabulary, so a *compiled* program is always *runnable*.
//!
//! # Repair / reject policy
//!
//! Random draws that violate an invariant are **repaired** when the fix is
//! local (an empty ALU operation set gains `pass`; a missing `pass` is
//! added to the first ALU), with the reason recorded in
//! [`GeneratedArch::repairs`]. Draws that fail structural validation
//! outright are **rejected**: the attempt is recorded in
//! [`GeneratedArch::rejects`] with the validation error, and generation
//! redraws from a derived substream (`seed`, attempt index). With the
//! backbone construction below rejects cannot occur, but the loop keeps
//! the generator honest against future config extensions — `generate`
//! never returns an invalid core and never loops more than
//! [`MAX_ATTEMPTS`] times.

use std::fmt;

use crate::controller::Controller;
use crate::datapath::{ArchError, Datapath, DatapathBuilder, OpuKind};
use crate::fingerprint::Fnv64;

/// Attempt cap for the reject-and-redraw loop; hitting it is a generator
/// bug, not a seed property.
pub const MAX_ATTEMPTS: u32 = 8;

// ---------------------------------------------------------------------------
// Deterministic PRNG
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, statistically solid, splittable PRNG. Chosen over
/// an external crate (offline build) and over `std`'s hasher randomness
/// (per-process seeded): the whole point is that `SplitMix64::new(seed)`
/// yields the same stream on every run, platform, and thread.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// A generator for a named substream of `seed` — used so that, e.g.,
    /// the connectivity draws of attempt 2 do not depend on how many
    /// numbers attempt 1 consumed.
    pub fn substream(seed: u64, stream: u64) -> Self {
        let mut g = SplitMix64::new(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        g.next_u64(); // decouple from the raw xor
        g
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = u64::from(hi - lo) + 1;
        lo + (self.next_u64() % span) as u32
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.next_u64() % 100 < u64::from(percent)
    }

    /// A uniformly drawn element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

// ---------------------------------------------------------------------------
// ArchPlan: the one validation path for hand-written and generated cores
// ---------------------------------------------------------------------------

/// Blueprint of one operation unit.
#[derive(Debug, Clone)]
pub struct UnitPlan {
    /// Unit kind (fixes simulation semantics).
    pub kind: OpuKind,
    /// Unit name.
    pub name: String,
    /// Supported operations with latencies.
    pub ops: Vec<(String, u32)>,
    /// Input register files, in port order.
    pub inputs: Vec<String>,
    /// Output bus, if the unit drives one.
    pub bus: Option<String>,
    /// Memory words for RAM/ROM kinds.
    pub memory: u32,
}

impl UnitPlan {
    /// A unit of `kind` named `name` supporting `ops`.
    pub fn new(kind: OpuKind, name: &str, ops: &[(&str, u32)]) -> Self {
        UnitPlan {
            kind,
            name: name.to_owned(),
            ops: ops.iter().map(|&(o, l)| (o.to_owned(), l)).collect(),
            inputs: Vec::new(),
            bus: None,
            memory: 0,
        }
    }

    /// Connects the input ports to register files, in port order.
    pub fn inputs(mut self, rfs: &[&str]) -> Self {
        self.inputs = rfs.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Connects the output to `bus`.
    pub fn bus(mut self, bus: &str) -> Self {
        self.bus = Some(bus.to_owned());
        self
    }

    /// Declares the memory size (RAM/ROM kinds).
    pub fn memory(mut self, words: u32) -> Self {
        self.memory = words;
        self
    }
}

/// Blueprint of one register file.
#[derive(Debug, Clone)]
pub struct RfPlan {
    /// File name.
    pub name: String,
    /// Number of registers.
    pub size: u32,
    /// Buses that may write into the file, in multiplexer-input order.
    pub write_buses: Vec<String>,
}

impl RfPlan {
    /// A register file of `size` registers written from `write_buses`.
    pub fn new(name: &str, size: u32, write_buses: &[&str]) -> Self {
        RfPlan {
            name: name.to_owned(),
            size,
            write_buses: write_buses.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

/// A complete datapath blueprint: the shared substrate hand-written cores
/// (`dspcc::cores`) and the generator both materialise through, so both
/// take exactly one validation path — [`DatapathBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct ArchPlan {
    /// All units, in declaration order.
    pub units: Vec<UnitPlan>,
    /// All register files, in declaration order.
    pub rfs: Vec<RfPlan>,
}

impl ArchPlan {
    /// An empty plan.
    pub fn new() -> Self {
        ArchPlan::default()
    }

    /// Adds a register file.
    pub fn rf(mut self, rf: RfPlan) -> Self {
        self.rfs.push(rf);
        self
    }

    /// Adds a unit.
    pub fn unit(mut self, unit: UnitPlan) -> Self {
        self.units.push(unit);
        self
    }

    /// Materialises and validates the plan.
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] from [`DatapathBuilder::build`].
    pub fn build(&self) -> Result<Datapath, ArchError> {
        let mut b = DatapathBuilder::new();
        for rf in &self.rfs {
            b = b.register_file(&rf.name, rf.size);
        }
        for u in &self.units {
            let ops: Vec<(&str, u32)> = u.ops.iter().map(|(o, l)| (o.as_str(), *l)).collect();
            b = b.opu(u.kind, &u.name, &ops);
            if !u.inputs.is_empty() {
                let ins: Vec<&str> = u.inputs.iter().map(String::as_str).collect();
                b = b.inputs(&u.name, &ins);
            }
            if let Some(bus) = &u.bus {
                b = b.output(&u.name, bus);
            }
            if u.memory > 0 {
                b = b.memory(&u.name, u.memory);
            }
        }
        for rf in &self.rfs {
            if !rf.write_buses.is_empty() {
                let buses: Vec<&str> = rf.write_buses.iter().map(String::as_str).collect();
                b = b.write_port(&rf.name, &buses);
            }
        }
        b.build()
    }
}

// ---------------------------------------------------------------------------
// Generator configuration
// ---------------------------------------------------------------------------

/// Inclusive ranges the generator draws its structural parameters from.
///
/// Collapsing a range (`lo == hi`) pins that dimension; collapsing *all*
/// of them makes every seed produce a structurally identical core — which
/// the fingerprint tests exploit to check that equal structure hashes
/// equal regardless of the seed that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of ALUs.
    pub alus: (u32, u32),
    /// Number of multipliers.
    pub mults: (u32, u32),
    /// Number of output ports.
    pub outputs: (u32, u32),
    /// Register-file size range (all files except the ACU base file).
    pub rf_size: (u32, u32),
    /// Data-RAM words.
    pub ram_words: (u32, u32),
    /// Coefficient-ROM words.
    pub rom_words: (u32, u32),
    /// Maximum operation latency (draws are `1..=max_latency`).
    pub max_latency: u32,
    /// Probability (percent) of each *optional* bus→register-file edge
    /// beyond the guaranteed backbone.
    pub extra_connectivity: u32,
    /// Probability (percent) of each optional ALU operation.
    pub alu_op_chance: u32,
    /// ACU base-register-file size (holds the frame pointer).
    pub acu_base_size: (u32, u32),
    /// Output-port register-file size.
    pub out_rf_size: (u32, u32),
    /// Probability (percent) of a full (stack/flag-parameterised)
    /// controller instead of the stripped one.
    pub full_controller_chance: u32,
    /// Controller program-memory depth.
    pub program_depth: (u32, u32),
    /// Datapath word width in bits (the numeric format).
    pub word_width: (u32, u32),
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            alus: (1, 3),
            mults: (1, 2),
            outputs: (1, 2),
            rf_size: (4, 12),
            // Upper ends sized so the heaviest corpus workload (the
            // figure-7 audio application: 48 RAM words, 58 coefficients)
            // is reachable on a meaningful fraction of seeds while small
            // draws keep exercising the overflow feasibility paths.
            ram_words: (16, 96),
            rom_words: (16, 96),
            max_latency: 2,
            extra_connectivity: 35,
            alu_op_chance: 70,
            acu_base_size: (1, 2),
            out_rf_size: (2, 4),
            full_controller_chance: 30,
            program_depth: (64, 256),
            word_width: (12, 24),
        }
    }
}

impl GenConfig {
    /// Checks the config stays inside the generator's envelope: every
    /// backbone anchor needs at least one instance (≥ 1 ALU, multiplier
    /// and output port), register files need at least one register,
    /// ranges must be non-empty, and word widths must be representable
    /// (2..=48 bits).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let range = |name: &str, (lo, hi): (u32, u32), min: u32| -> Result<(), String> {
            if lo > hi {
                return Err(format!("{name}: empty range {lo}..={hi}"));
            }
            if lo < min {
                return Err(format!("{name}: lower bound {lo} below minimum {min}"));
            }
            Ok(())
        };
        range("alus", self.alus, 1)?;
        range("mults", self.mults, 1)?;
        range("outputs", self.outputs, 1)?;
        range("rf_size", self.rf_size, 1)?;
        range("ram_words", self.ram_words, 1)?;
        range("rom_words", self.rom_words, 1)?;
        range("acu_base_size", self.acu_base_size, 1)?;
        range("out_rf_size", self.out_rf_size, 1)?;
        range("program_depth", self.program_depth, 1)?;
        range("word_width", self.word_width, 2)?;
        if self.word_width.1 > 48 {
            return Err(format!(
                "word_width: upper bound {} above the 48-bit format cap",
                self.word_width.1
            ));
        }
        if self.max_latency < 1 {
            return Err("max_latency must be at least 1".to_owned());
        }
        Ok(())
    }

    /// A config with every range collapsed to the audio-core-like shape —
    /// all seeds produce one structure (fingerprint-collision testing).
    pub fn degenerate() -> Self {
        GenConfig {
            alus: (1, 1),
            mults: (1, 1),
            outputs: (2, 2),
            rf_size: (8, 8),
            ram_words: (64, 64),
            rom_words: (64, 64),
            max_latency: 1,
            extra_connectivity: 0,
            alu_op_chance: 100,
            acu_base_size: (2, 2),
            out_rf_size: (2, 2),
            full_controller_chance: 0,
            program_depth: (128, 128),
            word_width: (16, 16),
        }
    }
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// A generated core skeleton: everything architectural. The instruction
/// set is derived separately (`dspcc_isa::derive`) so the arch crate stays
/// free of ISA dependencies.
#[derive(Debug, Clone)]
pub struct GeneratedArch {
    /// The seed that produced this core.
    pub seed: u64,
    /// The validated datapath.
    pub datapath: Datapath,
    /// The matching controller.
    pub controller: Controller,
    /// Datapath word width in bits.
    pub word_width: u32,
    /// Invariant repairs applied to random draws, with reasons.
    pub repairs: Vec<String>,
    /// Rejected attempts (validation error per attempt), normally empty.
    pub rejects: Vec<String>,
}

/// [`CoreGenerator::try_generate`] failure: every attempt's draw was
/// rejected by datapath validation. Impossible with the built-in backbone
/// construction — seeing this means a config extension broke a generator
/// invariant (it is a generator bug, not a seed property), and the
/// per-attempt rejection reasons are carried for triage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError {
    /// The seed whose attempts were exhausted.
    pub seed: u64,
    /// Attempts made (always [`MAX_ATTEMPTS`]).
    pub attempts: u32,
    /// The validation error of each rejected attempt.
    pub rejects: Vec<String>,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {:#x}: all {} generation attempts rejected: {:?}",
            self.seed, self.attempts, self.rejects
        )
    }
}

impl std::error::Error for GenerateError {}

impl GeneratedArch {
    /// Combined content fingerprint of the generated core: datapath,
    /// controller, and word width (the seed is deliberately *not* an
    /// input — structurally identical cores fingerprint equal no matter
    /// which seed drew them).
    pub fn fingerprint(&self) -> u64 {
        Fnv64::of_parts(|h| {
            h.write_u64(self.datapath.fingerprint());
            h.write_u64(self.controller.fingerprint());
            h.write_u32(self.word_width);
        })
    }
}

impl fmt::Display for GeneratedArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen core (seed {:#018x}): {} OPUs, {} RFs, {} buses, {} bit, {}",
            self.seed,
            self.datapath.opus().len(),
            self.datapath.register_files().len(),
            self.datapath.buses().len(),
            self.word_width,
            self.controller,
        )
    }
}

/// The seeded architecture generator. See the [module docs](self) for the
/// validity invariants and the repair/reject policy.
///
/// # Example
///
/// ```
/// use dspcc_arch::generate::CoreGenerator;
///
/// let gen = CoreGenerator::new();
/// let a = gen.generate(42);
/// let b = gen.generate(42);
/// // Deterministic: same seed, byte-identical structure.
/// assert_eq!(a.fingerprint(), b.fingerprint());
/// assert_eq!(a.datapath, b.datapath);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreGenerator {
    config: GenConfig,
}

/// The simulator-executable ALU vocabulary; `pass` is listed first because
/// the repair policy inserts it when a draw comes up empty.
const ALU_OPS: [&str; 5] = ["pass", "add", "add_clip", "sub", "pass_clip"];

impl CoreGenerator {
    /// A generator with the default configuration.
    pub fn new() -> Self {
        CoreGenerator::default()
    }

    /// A generator with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics with the violated constraint if [`GenConfig::validate`]
    /// rejects `config` — an out-of-envelope config is a caller bug and
    /// must fail at construction with its reason, not as a stray index
    /// panic deep inside a draw. Use [`CoreGenerator::try_with_config`]
    /// for a typed-error construction path.
    pub fn with_config(config: GenConfig) -> Self {
        Self::try_with_config(config).expect("invalid GenConfig")
    }

    /// As [`CoreGenerator::with_config`], returning the violated
    /// constraint instead of panicking.
    ///
    /// # Errors
    ///
    /// The first constraint [`GenConfig::validate`] rejects.
    pub fn try_with_config(config: GenConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(CoreGenerator { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// Generates the core for `seed`. Always returns a valid core; see the
    /// [module docs](self) for what that guarantees.
    ///
    /// # Panics
    ///
    /// Panics if [`MAX_ATTEMPTS`] consecutive draws fail validation —
    /// impossible with the built-in backbone construction, and a generator
    /// bug (not a seed property) if a config extension ever triggers it.
    /// Use [`CoreGenerator::try_generate`] for a typed-error path.
    pub fn generate(&self, seed: u64) -> GeneratedArch {
        self.try_generate(seed)
            .expect("generator invariant broken: backbone construction exhausted its attempts")
    }

    /// As [`CoreGenerator::generate`], reporting attempt exhaustion as a
    /// typed [`GenerateError`] (with the per-attempt rejection reasons)
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`GenerateError`] if [`MAX_ATTEMPTS`] consecutive draws fail
    /// validation.
    pub fn try_generate(&self, seed: u64) -> Result<GeneratedArch, GenerateError> {
        let mut rejects = Vec::new();
        for attempt in 0..MAX_ATTEMPTS {
            let mut repairs = Vec::new();
            let mut rng = SplitMix64::substream(seed, u64::from(attempt));
            let (plan, controller, word_width) = self.draw(&mut rng, &mut repairs);
            match plan.build() {
                Ok(datapath) => {
                    return Ok(GeneratedArch {
                        seed,
                        datapath,
                        controller,
                        word_width,
                        repairs,
                        rejects,
                    })
                }
                Err(e) => rejects.push(format!("attempt {attempt}: rejected — {e}")),
            }
        }
        Err(GenerateError {
            seed,
            attempts: MAX_ATTEMPTS,
            rejects,
        })
    }

    /// One structural draw: units, register files, connectivity overlay,
    /// controller.
    fn draw(&self, rng: &mut SplitMix64, repairs: &mut Vec<String>) -> (ArchPlan, Controller, u32) {
        let cfg = &self.config;
        let n_alu = rng.range(cfg.alus.0, cfg.alus.1);
        let n_mult = rng.range(cfg.mults.0, cfg.mults.1);
        let n_out = rng.range(cfg.outputs.0, cfg.outputs.1);
        let rf_size = |rng: &mut SplitMix64| rng.range(cfg.rf_size.0, cfg.rf_size.1);
        let latency = |rng: &mut SplitMix64| rng.range(1, cfg.max_latency.max(1));

        let mut plan = ArchPlan::new();

        // --- Fixed infrastructure units (the backbone's anchors). ---
        plan = plan.unit(UnitPlan::new(OpuKind::Input, "ipb", &[("read", 1)]).bus("bus_ipb"));
        plan = plan
            .rf(RfPlan::new(
                "rf_acu_base",
                rng.range(cfg.acu_base_size.0, cfg.acu_base_size.1),
                &["bus_acu"],
            ))
            .rf(RfPlan::new("rf_acu_off", rf_size(rng), &["bus_prgc"]))
            .unit(
                UnitPlan::new(OpuKind::Acu, "acu", &[("addmod", 1)])
                    .inputs(&["rf_acu_base", "rf_acu_off"])
                    .bus("bus_acu"),
            );
        let ram_words = rng.range(cfg.ram_words.0, cfg.ram_words.1);
        plan = plan
            .rf(RfPlan::new("rf_ram_addr", rf_size(rng), &["bus_acu"]))
            .rf(RfPlan::new("rf_ram_data", rf_size(rng), &[]))
            .unit(
                UnitPlan::new(OpuKind::Ram, "ram", &[("read", latency(rng)), ("write", 1)])
                    .inputs(&["rf_ram_addr", "rf_ram_data"])
                    .bus("bus_ram")
                    .memory(ram_words),
            );
        plan = plan.unit(
            UnitPlan::new(OpuKind::Rom, "rom", &[("const", latency(rng))])
                .bus("bus_rom")
                .memory(rng.range(cfg.rom_words.0, cfg.rom_words.1)),
        );
        plan =
            plan.unit(UnitPlan::new(OpuKind::ProgConst, "prgc", &[("const", 1)]).bus("bus_prgc"));

        // --- Multipliers. ---
        let mut mult_buses = Vec::new();
        for j in 0..n_mult {
            let name = if j == 0 {
                "mult".to_owned()
            } else {
                format!("mult_{j}")
            };
            let bus = format!("bus_{name}");
            let rf_c = format!("rf_{name}_c");
            let rf_x = format!("rf_{name}_x");
            plan = plan
                .rf(RfPlan::new(&rf_c, rf_size(rng), &[]))
                .rf(RfPlan::new(&rf_x, rf_size(rng), &[]))
                .unit(
                    UnitPlan::new(OpuKind::Mult, &name, &[("mult", latency(rng))])
                        .inputs(&[&rf_c, &rf_x])
                        .bus(&bus),
                );
            mult_buses.push(bus);
        }

        // --- ALUs with randomized operation subsets. ---
        let mut alu_buses = Vec::new();
        let mut alu_names = Vec::new();
        let mut any_pass = false;
        for i in 0..n_alu {
            let name = if i == 0 {
                "alu".to_owned()
            } else {
                format!("alu_{i}")
            };
            let bus = format!("bus_{name}");
            // The primary ALU is a backbone anchor: it carries the full
            // operation set (latencies still randomized) so a workload is
            // never infeasible merely because the one connected ALU lost
            // `add` to a coin flip. Secondary ALUs draw random subsets.
            let mut ops: Vec<(String, u32)> = Vec::new();
            for &op in &ALU_OPS {
                let lat = latency(rng);
                if i == 0 || rng.chance(cfg.alu_op_chance) {
                    ops.push((op.to_owned(), lat));
                }
            }
            if ops.is_empty() {
                repairs.push(format!(
                    "{name}: empty operation set drawn; repaired with `pass`"
                ));
                ops.push(("pass".to_owned(), 1));
            }
            any_pass |= ops.iter().any(|(o, _)| o == "pass");
            let rf_a = format!("rf_{name}_a");
            let rf_b = format!("rf_{name}_b");
            plan = plan
                .rf(RfPlan::new(&rf_a, rf_size(rng), &[]))
                .rf(RfPlan::new(&rf_b, rf_size(rng), &[]));
            let ops_ref: Vec<(&str, u32)> = ops.iter().map(|(o, l)| (o.as_str(), *l)).collect();
            plan = plan.unit(
                UnitPlan::new(OpuKind::Alu, &name, &ops_ref)
                    .inputs(&[&rf_a, &rf_b])
                    .bus(&bus),
            );
            alu_buses.push(bus);
            alu_names.push(name);
        }
        if !any_pass {
            repairs.push(format!(
                "no ALU drew `pass` (the routing bridge); repaired on `{}`",
                alu_names[0]
            ));
            let unit = plan
                .units
                .iter_mut()
                .find(|u| u.name == alu_names[0])
                .expect("alu exists");
            unit.ops.push(("pass".to_owned(), 1));
        }

        // --- Output ports. ---
        for k in 0..n_out {
            let name = if n_out == 1 {
                "opb".to_owned()
            } else {
                format!("opb_{}", k + 1)
            };
            let rf = format!("rf_{name}");
            plan = plan.rf(RfPlan::new(
                &rf,
                rng.range(cfg.out_rf_size.0, cfg.out_rf_size.1),
                &[],
            ));
            plan = plan.unit(UnitPlan::new(OpuKind::Output, &name, &[("write", 1)]).inputs(&[&rf]));
        }

        // --- Connectivity: guaranteed backbone + random overlay. ---
        // Backbone edges make the standard lowering patterns routable:
        // the primary ALU/MULT mirror the audio core's reachability; the
        // RAM data file accepts the primary ALU and the input port;
        // output files accept the primary ALU.
        let alu0 = alu_buses[0].clone();
        // RAM data and output files accept *every* ALU bus: the lowerer
        // load-balances compute onto secondary ALUs without lookahead, so
        // a store/output whose producer landed on alu_k must still have a
        // path (the audio core's rf_ram_data accepts its only ALU, too).
        let mut ram_data_buses = vec!["bus_ipb".to_owned()];
        ram_data_buses.splice(0..0, alu_buses.iter().cloned());
        // Likewise the primary ALU's operand files accept *every* MULT
        // bus — products balanced onto a secondary multiplier must still
        // reach an adder (the audio core's `rf_alu_a ← bus_mult`,
        // generalized).
        let mut alu_a_buses = vec![
            "bus_ram".to_owned(),
            "bus_ipb".to_owned(),
            "bus_prgc".to_owned(),
            alu0.clone(),
        ];
        alu_a_buses.splice(0..0, mult_buses.iter().cloned());
        let mut alu_b_buses = vec![alu0.clone(), "bus_ram".to_owned()];
        alu_b_buses.splice(1..1, mult_buses.iter().cloned());
        let backbone: Vec<(&str, Vec<String>)> = vec![
            ("rf_ram_data", ram_data_buses),
            (
                "rf_mult_c",
                vec!["bus_rom".to_owned(), "bus_prgc".to_owned()],
            ),
            (
                "rf_mult_x",
                vec!["bus_ram".to_owned(), "bus_ipb".to_owned(), alu0.clone()],
            ),
            ("rf_alu_a", alu_a_buses),
            ("rf_alu_b", alu_b_buses),
        ];
        for (rf_name, buses) in backbone {
            let rf = plan
                .rfs
                .iter_mut()
                .find(|r| r.name == rf_name)
                .expect("backbone rf");
            for b in buses {
                if !rf.write_buses.contains(&b) {
                    rf.write_buses.push(b);
                }
            }
        }
        // Every output-port file accepts every ALU bus.
        for rf in plan.rfs.iter_mut() {
            if rf.name.starts_with("rf_opb") {
                for bus in &alu_buses {
                    if !rf.write_buses.contains(bus) {
                        rf.write_buses.push(bus.clone());
                    }
                }
            }
        }
        // Overlay: every producing bus may additionally write any compute
        // or IO register file, each edge drawn independently.
        let producer_buses: Vec<String> = plan
            .units
            .iter()
            .filter_map(|u| u.bus.clone())
            .filter(|b| b != "bus_acu") // addresses stay address-typed
            .collect();
        for rf in plan.rfs.iter_mut() {
            // ACU base holds only the frame pointer; address files only
            // accept the ACU; the offset file only program constants.
            if matches!(
                rf.name.as_str(),
                "rf_acu_base" | "rf_acu_off" | "rf_ram_addr"
            ) {
                continue;
            }
            for bus in &producer_buses {
                if !rf.write_buses.contains(bus) && rng.chance(self.config.extra_connectivity) {
                    rf.write_buses.push(bus.clone());
                }
            }
        }

        // --- Controller + word format. ---
        let depth = rng.range(cfg.program_depth.0, cfg.program_depth.1);
        let controller = if rng.chance(cfg.full_controller_chance) {
            Controller::new(depth, rng.range(1, 4), 0)
        } else {
            Controller::stripped(depth)
        };
        let word_width = rng.range(cfg.word_width.0, cfg.word_width.1);
        (plan, controller, word_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = CoreGenerator::new();
        for seed in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            let a = gen.generate(seed);
            let b = gen.generate(seed);
            assert_eq!(a.datapath, b.datapath, "seed {seed:#x}");
            assert_eq!(a.controller, b.controller);
            assert_eq!(a.word_width, b.word_width);
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(a.repairs, b.repairs);
        }
    }

    #[test]
    fn generated_cores_satisfy_invariants() {
        let gen = CoreGenerator::new();
        for seed in 0..128u64 {
            let g = gen.generate(seed);
            let dp = &g.datapath;
            // Backbone anchors exist.
            for unit in ["ipb", "acu", "ram", "rom", "prgc", "mult", "alu"] {
                assert!(dp.opu(unit).is_some(), "seed {seed}: missing {unit}");
            }
            // Invariant 3: some ALU supports pass; every OPU has an op.
            assert!(
                dp.opus()
                    .iter()
                    .any(|o| o.kind() == OpuKind::Alu && o.supports("pass")),
                "seed {seed}: no pass-capable ALU"
            );
            for o in dp.opus() {
                assert!(
                    o.ops().next().is_some(),
                    "seed {seed}: {} op-less",
                    o.name()
                );
            }
            // Invariant 4: op names stay inside the simulator vocabulary.
            for o in dp.opus() {
                for (op, lat) in o.ops() {
                    assert!(lat >= 1);
                    let known = match o.kind() {
                        OpuKind::Alu => ALU_OPS.contains(&op),
                        OpuKind::Mult => op == "mult",
                        OpuKind::Ram => op == "read" || op == "write",
                        OpuKind::Rom | OpuKind::ProgConst => op == "const",
                        OpuKind::Acu => op == "addmod",
                        OpuKind::Input => op == "read",
                        OpuKind::Output => op == "write",
                        OpuKind::Asu => false,
                    };
                    assert!(known, "seed {seed}: `{op}` not executable on {}", o.name());
                }
            }
            assert!(g.rejects.is_empty(), "seed {seed}: {:?}", g.rejects);
            assert!((2..=48).contains(&g.word_width));
        }
    }

    #[test]
    fn seeds_vary_the_structure() {
        let gen = CoreGenerator::new();
        let prints: std::collections::BTreeSet<u64> =
            (0..32u64).map(|s| gen.generate(s).fingerprint()).collect();
        // Structural collisions are possible but most seeds must differ.
        assert!(
            prints.len() > 16,
            "only {} distinct structures",
            prints.len()
        );
    }

    #[test]
    fn degenerate_config_collides_across_seeds() {
        // All ranges collapsed + 100% op chance + 0% overlay: every seed
        // draws the same structure, so fingerprints *must* collide —
        // equal structure hashes equal no matter which seed produced it.
        let gen = CoreGenerator::with_config(GenConfig::degenerate());
        let a = gen.generate(1);
        let b = gen.generate(99);
        assert_eq!(a.datapath, b.datapath);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn fingerprint_is_stable_across_threads() {
        let gen = CoreGenerator::new();
        let expected: Vec<u64> = (0..8u64).map(|s| gen.generate(s).fingerprint()).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let gen = CoreGenerator::new();
                    (0..8u64)
                        .map(|s| gen.generate(s).fingerprint())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn arch_plan_builds_hand_written_shapes() {
        // The tiny teaching shape through the shared plan path.
        let dp = ArchPlan::new()
            .rf(RfPlan::new("rf_alu_a", 4, &["bus_alu", "bus_ipb"]))
            .rf(RfPlan::new("rf_alu_b", 4, &["bus_alu"]))
            .unit(UnitPlan::new(OpuKind::Input, "ipb", &[("read", 1)]).bus("bus_ipb"))
            .unit(
                UnitPlan::new(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
                    .inputs(&["rf_alu_a", "rf_alu_b"])
                    .bus("bus_alu"),
            )
            .build()
            .unwrap();
        assert_eq!(dp.opus().len(), 2);
        assert!(dp.register_file("rf_alu_a").unwrap().has_mux());
    }

    #[test]
    fn arch_plan_rejects_like_the_builder() {
        let err = ArchPlan::new()
            .rf(RfPlan::new("rf", 0, &[]))
            .unit(
                UnitPlan::new(OpuKind::Alu, "alu", &[("add", 1)])
                    .inputs(&["rf"])
                    .bus("b"),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::EmptyRegisterFile("rf".into()));
    }

    #[test]
    fn out_of_envelope_configs_rejected_with_reason() {
        let no_alu = GenConfig {
            alus: (0, 0),
            ..GenConfig::default()
        };
        assert!(no_alu.validate().unwrap_err().contains("alus"));
        let empty = GenConfig {
            ram_words: (9, 3),
            ..GenConfig::default()
        };
        assert!(empty.validate().unwrap_err().contains("empty range"));
        let wide = GenConfig {
            word_width: (16, 64),
            ..GenConfig::default()
        };
        assert!(wide.validate().unwrap_err().contains("48-bit"));
        assert!(GenConfig::default().validate().is_ok());
        assert!(GenConfig::degenerate().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "mults: lower bound 0 below minimum 1")]
    fn with_config_panics_on_invalid_config() {
        CoreGenerator::with_config(GenConfig {
            mults: (0, 2),
            ..GenConfig::default()
        });
    }

    #[test]
    fn splitmix_streams_are_decoupled() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::substream(5, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::substream(5, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        // range/chance/pick stay in bounds.
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
            let _ = r.chance(50);
            assert!([1, 2, 3].contains(r.pick(&[1, 2, 3])));
        }
    }

    #[test]
    fn repairs_are_recorded_for_sparse_op_draws() {
        // Force empty op draws on the secondary ALU (the primary carries
        // the guaranteed backbone set): with 0% op chance it is repaired
        // with `pass` and the reason is recorded.
        let cfg = GenConfig {
            alus: (2, 2),
            alu_op_chance: 0,
            ..GenConfig::default()
        };
        let g = CoreGenerator::with_config(cfg).generate(11);
        assert!(
            g.repairs
                .iter()
                .any(|r| r.contains("alu_1") && r.contains("repaired with `pass`")),
            "{:?}",
            g.repairs
        );
        assert!(g.datapath.opu("alu_1").unwrap().supports("pass"));
        // The primary keeps the full set regardless of the draw chance.
        for op in ["add", "add_clip", "sub", "pass", "pass_clip"] {
            assert!(g.datapath.opu("alu").unwrap().supports(op));
        }
    }
}
