//! Content fingerprinting for architecture descriptions.
//!
//! The staged compilation session (`dspcc::CompileSession`) memoizes stage
//! artifacts by *content*: a stage key mixes the fingerprints of exactly
//! the inputs the stage reads — source text, datapath, controller,
//! instruction set, and the relevant option subset. Two cores that are
//! structurally identical therefore share cached artifacts even when they
//! are distinct values in memory, and any edit to a component changes its
//! fingerprint and invalidates precisely the stages downstream of it.
//!
//! [`Fnv64`] is a minimal FNV-1a 64-bit hasher. It is *not* a collision-
//! resistant digest — it keys a cache whose worst failure mode under a
//! collision would be returning the artifact of a structurally different
//! input, which at 64 bits over the handful of cores and sources a design
//! session touches is vanishingly unlikely (and the property tests pin the
//! cached path bit-identical to the uncached one). Deliberately *stable*
//! across runs and platforms, unlike `std::collections::hash_map`'s
//! per-process-seeded hasher, so fingerprints can be logged and compared.

use std::fmt;

use crate::controller::Controller;
use crate::datapath::Datapath;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with length-prefixed writes.
///
/// Every variable-length write is prefixed with its length so that
/// adjacent fields cannot alias (`"ab" + "c"` hashes differently from
/// `"a" + "bc"`).
///
/// # Example
///
/// ```
/// use dspcc_arch::fingerprint::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write_text("alu");
/// h.write_u32(2);
/// let a = h.finish();
/// assert_eq!(a, Fnv64::of_parts(|h| { h.write_text("alu"); h.write_u32(2); }));
/// assert_ne!(a, Fnv64::of_parts(|h| { h.write_text("alu"); h.write_u32(3); }));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Hashes the parts written by `f` — a one-expression fingerprint.
    pub fn of_parts(f: impl FnOnce(&mut Fnv64)) -> u64 {
        let mut h = Fnv64::new();
        f(&mut h);
        h.finish()
    }

    /// Feeds raw bytes (no length prefix — use for fixed-width data).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feeds a string, length-prefixed.
    pub fn write_text(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// `write!(hasher, ...)` support: formatted output is hashed, not stored.
/// Handy for fingerprinting types through their `Debug` representation
/// (which for this workspace's plain-data IR types is a complete and
/// deterministic rendering of the content).
impl fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

impl Datapath {
    /// Content fingerprint of the full datapath structure: every OPU
    /// (name, kind, operations with latencies, input files, output bus,
    /// flags, memory size), register file (name, size, write buses) and
    /// bus, in declaration order.
    pub fn fingerprint(&self) -> u64 {
        Fnv64::of_parts(|h| {
            h.write_u64(self.opus().len() as u64);
            for opu in self.opus() {
                h.write_text(opu.name());
                h.write_u8(opu.kind() as u8);
                for (op, latency) in opu.ops() {
                    h.write_text(op);
                    h.write_u32(latency);
                }
                h.write_u64(opu.inputs().len() as u64);
                for rf in opu.inputs() {
                    h.write_text(rf);
                }
                h.write_bool(opu.output_bus().is_some());
                if let Some(bus) = opu.output_bus() {
                    h.write_text(bus);
                }
                h.write_u64(opu.flags().len() as u64);
                for flag in opu.flags() {
                    h.write_text(flag);
                }
                h.write_u32(opu.memory_size());
            }
            h.write_u64(self.register_files().len() as u64);
            for rf in self.register_files() {
                h.write_text(rf.name());
                h.write_u32(rf.size());
                h.write_u64(rf.write_buses().len() as u64);
                for bus in rf.write_buses() {
                    h.write_text(bus);
                }
            }
            h.write_u64(self.buses().len() as u64);
            for bus in self.buses() {
                h.write_text(bus.name());
            }
        })
    }
}

impl Controller {
    /// Content fingerprint of the controller parameter set.
    pub fn fingerprint(&self) -> u64 {
        Fnv64::of_parts(|h| {
            h.write_u32(self.program_depth());
            h.write_u32(self.stack_depth());
            h.write_u32(self.flag_count());
            h.write_bool(self.supports_conditionals());
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::{DatapathBuilder, OpuKind};

    fn small(alu_rf_size: u32) -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_alu_a", alu_rf_size)
            .register_file("rf_alu_b", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .write_port("rf_alu_a", &["bus_alu"])
            .write_port("rf_alu_b", &["bus_alu"])
            .build()
            .unwrap()
    }

    #[test]
    fn datapath_fingerprint_is_content_keyed() {
        // Structurally equal values fingerprint equal...
        assert_eq!(small(4).fingerprint(), small(4).fingerprint());
        // ...and any structural edit changes the fingerprint.
        assert_ne!(small(4).fingerprint(), small(5).fingerprint());
    }

    #[test]
    fn controller_fingerprint_tracks_every_parameter() {
        let base = Controller::stripped(64);
        assert_eq!(base.fingerprint(), Controller::stripped(64).fingerprint());
        assert_ne!(base.fingerprint(), Controller::stripped(65).fingerprint());
        assert_ne!(base.fingerprint(), Controller::new(64, 1, 1).fingerprint());
        assert_ne!(base.fingerprint(), Controller::new(64, 2, 0).fingerprint());
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let ab_c = Fnv64::of_parts(|h| {
            h.write_text("ab");
            h.write_text("c");
        });
        let a_bc = Fnv64::of_parts(|h| {
            h.write_text("a");
            h.write_text("bc");
        });
        assert_ne!(ab_c, a_bc);
    }
}
