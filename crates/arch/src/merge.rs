//! Resource-merging transformations (paper sections 4–5).
//!
//! RT generation targets the *intermediate* architecture, in which every
//! OPU owns dedicated register files and a dedicated output bus. The real
//! core is derived by **merging** register files and buses:
//!
//! > "The architecture modifications … specify the merging of resources
//! > such as busses and register files. Then these resources can be shared
//! > at the cost of reduction of parallelism."
//!
//! A [`MergePlan`] lists groups of register files and groups of buses to
//! merge. [`MergePlan::apply`] produces the merged [`Datapath`];
//! [`MergePlan::rename_map`] produces the resource-name substitution that
//! the RT-modification pass applies to every RT (including derived names:
//! write ports and multiplexers follow their register file).

use std::collections::BTreeMap;
use std::fmt;

use crate::datapath::{ArchError, Datapath, DatapathBuilder, OpuKind};

/// A set of register-file and bus merges.
///
/// # Example
///
/// ```
/// use dspcc_arch::merge::MergePlan;
///
/// let mut plan = MergePlan::new();
/// plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_shared");
/// plan.merge_buses(&["bus_alu", "bus_mult"], "bus_shared");
/// assert_eq!(plan.rf_groups().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MergePlan {
    rf_groups: Vec<(Vec<String>, String)>,
    bus_groups: Vec<(Vec<String>, String)>,
}

/// Error applying a [`MergePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A named component does not exist in the datapath.
    UnknownComponent(String),
    /// A component appears in more than one merge group.
    OverlappingGroups(String),
    /// The merged datapath failed validation.
    InvalidResult(ArchError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::UnknownComponent(n) => write!(f, "unknown component `{n}` in merge plan"),
            MergeError::OverlappingGroups(n) => {
                write!(f, "component `{n}` appears in more than one merge group")
            }
            MergeError::InvalidResult(e) => write!(f, "merged datapath is invalid: {e}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::InvalidResult(e) => Some(e),
            _ => None,
        }
    }
}

impl MergePlan {
    /// Creates an empty plan (applying it is the identity).
    pub fn new() -> Self {
        MergePlan::default()
    }

    /// Merges the register files `members` into one file named `target`.
    /// The merged file has the summed capacity and the union of write
    /// buses.
    pub fn merge_rfs(&mut self, members: &[&str], target: &str) -> &mut Self {
        self.rf_groups.push((
            members.iter().map(|s| (*s).to_owned()).collect(),
            target.to_owned(),
        ));
        self
    }

    /// Merges the buses `members` into one bus named `target`.
    pub fn merge_buses(&mut self, members: &[&str], target: &str) -> &mut Self {
        self.bus_groups.push((
            members.iter().map(|s| (*s).to_owned()).collect(),
            target.to_owned(),
        ));
        self
    }

    /// The register-file merge groups.
    pub fn rf_groups(&self) -> &[(Vec<String>, String)] {
        &self.rf_groups
    }

    /// The bus merge groups.
    pub fn bus_groups(&self) -> &[(Vec<String>, String)] {
        &self.bus_groups
    }

    /// Computes the resource-name substitution induced by this plan on
    /// `dp`: register files, buses, and the derived write-port and
    /// multiplexer names.
    ///
    /// # Errors
    ///
    /// Fails on unknown components or overlapping groups.
    pub fn rename_map(&self, dp: &Datapath) -> Result<BTreeMap<String, String>, MergeError> {
        let mut map = BTreeMap::new();
        let mut claimed: BTreeMap<&str, ()> = BTreeMap::new();
        for (members, target) in &self.rf_groups {
            for m in members {
                if dp.register_file(m).is_none() {
                    return Err(MergeError::UnknownComponent(m.clone()));
                }
                if claimed.insert(m, ()).is_some() {
                    return Err(MergeError::OverlappingGroups(m.clone()));
                }
                map.insert(m.clone(), target.clone());
                map.insert(Datapath::wp_name(m), Datapath::wp_name(target));
                map.insert(Datapath::mux_name(m), Datapath::mux_name(target));
            }
        }
        for (members, target) in &self.bus_groups {
            for m in members {
                if dp.bus(m).is_none() {
                    return Err(MergeError::UnknownComponent(m.clone()));
                }
                if claimed.insert(m, ()).is_some() {
                    return Err(MergeError::OverlappingGroups(m.clone()));
                }
                map.insert(m.clone(), target.clone());
            }
        }
        Ok(map)
    }

    /// Applies the plan, producing the merged datapath.
    ///
    /// # Errors
    ///
    /// Fails on unknown components, overlapping groups, or if the merged
    /// structure does not validate.
    pub fn apply(&self, dp: &Datapath) -> Result<Datapath, MergeError> {
        let map = self.rename_map(dp)?;
        let rename = |n: &str| -> String { map.get(n).cloned().unwrap_or_else(|| n.to_owned()) };

        let mut b = DatapathBuilder::new();
        // Merged register files: summed size, union of write buses.
        let mut done_rf: BTreeMap<String, ()> = BTreeMap::new();
        for rf in dp.register_files() {
            let new_name = rename(rf.name());
            if done_rf.contains_key(&new_name) {
                continue;
            }
            done_rf.insert(new_name.clone(), ());
            let members: Vec<_> = dp
                .register_files()
                .iter()
                .filter(|r| rename(r.name()) == new_name)
                .collect();
            let size: u32 = members.iter().map(|r| r.size()).sum();
            let mut buses: Vec<String> = Vec::new();
            for m in &members {
                for wb in m.write_buses() {
                    let nb = rename(wb);
                    if !buses.contains(&nb) {
                        buses.push(nb);
                    }
                }
            }
            b = b.register_file(&new_name, size);
            let bus_refs: Vec<&str> = buses.iter().map(|s| s.as_str()).collect();
            b = b.write_port(&new_name, &bus_refs);
        }
        // OPUs keep their identity; inputs and output bus are renamed.
        for opu in dp.opus() {
            let ops: Vec<(&str, u32)> = opu.ops().collect();
            b = b.opu(opu.kind(), opu.name(), &ops);
            let inputs: Vec<String> = opu.inputs().iter().map(|r| rename(r)).collect();
            let input_refs: Vec<&str> = inputs.iter().map(|s| s.as_str()).collect();
            b = b.inputs(opu.name(), &input_refs);
            if let Some(bus) = opu.output_bus() {
                b = b.output(opu.name(), &rename(bus));
            }
            if matches!(opu.kind(), OpuKind::Ram | OpuKind::Rom) {
                b = b.memory(opu.name(), opu.memory_size());
            }
            if !opu.flags().is_empty() {
                let flags: Vec<&str> = opu.flags().iter().map(|s| s.as_str()).collect();
                b = b.flags(opu.name(), &flags);
            }
        }
        b.build().map_err(MergeError::InvalidResult)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::OpuKind;

    /// An intermediate-style datapath: ALU and MULT each with dedicated
    /// register files and buses.
    fn intermediate() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_alu_a", 4)
            .register_file("rf_alu_b", 4)
            .register_file("rf_mult_a", 4)
            .register_file("rf_mult_b", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .opu(OpuKind::Mult, "mult", &[("mult", 1)])
            .inputs("mult", &["rf_mult_a", "rf_mult_b"])
            .output("mult", "bus_mult")
            .write_port("rf_alu_a", &["bus_alu", "bus_mult"])
            .write_port("rf_alu_b", &["bus_alu", "bus_mult"])
            .write_port("rf_mult_a", &["bus_alu", "bus_mult"])
            .write_port("rf_mult_b", &["bus_alu", "bus_mult"])
            .build()
            .unwrap()
    }

    #[test]
    fn identity_plan_preserves_structure() {
        let dp = intermediate();
        let merged = MergePlan::new().apply(&dp).unwrap();
        assert_eq!(merged.register_files().len(), 4);
        assert_eq!(merged.buses().len(), 2);
        assert_eq!(merged.opus().len(), 2);
    }

    #[test]
    fn rf_merge_sums_sizes_and_unions_buses() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_a");
        let merged = plan.apply(&dp).unwrap();
        let rf = merged.register_file("rf_a").unwrap();
        assert_eq!(rf.size(), 8);
        assert_eq!(rf.write_buses(), &["bus_alu", "bus_mult"]);
        // OPU inputs follow the merge.
        assert_eq!(merged.opu("alu").unwrap().inputs()[0], "rf_a");
        assert_eq!(merged.opu("mult").unwrap().inputs()[0], "rf_a");
    }

    #[test]
    fn bus_merge_collapses_mux_inputs() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_buses(&["bus_alu", "bus_mult"], "bus_main");
        let merged = plan.apply(&dp).unwrap();
        assert_eq!(merged.buses().len(), 1);
        let rf = merged.register_file("rf_alu_a").unwrap();
        // Two former mux inputs collapse into a single bus: mux disappears.
        assert_eq!(rf.write_buses(), &["bus_main"]);
        assert!(!rf.has_mux());
        assert_eq!(merged.drivers_of("bus_main").len(), 2);
    }

    #[test]
    fn rename_map_covers_derived_names() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_a");
        plan.merge_buses(&["bus_alu", "bus_mult"], "bus_main");
        let map = plan.rename_map(&dp).unwrap();
        assert_eq!(map.get("rf_alu_a").unwrap(), "rf_a");
        assert_eq!(map.get("wp_rf_alu_a").unwrap(), "wp_rf_a");
        assert_eq!(map.get("mux_rf_mult_a").unwrap(), "mux_rf_a");
        assert_eq!(map.get("bus_alu").unwrap(), "bus_main");
        assert!(!map.contains_key("rf_alu_b"));
    }

    #[test]
    fn unknown_member_rejected() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_ghost"], "rf_a");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::UnknownComponent("rf_ghost".into())
        );
    }

    #[test]
    fn overlapping_groups_rejected() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_a");
        plan.merge_rfs(&["rf_alu_a", "rf_alu_b"], "rf_b");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::OverlappingGroups("rf_alu_a".into())
        );
    }

    #[test]
    fn merge_error_display() {
        let e = MergeError::UnknownComponent("x".into());
        assert!(e.to_string().contains("unknown component"));
        let e = MergeError::OverlappingGroups("y".into());
        assert!(e.to_string().contains("more than one"));
    }
}
