//! Resource-merging transformations (paper sections 4–5).
//!
//! RT generation targets the *intermediate* architecture, in which every
//! OPU owns dedicated register files and a dedicated output bus. The real
//! core is derived by **merging** register files and buses:
//!
//! > "The architecture modifications … specify the merging of resources
//! > such as busses and register files. Then these resources can be shared
//! > at the cost of reduction of parallelism."
//!
//! A [`MergePlan`] lists groups of register files and groups of buses to
//! merge. [`MergePlan::apply`] produces the merged [`Datapath`];
//! [`MergePlan::rename_map`] produces the resource-name substitution that
//! the RT-modification pass applies to every RT (including derived names:
//! write ports and multiplexers follow their register file).

use std::collections::BTreeMap;
use std::fmt;

use crate::datapath::{ArchError, Datapath, DatapathBuilder, OpuKind};

/// A set of register-file and bus merges.
///
/// # Example
///
/// ```
/// use dspcc_arch::merge::MergePlan;
///
/// let mut plan = MergePlan::new();
/// plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_shared");
/// plan.merge_buses(&["bus_alu", "bus_mult"], "bus_shared");
/// assert_eq!(plan.rf_groups().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MergePlan {
    rf_groups: Vec<(Vec<String>, String)>,
    bus_groups: Vec<(Vec<String>, String)>,
}

/// Error applying a [`MergePlan`] or computing a cross-core [`union`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A named component does not exist in the datapath.
    UnknownComponent(String),
    /// A component appears in more than one merge group.
    OverlappingGroups(String),
    /// A merge target (or a name the rename map must claim for it, such
    /// as a derived `wp_`/`mux_` name) collides with an existing
    /// component that is not a member of the group — applying the plan
    /// would silently absorb or shadow that component.
    TargetCollision(String),
    /// Two datapaths disagree structurally at a same-named component and
    /// cannot be unioned.
    UnionConflict {
        /// The component both datapaths declare.
        name: String,
        /// Why the declarations are incompatible.
        reason: String,
    },
    /// The merged datapath failed validation.
    InvalidResult(ArchError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::UnknownComponent(n) => write!(f, "unknown component `{n}` in merge plan"),
            MergeError::OverlappingGroups(n) => {
                write!(f, "component `{n}` appears in more than one merge group")
            }
            MergeError::TargetCollision(n) => write!(
                f,
                "merge target `{n}` collides with an existing component outside the group"
            ),
            MergeError::UnionConflict { name, reason } => {
                write!(f, "cannot union datapaths at `{name}`: {reason}")
            }
            MergeError::InvalidResult(e) => write!(f, "merged datapath is invalid: {e}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::InvalidResult(e) => Some(e),
            _ => None,
        }
    }
}

impl MergePlan {
    /// Creates an empty plan (applying it is the identity).
    pub fn new() -> Self {
        MergePlan::default()
    }

    /// Merges the register files `members` into one file named `target`.
    /// The merged file has the summed capacity and the union of write
    /// buses.
    pub fn merge_rfs(&mut self, members: &[&str], target: &str) -> &mut Self {
        self.rf_groups.push((
            members.iter().map(|s| (*s).to_owned()).collect(),
            target.to_owned(),
        ));
        self
    }

    /// Merges the buses `members` into one bus named `target`.
    pub fn merge_buses(&mut self, members: &[&str], target: &str) -> &mut Self {
        self.bus_groups.push((
            members.iter().map(|s| (*s).to_owned()).collect(),
            target.to_owned(),
        ));
        self
    }

    /// The register-file merge groups.
    pub fn rf_groups(&self) -> &[(Vec<String>, String)] {
        &self.rf_groups
    }

    /// The bus merge groups.
    pub fn bus_groups(&self) -> &[(Vec<String>, String)] {
        &self.bus_groups
    }

    /// Computes the resource-name substitution induced by this plan on
    /// `dp`: register files, buses, and the derived write-port and
    /// multiplexer names.
    ///
    /// Membership is tracked per component kind (register files and
    /// buses have separate `claimed` namespaces). `DatapathBuilder`
    /// keeps all component names globally unique, so a single shared
    /// namespace could not actually cross-trip on a valid datapath —
    /// but splitting them makes the invariant local instead of an
    /// accident of validation elsewhere.
    ///
    /// # Errors
    ///
    /// Fails on unknown components, overlapping groups, or target
    /// collisions: a target (or a derived `wp_`/`mux_` name the map
    /// must claim) that names an existing component outside the group
    /// is rejected with [`MergeError::TargetCollision`] instead of
    /// silently absorbing that component. Naming the target after one
    /// of the group's own members remains legal.
    pub fn rename_map(&self, dp: &Datapath) -> Result<BTreeMap<String, String>, MergeError> {
        let exists =
            |n: &str| dp.register_file(n).is_some() || dp.bus(n).is_some() || dp.opu(n).is_some();
        let mut map = BTreeMap::new();
        let mut claimed_rf: BTreeMap<&str, ()> = BTreeMap::new();
        let mut claimed_bus: BTreeMap<&str, ()> = BTreeMap::new();
        let mut targets: BTreeMap<&str, ()> = BTreeMap::new();
        for (members, target) in &self.rf_groups {
            if targets.insert(target, ()).is_some() {
                return Err(MergeError::TargetCollision(target.clone()));
            }
            if exists(target) && !members.iter().any(|m| m == target) {
                return Err(MergeError::TargetCollision(target.clone()));
            }
            // The merged file's derived write-port/mux resources must
            // not shadow real components either.
            for derived in [Datapath::wp_name(target), Datapath::mux_name(target)] {
                if exists(&derived) {
                    return Err(MergeError::TargetCollision(derived));
                }
            }
            for m in members {
                if dp.register_file(m).is_none() {
                    return Err(MergeError::UnknownComponent(m.clone()));
                }
                if claimed_rf.insert(m, ()).is_some() {
                    return Err(MergeError::OverlappingGroups(m.clone()));
                }
                // A real component literally named like a member's
                // derived resource would be captured by the map and
                // silently renamed along with it.
                for derived in [Datapath::wp_name(m), Datapath::mux_name(m)] {
                    if exists(&derived) {
                        return Err(MergeError::TargetCollision(derived));
                    }
                }
                map.insert(m.clone(), target.clone());
                map.insert(Datapath::wp_name(m), Datapath::wp_name(target));
                map.insert(Datapath::mux_name(m), Datapath::mux_name(target));
            }
        }
        for (members, target) in &self.bus_groups {
            if targets.insert(target, ()).is_some() {
                return Err(MergeError::TargetCollision(target.clone()));
            }
            if exists(target) && !members.iter().any(|m| m == target) {
                return Err(MergeError::TargetCollision(target.clone()));
            }
            for m in members {
                if dp.bus(m).is_none() {
                    return Err(MergeError::UnknownComponent(m.clone()));
                }
                if claimed_bus.insert(m, ()).is_some() {
                    return Err(MergeError::OverlappingGroups(m.clone()));
                }
                map.insert(m.clone(), target.clone());
            }
        }
        Ok(map)
    }

    /// Applies the plan, producing the merged datapath.
    ///
    /// # Errors
    ///
    /// Fails on unknown components, overlapping groups, or if the merged
    /// structure does not validate.
    pub fn apply(&self, dp: &Datapath) -> Result<Datapath, MergeError> {
        let map = self.rename_map(dp)?;
        let rename = |n: &str| -> String { map.get(n).cloned().unwrap_or_else(|| n.to_owned()) };

        let mut b = DatapathBuilder::new();
        // Merged register files: summed size, union of write buses.
        let mut done_rf: BTreeMap<String, ()> = BTreeMap::new();
        for rf in dp.register_files() {
            let new_name = rename(rf.name());
            if done_rf.contains_key(&new_name) {
                continue;
            }
            done_rf.insert(new_name.clone(), ());
            let members: Vec<_> = dp
                .register_files()
                .iter()
                .filter(|r| rename(r.name()) == new_name)
                .collect();
            let size: u32 = members.iter().map(|r| r.size()).sum();
            let mut buses: Vec<String> = Vec::new();
            for m in &members {
                for wb in m.write_buses() {
                    let nb = rename(wb);
                    if !buses.contains(&nb) {
                        buses.push(nb);
                    }
                }
            }
            b = b.register_file(&new_name, size);
            let bus_refs: Vec<&str> = buses.iter().map(|s| s.as_str()).collect();
            b = b.write_port(&new_name, &bus_refs);
        }
        // OPUs keep their identity; inputs and output bus are renamed.
        for opu in dp.opus() {
            let ops: Vec<(&str, u32)> = opu.ops().collect();
            b = b.opu(opu.kind(), opu.name(), &ops);
            let inputs: Vec<String> = opu.inputs().iter().map(|r| rename(r)).collect();
            let input_refs: Vec<&str> = inputs.iter().map(|s| s.as_str()).collect();
            b = b.inputs(opu.name(), &input_refs);
            if let Some(bus) = opu.output_bus() {
                b = b.output(opu.name(), &rename(bus));
            }
            if matches!(opu.kind(), OpuKind::Ram | OpuKind::Rom) {
                b = b.memory(opu.name(), opu.memory_size());
            }
            if !opu.flags().is_empty() {
                let flags: Vec<&str> = opu.flags().iter().map(|s| s.as_str()).collect();
                b = b.flags(opu.name(), &flags);
            }
        }
        b.build().map_err(MergeError::InvalidResult)
    }
}

/// Structural union of two datapaths, keyed by component name.
///
/// This is the cross-core step of the paper's in-house workflow: two
/// app-specialized cores are folded into one machine that can run both
/// applications, after which an intra-core [`MergePlan`] can trade the
/// duplicated resources back for silicon. [`MergePlan::apply`] only
/// merges components *within* one `Datapath`; `union` is what makes two
/// separate cores one `Datapath` in the first place.
///
/// Semantics, per same-named component:
///
/// - **OPU**: kinds must match. Operations are the union (in `a`'s
///   declaration order, then `b`'s extras); an operation both declare
///   takes the *minimum* latency — union hardware is at least as capable
///   as either donor. Operand inputs must be identical (port positions
///   are semantic). Output buses must agree. Memory capacity is the max,
///   flags are the union.
/// - **Register file**: capacity is the max (the union core never holds
///   both apps' live values at once — they run as separate programs),
///   write buses are the union in `a`'s order then `b`'s extras.
/// - A name that is one kind in `a` and another kind in `b` is a
///   [`MergeError::UnionConflict`].
///
/// Components present in only one donor are carried verbatim. The result
/// is re-validated through [`DatapathBuilder`].
///
/// # Errors
///
/// [`MergeError::UnionConflict`] on structural disagreement at a shared
/// name; [`MergeError::InvalidResult`] if the union fails validation.
pub fn union(a: &Datapath, b: &Datapath) -> Result<Datapath, MergeError> {
    let conflict = |name: &str, reason: &str| MergeError::UnionConflict {
        name: name.to_owned(),
        reason: reason.to_owned(),
    };
    // Cross-kind collisions: a name must mean the same kind of thing in
    // both donors.
    for rf in a.register_files() {
        if b.opu(rf.name()).is_some() || b.bus(rf.name()).is_some() {
            return Err(conflict(
                rf.name(),
                "register file in one donor, not in the other",
            ));
        }
    }
    for rf in b.register_files() {
        if a.opu(rf.name()).is_some() || a.bus(rf.name()).is_some() {
            return Err(conflict(
                rf.name(),
                "register file in one donor, not in the other",
            ));
        }
    }
    for opu in a.opus() {
        if b.bus(opu.name()).is_some() {
            return Err(conflict(opu.name(), "opu in one donor, bus in the other"));
        }
    }
    for opu in b.opus() {
        if a.bus(opu.name()).is_some() {
            return Err(conflict(opu.name(), "opu in one donor, bus in the other"));
        }
    }

    let mut bld = DatapathBuilder::new();

    // Register files: `a`'s order, then `b`'s extras.
    for rf in a.register_files() {
        let (size, buses) = match b.register_file(rf.name()) {
            Some(rb) => {
                let mut buses: Vec<&str> = rf.write_buses().iter().map(String::as_str).collect();
                for wb in rb.write_buses() {
                    if !buses.contains(&wb.as_str()) {
                        buses.push(wb);
                    }
                }
                (rf.size().max(rb.size()), buses)
            }
            None => (
                rf.size(),
                rf.write_buses().iter().map(String::as_str).collect(),
            ),
        };
        bld = bld
            .register_file(rf.name(), size)
            .write_port(rf.name(), &buses);
    }
    for rf in b.register_files() {
        if a.register_file(rf.name()).is_some() {
            continue;
        }
        let buses: Vec<&str> = rf.write_buses().iter().map(String::as_str).collect();
        bld = bld
            .register_file(rf.name(), rf.size())
            .write_port(rf.name(), &buses);
    }

    // OPUs: `a`'s order, then `b`'s extras.
    for opu in a.opus() {
        let (ops, memory, flags) = match b.opu(opu.name()) {
            Some(ob) => {
                if ob.kind() != opu.kind() {
                    return Err(conflict(opu.name(), "opu kinds differ"));
                }
                if ob.inputs() != opu.inputs() {
                    return Err(conflict(opu.name(), "operand inputs differ"));
                }
                if ob.output_bus() != opu.output_bus() {
                    return Err(conflict(opu.name(), "output buses differ"));
                }
                let mut ops: Vec<(&str, u32)> = opu.ops().collect();
                for (op, latency) in ob.ops() {
                    match ops.iter_mut().find(|(n, _)| *n == op) {
                        Some(slot) => slot.1 = slot.1.min(latency),
                        None => ops.push((op, latency)),
                    }
                }
                let mut flags: Vec<&str> = opu.flags().iter().map(String::as_str).collect();
                for fl in ob.flags() {
                    if !flags.contains(&fl.as_str()) {
                        flags.push(fl);
                    }
                }
                (ops, opu.memory_size().max(ob.memory_size()), flags)
            }
            None => (
                opu.ops().collect(),
                opu.memory_size(),
                opu.flags().iter().map(String::as_str).collect(),
            ),
        };
        bld = emit_opu(bld, opu, &ops, memory, &flags);
    }
    for opu in b.opus() {
        if a.opu(opu.name()).is_some() {
            continue;
        }
        let ops: Vec<(&str, u32)> = opu.ops().collect();
        let flags: Vec<&str> = opu.flags().iter().map(String::as_str).collect();
        bld = emit_opu(bld, opu, &ops, opu.memory_size(), &flags);
    }

    bld.build().map_err(MergeError::InvalidResult)
}

/// Replays one OPU declaration (with possibly-unioned ops/memory/flags)
/// onto a builder.
fn emit_opu(
    mut bld: DatapathBuilder,
    opu: &crate::datapath::OpuSpec,
    ops: &[(&str, u32)],
    memory: u32,
    flags: &[&str],
) -> DatapathBuilder {
    bld = bld.opu(opu.kind(), opu.name(), ops);
    let inputs: Vec<&str> = opu.inputs().iter().map(String::as_str).collect();
    bld = bld.inputs(opu.name(), &inputs);
    if let Some(bus) = opu.output_bus() {
        bld = bld.output(opu.name(), bus);
    }
    if matches!(opu.kind(), OpuKind::Ram | OpuKind::Rom) {
        bld = bld.memory(opu.name(), memory);
    }
    if !flags.is_empty() {
        bld = bld.flags(opu.name(), flags);
    }
    bld
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::OpuKind;

    /// An intermediate-style datapath: ALU and MULT each with dedicated
    /// register files and buses.
    fn intermediate() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_alu_a", 4)
            .register_file("rf_alu_b", 4)
            .register_file("rf_mult_a", 4)
            .register_file("rf_mult_b", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .opu(OpuKind::Mult, "mult", &[("mult", 1)])
            .inputs("mult", &["rf_mult_a", "rf_mult_b"])
            .output("mult", "bus_mult")
            .write_port("rf_alu_a", &["bus_alu", "bus_mult"])
            .write_port("rf_alu_b", &["bus_alu", "bus_mult"])
            .write_port("rf_mult_a", &["bus_alu", "bus_mult"])
            .write_port("rf_mult_b", &["bus_alu", "bus_mult"])
            .build()
            .unwrap()
    }

    #[test]
    fn identity_plan_preserves_structure() {
        let dp = intermediate();
        let merged = MergePlan::new().apply(&dp).unwrap();
        assert_eq!(merged.register_files().len(), 4);
        assert_eq!(merged.buses().len(), 2);
        assert_eq!(merged.opus().len(), 2);
    }

    #[test]
    fn rf_merge_sums_sizes_and_unions_buses() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_a");
        let merged = plan.apply(&dp).unwrap();
        let rf = merged.register_file("rf_a").unwrap();
        assert_eq!(rf.size(), 8);
        assert_eq!(rf.write_buses(), &["bus_alu", "bus_mult"]);
        // OPU inputs follow the merge.
        assert_eq!(merged.opu("alu").unwrap().inputs()[0], "rf_a");
        assert_eq!(merged.opu("mult").unwrap().inputs()[0], "rf_a");
    }

    #[test]
    fn bus_merge_collapses_mux_inputs() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_buses(&["bus_alu", "bus_mult"], "bus_main");
        let merged = plan.apply(&dp).unwrap();
        assert_eq!(merged.buses().len(), 1);
        let rf = merged.register_file("rf_alu_a").unwrap();
        // Two former mux inputs collapse into a single bus: mux disappears.
        assert_eq!(rf.write_buses(), &["bus_main"]);
        assert!(!rf.has_mux());
        assert_eq!(merged.drivers_of("bus_main").len(), 2);
    }

    #[test]
    fn rename_map_covers_derived_names() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_a");
        plan.merge_buses(&["bus_alu", "bus_mult"], "bus_main");
        let map = plan.rename_map(&dp).unwrap();
        assert_eq!(map.get("rf_alu_a").unwrap(), "rf_a");
        assert_eq!(map.get("wp_rf_alu_a").unwrap(), "wp_rf_a");
        assert_eq!(map.get("mux_rf_mult_a").unwrap(), "mux_rf_a");
        assert_eq!(map.get("bus_alu").unwrap(), "bus_main");
        assert!(!map.contains_key("rf_alu_b"));
    }

    #[test]
    fn unknown_member_rejected() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_ghost"], "rf_a");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::UnknownComponent("rf_ghost".into())
        );
    }

    #[test]
    fn overlapping_groups_rejected() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_a");
        plan.merge_rfs(&["rf_alu_a", "rf_alu_b"], "rf_b");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::OverlappingGroups("rf_alu_a".into())
        );
    }

    /// The intermediate fixture plus a pre-existing RF named like a
    /// popular merge target, wired as a third ALU operand so it is not
    /// dangling.
    fn with_preexisting(extra_rf: &str) -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_alu_a", 4)
            .register_file("rf_alu_b", 4)
            .register_file(extra_rf, 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1)])
            .inputs("alu", &["rf_alu_a", "rf_alu_b", extra_rf])
            .output("alu", "bus_alu")
            .write_port("rf_alu_a", &["bus_alu"])
            .write_port("rf_alu_b", &["bus_alu"])
            .write_port(extra_rf, &["bus_alu"])
            .build()
            .unwrap()
    }

    /// Headline bug: before the `TargetCollision` check, the member
    /// filter in `apply` matched the pre-existing `rf_shared` (rename is
    /// the identity on unmapped names) and silently summed its capacity
    /// into the merged file. It must be rejected instead.
    #[test]
    fn preexisting_rf_target_rejected_not_absorbed() {
        let dp = with_preexisting("rf_shared");
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_alu_b"], "rf_shared");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::TargetCollision("rf_shared".into())
        );
    }

    /// Same hazard on the bus side: renaming drivers onto a bus that
    /// already exists would silently share it.
    #[test]
    fn preexisting_bus_target_rejected_not_absorbed() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_buses(&["bus_alu"], "bus_mult");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::TargetCollision("bus_mult".into())
        );
    }

    /// Naming the target after one of the group's own members stays
    /// legal — that member is being merged, not absorbed.
    #[test]
    fn target_inside_group_is_allowed() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_mult_a"], "rf_alu_a");
        plan.merge_buses(&["bus_alu", "bus_mult"], "bus_alu");
        let merged = plan.apply(&dp).unwrap();
        assert_eq!(merged.register_file("rf_alu_a").unwrap().size(), 8);
        assert_eq!(merged.buses().len(), 1);
        assert_eq!(merged.drivers_of("bus_alu").len(), 2);
    }

    /// Two groups writing the same target would fuse silently — reject.
    #[test]
    fn duplicate_targets_across_groups_rejected() {
        let dp = intermediate();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a"], "rf_x");
        plan.merge_rfs(&["rf_mult_a"], "rf_x");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::TargetCollision("rf_x".into())
        );
    }

    /// Satellite check: an RF and a bus with the same name cannot
    /// coexist — `DatapathBuilder` keeps one global namespace — so the
    /// per-kind `claimed` maps in `rename_map` can never be handed a
    /// cross-kind duplicate from a valid datapath.
    #[test]
    fn rf_and_bus_sharing_a_name_is_unbuildable() {
        let err = DatapathBuilder::new()
            .register_file("x", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1)])
            .inputs("alu", &["x"])
            .output("alu", "x")
            .write_port("x", &["x"])
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::DuplicateName("x".into()));
    }

    /// A real RF literally named like a member's derived write-port
    /// resource would be captured by the rename map and silently
    /// renamed alongside it.
    #[test]
    fn derived_name_capture_rejected() {
        let dp = with_preexisting("wp_rf_alu_a");
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_alu_b"], "rf_t");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::TargetCollision("wp_rf_alu_a".into())
        );
    }

    /// A real RF named like the *target's* derived write port would be
    /// shadowed in the RT resource namespace.
    #[test]
    fn derived_target_name_collision_rejected() {
        let dp = with_preexisting("wp_rf_t");
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_alu_a", "rf_alu_b"], "rf_t");
        assert_eq!(
            plan.apply(&dp).unwrap_err(),
            MergeError::TargetCollision("wp_rf_t".into())
        );
    }

    fn alu_core(rf_size: u32, ops: &[(&str, u32)]) -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_alu_a", rf_size)
            .register_file("rf_alu_b", 4)
            .opu(OpuKind::Alu, "alu", ops)
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .write_port("rf_alu_a", &["bus_alu"])
            .write_port("rf_alu_b", &["bus_alu"])
            .build()
            .unwrap()
    }

    #[test]
    fn union_with_self_is_identity() {
        let dp = intermediate();
        let u = union(&dp, &dp).unwrap();
        assert_eq!(u.fingerprint(), dp.fingerprint());
    }

    #[test]
    fn union_takes_max_sizes_min_latencies_and_op_union() {
        let a = alu_core(4, &[("add", 2), ("pass", 1)]);
        let b = alu_core(8, &[("add", 1), ("sub", 3)]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.register_file("rf_alu_a").unwrap().size(), 8);
        let alu = u.opu("alu").unwrap();
        let ops: Vec<(&str, u32)> = alu.ops().collect();
        assert_eq!(ops, vec![("add", 1), ("pass", 1), ("sub", 3)]);
    }

    #[test]
    fn union_carries_singletons_verbatim() {
        let a = alu_core(4, &[("add", 1)]);
        let b = intermediate();
        let u = union(&a, &b).unwrap();
        assert_eq!(u.opus().len(), 2);
        assert_eq!(u.register_files().len(), 4);
        assert!(u.opu("mult").is_some());
        assert_eq!(u.register_file("rf_mult_a").unwrap().size(), 4);
    }

    #[test]
    fn union_rejects_kind_conflict() {
        let a = alu_core(4, &[("add", 1)]);
        let b = DatapathBuilder::new()
            .register_file("rf_alu_a", 4)
            .register_file("rf_alu_b", 4)
            .opu(OpuKind::Mult, "alu", &[("mult", 1)])
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .write_port("rf_alu_a", &["bus_alu"])
            .write_port("rf_alu_b", &["bus_alu"])
            .build()
            .unwrap();
        assert!(matches!(
            union(&a, &b).unwrap_err(),
            MergeError::UnionConflict { name, .. } if name == "alu"
        ));
    }

    #[test]
    fn union_rejects_cross_kind_name() {
        let a = alu_core(4, &[("add", 1)]);
        // `rf_alu_a` is an RF in `a` but a *bus* in `b`.
        let b = DatapathBuilder::new()
            .register_file("rf_x", 4)
            .opu(OpuKind::Alu, "other", &[("add", 1)])
            .inputs("other", &["rf_x"])
            .output("other", "rf_alu_a")
            .write_port("rf_x", &["rf_alu_a"])
            .build()
            .unwrap();
        assert!(matches!(
            union(&a, &b).unwrap_err(),
            MergeError::UnionConflict { name, .. } if name == "rf_alu_a"
        ));
    }

    #[test]
    fn merge_error_display() {
        let e = MergeError::UnknownComponent("x".into());
        assert!(e.to_string().contains("unknown component"));
        let e = MergeError::OverlappingGroups("y".into());
        assert!(e.to_string().contains("more than one"));
        let e = MergeError::TargetCollision("z".into());
        assert!(e.to_string().contains("collides"));
        let e = MergeError::UnionConflict {
            name: "alu".into(),
            reason: "opu kinds differ".into(),
        };
        assert!(e.to_string().contains("cannot union"));
    }
}
