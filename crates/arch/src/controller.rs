//! The parameterisable controller model (paper figure 4).
//!
//! The controller is pipelined through a program counter and an instruction
//! register; a stack stores return addresses for the time-loop and nested
//! for-loops; datapath flags steer conditional branches. The paper names
//! its parameters explicitly: "The program and instruction bus width, the
//! stack depth and the number of datapath flags are parameters of the
//! controller."
//!
//! The audio core of section 7 uses a *stripped* controller: "there are no
//! conditional instructions at all".

use std::fmt;

/// A controller instance: the parameter set of figure 4.
///
/// # Example
///
/// ```
/// use dspcc_arch::Controller;
///
/// let ctrl = Controller::stripped(64);
/// assert!(!ctrl.supports_conditionals());
/// assert_eq!(ctrl.program_depth(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Controller {
    program_depth: u32,
    stack_depth: u32,
    flag_count: u32,
    conditional: bool,
}

impl Controller {
    /// A full controller: conditional branching on `flag_count` datapath
    /// flags, `stack_depth` nested loops, `program_depth` instruction
    /// words.
    pub fn new(program_depth: u32, stack_depth: u32, flag_count: u32) -> Self {
        Controller {
            program_depth,
            stack_depth,
            flag_count,
            conditional: flag_count > 0,
        }
    }

    /// The stripped controller of the audio example: no conditional
    /// instructions, single-level stack for the time-loop.
    pub fn stripped(program_depth: u32) -> Self {
        Controller {
            program_depth,
            stack_depth: 1,
            flag_count: 0,
            conditional: false,
        }
    }

    /// Number of instruction words in the program memory.
    pub fn program_depth(&self) -> u32 {
        self.program_depth
    }

    /// Stack depth: 1 for the time-loop plus one level per nested for-loop.
    pub fn stack_depth(&self) -> u32 {
        self.stack_depth
    }

    /// Number of datapath flags wired into the branch logic.
    pub fn flag_count(&self) -> u32 {
        self.flag_count
    }

    /// Whether conditional branch instructions exist.
    pub fn supports_conditionals(&self) -> bool {
        self.conditional
    }

    /// Width in bits of the program-counter / branch-address field.
    pub fn pc_width(&self) -> u32 {
        width_for(self.program_depth.max(2))
    }

    /// Maximum for-loop nesting the stack supports (one level is reserved
    /// for the time-loop).
    pub fn max_for_depth(&self) -> u32 {
        self.stack_depth.saturating_sub(1)
    }

    /// Least upper bound of two controllers: deep and wide enough for
    /// programs targeting either donor. Used when two app-specialized
    /// cores are unioned into one (`dspcc_arch::merge::union`).
    pub fn merged(&self, other: &Controller) -> Controller {
        Controller::new(
            self.program_depth.max(other.program_depth),
            self.stack_depth.max(other.stack_depth),
            self.flag_count.max(other.flag_count),
        )
    }
}

/// Builder for [`Controller`], for cores that need to tune parameters
/// incrementally.
#[derive(Debug, Clone)]
pub struct ControllerBuilder {
    program_depth: u32,
    stack_depth: u32,
    flag_count: u32,
}

impl ControllerBuilder {
    /// Starts from a minimal controller of `program_depth` words.
    pub fn new(program_depth: u32) -> Self {
        ControllerBuilder {
            program_depth,
            stack_depth: 1,
            flag_count: 0,
        }
    }

    /// Sets the stack depth.
    pub fn stack_depth(mut self, depth: u32) -> Self {
        self.stack_depth = depth;
        self
    }

    /// Sets the number of datapath flags (enables conditionals when > 0).
    pub fn flags(mut self, count: u32) -> Self {
        self.flag_count = count;
        self
    }

    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if `program_depth` or `stack_depth` is zero — a core without
    /// program memory or without the time-loop return slot cannot run.
    pub fn build(self) -> Controller {
        assert!(self.program_depth > 0, "program depth must be positive");
        assert!(self.stack_depth > 0, "stack depth must be positive");
        Controller {
            program_depth: self.program_depth,
            stack_depth: self.stack_depth,
            flag_count: self.flag_count,
            conditional: self.flag_count > 0,
        }
    }
}

fn width_for(n: u32) -> u32 {
    32 - (n - 1).leading_zeros()
}

impl fmt::Display for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "controller(program={}, stack={}, flags={}, conditional={})",
            self.program_depth, self.stack_depth, self.flag_count, self.conditional
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripped_controller_has_no_conditionals() {
        let c = Controller::stripped(64);
        assert!(!c.supports_conditionals());
        assert_eq!(c.flag_count(), 0);
        assert_eq!(c.stack_depth(), 1);
        assert_eq!(c.max_for_depth(), 0);
    }

    #[test]
    fn full_controller_enables_conditionals() {
        let c = Controller::new(256, 4, 2);
        assert!(c.supports_conditionals());
        assert_eq!(c.max_for_depth(), 3);
    }

    #[test]
    fn pc_width_is_ceil_log2() {
        assert_eq!(Controller::stripped(64).pc_width(), 6);
        assert_eq!(Controller::stripped(65).pc_width(), 7);
        assert_eq!(Controller::stripped(2).pc_width(), 1);
        assert_eq!(Controller::stripped(1).pc_width(), 1);
    }

    #[test]
    fn builder_round_trip() {
        let c = ControllerBuilder::new(128).stack_depth(3).flags(1).build();
        assert_eq!(c.program_depth(), 128);
        assert_eq!(c.stack_depth(), 3);
        assert!(c.supports_conditionals());
        assert_eq!(
            c.to_string(),
            "controller(program=128, stack=3, flags=1, conditional=true)"
        );
    }

    #[test]
    fn merged_takes_least_upper_bound() {
        let a = Controller::new(64, 2, 0);
        let b = Controller::new(128, 1, 2);
        let m = a.merged(&b);
        assert_eq!(m.program_depth(), 128);
        assert_eq!(m.stack_depth(), 2);
        assert_eq!(m.flag_count(), 2);
        assert!(m.supports_conditionals());
        assert_eq!(a.merged(&a).fingerprint(), a.fingerprint());
    }

    #[test]
    #[should_panic(expected = "program depth must be positive")]
    fn zero_program_depth_panics() {
        ControllerBuilder::new(0).build();
    }

    #[test]
    #[should_panic(expected = "stack depth must be positive")]
    fn zero_stack_depth_panics() {
        ControllerBuilder::new(8).stack_depth(0).build();
    }
}
