//! Target architecture model for `dspcc` in-house DSP cores.
//!
//! The paper (section 5) defines a *class* of architectures for which code
//! generation is possible: a datapath of operation units (OPUs) with
//! distributed register files and a bus network (figure 3), plus a
//! parameterisable controller with hardware time-loop and for-loop support
//! (figure 4). A concrete core is an instantiation of this model; the audio
//! core of figure 8 is built in `dspcc::cores`.
//!
//! * [`Datapath`] / [`DatapathBuilder`] — OPUs, register files, buses,
//!   write multiplexers, IO ports, flags; validated connectivity.
//! * [`Controller`] — program counter, instruction register, stack,
//!   loop hardware; the "stripped" variant used by the audio example.
//! * [`merge`] — resource-merging transformations (register files, buses):
//!   the architecture-modification inputs of the compiler (figure 1b) that
//!   turn the intermediate Piramid/Cathedral-2 architecture into the real
//!   core at the cost of parallelism.
//!
//! # Example
//!
//! ```
//! use dspcc_arch::{DatapathBuilder, OpuKind};
//!
//! let dp = DatapathBuilder::new()
//!     .register_file("rf_alu_a", 4)
//!     .register_file("rf_alu_b", 4)
//!     .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
//!     .inputs("alu", &["rf_alu_a", "rf_alu_b"])
//!     .output("alu", "bus_alu")
//!     .write_port("rf_alu_a", &["bus_alu"])
//!     .write_port("rf_alu_b", &["bus_alu"])
//!     .build()?;
//! assert_eq!(dp.opu("alu").unwrap().latency_of("add"), Some(1));
//! # Ok::<(), dspcc_arch::ArchError>(())
//! ```

mod controller;
mod datapath;
pub mod fingerprint;
pub mod generate;
pub mod merge;

pub use controller::{Controller, ControllerBuilder};
pub use datapath::{ArchError, BusSpec, Datapath, DatapathBuilder, OpuKind, OpuSpec, RfSpec};
pub use fingerprint::Fnv64;
pub use generate::{
    ArchPlan, CoreGenerator, GenConfig, GenerateError, GeneratedArch, RfPlan, SplitMix64, UnitPlan,
};
