//! The datapath model (paper figure 3).
//!
//! A datapath is a set of *operation units* (OPUs) interconnected by a bus
//! network. Operands are fetched from register files sitting at OPU inputs;
//! results travel through a buffer onto a bus and optionally through a
//! multiplexer into a destination register file. OPUs may produce flags for
//! the controller.
//!
//! Resource-naming conventions (shared with RT generation):
//!
//! * the OPU itself — its name, e.g. `alu`;
//! * the output buffer — [`Datapath::buffer_name`], `buf_<opu>`;
//! * the bus — its name, e.g. `bus_alu` (buses may be shared after
//!   merging);
//! * the write multiplexer of a register file — [`Datapath::mux_name`],
//!   `mux_<rf>` (only present when the file is reachable from more than
//!   one bus);
//! * the write port of a register file — [`Datapath::wp_name`], `wp_<rf>`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The kind of an operation unit. The kind fixes the *simulation*
/// semantics; the supported operation names and latencies are data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpuKind {
    /// Arithmetic/logic unit: `add`, `add_clip`, `sub`, `pass`,
    /// `pass_clip`, …
    Alu,
    /// Multiplier: `mult` (Q-format).
    Mult,
    /// Data RAM with `read`/`write`; holds delay lines. The first input
    /// port carries the address, the second the write data.
    Ram,
    /// Coefficient ROM: `const` with an immediate address into the ROM
    /// image.
    Rom,
    /// Program-constant unit: `const` with the value immediate in the
    /// instruction word.
    ProgConst,
    /// Address computation unit: `addmod`, `inca`.
    Acu,
    /// Input port (off-chip → datapath): `read`.
    Input,
    /// Output port (datapath → off-chip): `write`.
    Output,
    /// Application-specific unit; semantics supplied by the application
    /// domain (treated as a black box by everything except the simulator).
    Asu,
}

impl fmt::Display for OpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpuKind::Alu => "ALU",
            OpuKind::Mult => "MULT",
            OpuKind::Ram => "RAM",
            OpuKind::Rom => "ROM",
            OpuKind::ProgConst => "PRG_C",
            OpuKind::Acu => "ACU",
            OpuKind::Input => "IN",
            OpuKind::Output => "OUT",
            OpuKind::Asu => "ASU",
        };
        f.write_str(s)
    }
}

/// Specification of one operation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpuSpec {
    name: String,
    kind: OpuKind,
    ops: BTreeMap<String, u32>,
    inputs: Vec<String>,
    output_bus: Option<String>,
    flags: Vec<String>,
    /// Number of words for `Ram`/`Rom` kinds; 0 otherwise.
    memory_size: u32,
}

impl OpuSpec {
    /// OPU name (also its scheduler resource name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit kind.
    pub fn kind(&self) -> OpuKind {
        self.kind
    }

    /// Supported operation names with latencies.
    pub fn ops(&self) -> impl Iterator<Item = (&str, u32)> {
        self.ops.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether the unit supports `op`.
    pub fn supports(&self, op: &str) -> bool {
        self.ops.contains_key(op)
    }

    /// Latency of `op` in cycles, if supported.
    pub fn latency_of(&self, op: &str) -> Option<u32> {
        self.ops.get(op).copied()
    }

    /// Register files feeding the input ports, in port order.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// The bus driven by this unit's output, if it has one (output ports
    /// drive off-chip instead).
    pub fn output_bus(&self) -> Option<&str> {
        self.output_bus.as_deref()
    }

    /// Flags produced for the controller.
    pub fn flags(&self) -> &[String] {
        &self.flags
    }

    /// Memory words for RAM/ROM kinds.
    pub fn memory_size(&self) -> u32 {
        self.memory_size
    }
}

/// Specification of one register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfSpec {
    name: String,
    size: u32,
    write_buses: Vec<String>,
}

impl RfSpec {
    /// Register file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of registers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Buses that can write into this file, in multiplexer-input order.
    pub fn write_buses(&self) -> &[String] {
        &self.write_buses
    }

    /// Whether writes go through a multiplexer (more than one source bus).
    pub fn has_mux(&self) -> bool {
        self.write_buses.len() > 1
    }
}

/// Specification of one bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusSpec {
    name: String,
}

impl BusSpec {
    /// Bus name (also its scheduler resource name).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A validated datapath.
///
/// Construct with [`DatapathBuilder`]; [`DatapathBuilder::build`] checks
/// referential integrity (every referenced register file and bus exists,
/// names are unique, RAM/ROM units have memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datapath {
    opus: Vec<OpuSpec>,
    rfs: Vec<RfSpec>,
    buses: Vec<BusSpec>,
}

/// Error from datapath validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// Two components share a name.
    DuplicateName(String),
    /// An OPU references a register file that does not exist.
    UnknownRegisterFile {
        /// The referencing OPU.
        opu: String,
        /// The missing file.
        rf: String,
    },
    /// A write port references a bus that does not exist.
    UnknownBus {
        /// The referencing register file.
        rf: String,
        /// The missing bus.
        bus: String,
    },
    /// A write port was declared for an unknown register file.
    UnknownWritePortRf(String),
    /// `inputs`/`output` was called for an OPU never declared.
    UnknownOpu(String),
    /// A RAM or ROM unit has zero memory words.
    EmptyMemory(String),
    /// A register file has zero registers.
    EmptyRegisterFile(String),
    /// An operation latency of zero was declared.
    ZeroLatency {
        /// The OPU declaring the operation.
        opu: String,
        /// The operation name.
        op: String,
    },
    /// A register file is not connected to anything.
    DanglingRegisterFile(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::DuplicateName(n) => write!(f, "duplicate component name `{n}`"),
            ArchError::UnknownRegisterFile { opu, rf } => {
                write!(f, "opu `{opu}` reads unknown register file `{rf}`")
            }
            ArchError::UnknownBus { rf, bus } => {
                write!(f, "register file `{rf}` written from unknown bus `{bus}`")
            }
            ArchError::UnknownWritePortRf(rf) => {
                write!(f, "write port declared for unknown register file `{rf}`")
            }
            ArchError::UnknownOpu(o) => write!(f, "unknown opu `{o}`"),
            ArchError::EmptyMemory(o) => write!(f, "memory unit `{o}` has zero words"),
            ArchError::EmptyRegisterFile(r) => {
                write!(f, "register file `{r}` has zero registers")
            }
            ArchError::ZeroLatency { opu, op } => {
                write!(f, "operation `{op}` on `{opu}` has zero latency")
            }
            ArchError::DanglingRegisterFile(r) => {
                write!(f, "register file `{r}` is not connected to any opu or bus")
            }
        }
    }
}

impl std::error::Error for ArchError {}

impl Datapath {
    /// All OPUs in declaration order.
    pub fn opus(&self) -> &[OpuSpec] {
        &self.opus
    }

    /// All register files in declaration order.
    pub fn register_files(&self) -> &[RfSpec] {
        &self.rfs
    }

    /// All buses in declaration order.
    pub fn buses(&self) -> &[BusSpec] {
        &self.buses
    }

    /// Looks up an OPU by name.
    pub fn opu(&self, name: &str) -> Option<&OpuSpec> {
        self.opus.iter().find(|o| o.name == name)
    }

    /// Looks up a register file by name.
    pub fn register_file(&self, name: &str) -> Option<&RfSpec> {
        self.rfs.iter().find(|r| r.name == name)
    }

    /// Looks up a bus by name.
    pub fn bus(&self, name: &str) -> Option<&BusSpec> {
        self.buses.iter().find(|b| b.name == name)
    }

    /// OPUs that support operation `op`, in declaration order.
    pub fn opus_supporting(&self, op: &str) -> Vec<&OpuSpec> {
        self.opus.iter().filter(|o| o.supports(op)).collect()
    }

    /// Register files written from `bus`.
    pub fn rfs_written_from(&self, bus: &str) -> Vec<&RfSpec> {
        self.rfs
            .iter()
            .filter(|r| r.write_buses.iter().any(|b| b == bus))
            .collect()
    }

    /// The OPUs whose output drives `bus` (several after bus merging).
    pub fn drivers_of(&self, bus: &str) -> Vec<&OpuSpec> {
        self.opus
            .iter()
            .filter(|o| o.output_bus.as_deref() == Some(bus))
            .collect()
    }

    /// Scheduler resource name of an OPU's output buffer.
    pub fn buffer_name(opu: &str) -> String {
        format!("buf_{opu}")
    }

    /// Scheduler resource name of a register file's write multiplexer.
    pub fn mux_name(rf: &str) -> String {
        format!("mux_{rf}")
    }

    /// Scheduler resource name of a register file's write port.
    pub fn wp_name(rf: &str) -> String {
        format!("wp_{rf}")
    }

    /// All datapath flag names, in OPU declaration order.
    pub fn flags(&self) -> Vec<&str> {
        self.opus
            .iter()
            .flat_map(|o| o.flags.iter().map(|s| s.as_str()))
            .collect()
    }
}

/// Builder for [`Datapath`]. Declare register files, OPUs, connections;
/// then [`DatapathBuilder::build`] validates the whole structure.
#[derive(Debug, Clone, Default)]
pub struct DatapathBuilder {
    opus: Vec<OpuSpec>,
    rfs: Vec<RfSpec>,
    pending_errors: Vec<ArchError>,
}

impl DatapathBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DatapathBuilder::default()
    }

    /// Declares a register file with `size` registers.
    pub fn register_file(mut self, name: &str, size: u32) -> Self {
        self.rfs.push(RfSpec {
            name: name.to_owned(),
            size,
            write_buses: Vec::new(),
        });
        self
    }

    /// Declares an OPU of `kind` supporting `ops` as `(name, latency)`
    /// pairs.
    pub fn opu(mut self, kind: OpuKind, name: &str, ops: &[(&str, u32)]) -> Self {
        self.opus.push(OpuSpec {
            name: name.to_owned(),
            kind,
            ops: ops.iter().map(|&(op, lat)| (op.to_owned(), lat)).collect(),
            inputs: Vec::new(),
            output_bus: None,
            flags: Vec::new(),
            memory_size: 0,
        });
        self
    }

    /// Declares the memory size of a RAM/ROM unit.
    pub fn memory(mut self, opu: &str, words: u32) -> Self {
        match self.opus.iter_mut().find(|o| o.name == opu) {
            Some(o) => o.memory_size = words,
            None => self
                .pending_errors
                .push(ArchError::UnknownOpu(opu.to_owned())),
        }
        self
    }

    /// Connects the input ports of `opu` to register files, in port order.
    pub fn inputs(mut self, opu: &str, rfs: &[&str]) -> Self {
        match self.opus.iter_mut().find(|o| o.name == opu) {
            Some(o) => o.inputs = rfs.iter().map(|s| (*s).to_owned()).collect(),
            None => self
                .pending_errors
                .push(ArchError::UnknownOpu(opu.to_owned())),
        }
        self
    }

    /// Connects the output of `opu` to a bus (created implicitly).
    pub fn output(mut self, opu: &str, bus: &str) -> Self {
        match self.opus.iter_mut().find(|o| o.name == opu) {
            Some(o) => o.output_bus = Some(bus.to_owned()),
            None => self
                .pending_errors
                .push(ArchError::UnknownOpu(opu.to_owned())),
        }
        self
    }

    /// Declares the flags produced by `opu`.
    pub fn flags(mut self, opu: &str, flags: &[&str]) -> Self {
        match self.opus.iter_mut().find(|o| o.name == opu) {
            Some(o) => o.flags = flags.iter().map(|s| (*s).to_owned()).collect(),
            None => self
                .pending_errors
                .push(ArchError::UnknownOpu(opu.to_owned())),
        }
        self
    }

    /// Declares the buses that may write into `rf`, in multiplexer-input
    /// order.
    pub fn write_port(mut self, rf: &str, buses: &[&str]) -> Self {
        match self.rfs.iter_mut().find(|r| r.name == rf) {
            Some(r) => r.write_buses = buses.iter().map(|s| (*s).to_owned()).collect(),
            None => self
                .pending_errors
                .push(ArchError::UnknownWritePortRf(rf.to_owned())),
        }
        self
    }

    /// Validates and builds the datapath.
    ///
    /// # Errors
    ///
    /// Returns the first [`ArchError`] found: duplicate names, dangling
    /// references, empty memories or register files, zero latencies,
    /// unconnected register files.
    pub fn build(self) -> Result<Datapath, ArchError> {
        if let Some(e) = self.pending_errors.into_iter().next() {
            return Err(e);
        }
        // Unique names across all component namespaces.
        let mut names = BTreeSet::new();
        let bus_names: BTreeSet<String> = self
            .opus
            .iter()
            .filter_map(|o| o.output_bus.clone())
            .collect();
        for n in self
            .opus
            .iter()
            .map(|o| o.name.clone())
            .chain(self.rfs.iter().map(|r| r.name.clone()))
            .chain(bus_names.iter().cloned())
        {
            if !names.insert(n.clone()) {
                return Err(ArchError::DuplicateName(n));
            }
        }
        for o in &self.opus {
            for (op, &lat) in &o.ops {
                if lat == 0 {
                    return Err(ArchError::ZeroLatency {
                        opu: o.name.clone(),
                        op: op.clone(),
                    });
                }
            }
            for rf in &o.inputs {
                if !self.rfs.iter().any(|r| &r.name == rf) {
                    return Err(ArchError::UnknownRegisterFile {
                        opu: o.name.clone(),
                        rf: rf.clone(),
                    });
                }
            }
            if matches!(o.kind, OpuKind::Ram | OpuKind::Rom) && o.memory_size == 0 {
                return Err(ArchError::EmptyMemory(o.name.clone()));
            }
        }
        for r in &self.rfs {
            if r.size == 0 {
                return Err(ArchError::EmptyRegisterFile(r.name.clone()));
            }
            for b in &r.write_buses {
                if !bus_names.contains(b) {
                    return Err(ArchError::UnknownBus {
                        rf: r.name.clone(),
                        bus: b.clone(),
                    });
                }
            }
            let feeds_an_opu = self.opus.iter().any(|o| o.inputs.contains(&r.name));
            if !feeds_an_opu && r.write_buses.is_empty() {
                return Err(ArchError::DanglingRegisterFile(r.name.clone()));
            }
        }
        let buses = bus_names.into_iter().map(|name| BusSpec { name }).collect();
        Ok(Datapath {
            opus: self.opus,
            rfs: self.rfs,
            buses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatapathBuilder {
        DatapathBuilder::new()
            .register_file("rf_a", 4)
            .register_file("rf_b", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_a", "rf_b"])
            .output("alu", "bus_alu")
            .write_port("rf_a", &["bus_alu"])
            .write_port("rf_b", &["bus_alu"])
    }

    #[test]
    fn tiny_datapath_builds() {
        let dp = tiny().build().unwrap();
        assert_eq!(dp.opus().len(), 1);
        assert_eq!(dp.register_files().len(), 2);
        assert_eq!(dp.buses().len(), 1);
        assert_eq!(dp.opu("alu").unwrap().kind(), OpuKind::Alu);
        assert_eq!(dp.opu("alu").unwrap().latency_of("add"), Some(1));
        assert!(dp.opu("alu").unwrap().supports("pass"));
        assert!(!dp.opu("alu").unwrap().supports("mult"));
    }

    #[test]
    fn lookup_helpers() {
        let dp = tiny().build().unwrap();
        assert!(dp.bus("bus_alu").is_some());
        assert!(dp.bus("bus_nope").is_none());
        assert_eq!(dp.opus_supporting("add").len(), 1);
        assert_eq!(dp.rfs_written_from("bus_alu").len(), 2);
        assert_eq!(dp.drivers_of("bus_alu")[0].name(), "alu");
        assert_eq!(dp.register_file("rf_a").unwrap().size(), 4);
    }

    #[test]
    fn resource_names() {
        assert_eq!(Datapath::buffer_name("alu"), "buf_alu");
        assert_eq!(Datapath::mux_name("rf_a"), "mux_rf_a");
        assert_eq!(Datapath::wp_name("rf_a"), "wp_rf_a");
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = DatapathBuilder::new()
            .register_file("x", 1)
            .opu(OpuKind::Alu, "x", &[("add", 1)])
            .inputs("x", &["x"])
            .output("x", "bus")
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::DuplicateName("x".into()));
    }

    #[test]
    fn unknown_rf_rejected() {
        let err = DatapathBuilder::new()
            .opu(OpuKind::Alu, "alu", &[("add", 1)])
            .inputs("alu", &["ghost"])
            .output("alu", "bus_alu")
            .build()
            .unwrap_err();
        assert!(matches!(err, ArchError::UnknownRegisterFile { .. }));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn unknown_bus_rejected() {
        let err = tiny()
            .write_port("rf_a", &["bus_ghost"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ArchError::UnknownBus { .. }));
    }

    #[test]
    fn unknown_opu_in_connection_rejected() {
        let err = tiny().inputs("ghost", &["rf_a"]).build().unwrap_err();
        assert_eq!(err, ArchError::UnknownOpu("ghost".into()));
    }

    #[test]
    fn ram_needs_memory() {
        let err = DatapathBuilder::new()
            .register_file("rf_addr", 2)
            .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
            .inputs("ram", &["rf_addr"])
            .output("ram", "bus_ram")
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::EmptyMemory("ram".into()));
    }

    #[test]
    fn zero_latency_rejected() {
        let err = DatapathBuilder::new()
            .register_file("rf_a", 1)
            .opu(OpuKind::Alu, "alu", &[("add", 0)])
            .inputs("alu", &["rf_a"])
            .output("alu", "bus_alu")
            .write_port("rf_a", &["bus_alu"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ArchError::ZeroLatency { .. }));
    }

    #[test]
    fn empty_register_file_rejected() {
        let err = DatapathBuilder::new()
            .register_file("rf_a", 0)
            .opu(OpuKind::Alu, "alu", &[("add", 1)])
            .inputs("alu", &["rf_a"])
            .output("alu", "bus_alu")
            .write_port("rf_a", &["bus_alu"])
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::EmptyRegisterFile("rf_a".into()));
    }

    #[test]
    fn dangling_register_file_rejected() {
        let err = tiny().register_file("rf_island", 2).build().unwrap_err();
        assert_eq!(err, ArchError::DanglingRegisterFile("rf_island".into()));
    }

    #[test]
    fn mux_presence_derived_from_write_buses() {
        let dp = DatapathBuilder::new()
            .register_file("rf_a", 2)
            .register_file("rf_m", 2)
            .opu(OpuKind::Alu, "alu", &[("add", 1)])
            .inputs("alu", &["rf_a", "rf_m"])
            .output("alu", "bus_alu")
            .opu(OpuKind::Mult, "mult", &[("mult", 2)])
            .inputs("mult", &["rf_m", "rf_a"])
            .output("mult", "bus_mult")
            .write_port("rf_a", &["bus_alu", "bus_mult"])
            .write_port("rf_m", &["bus_mult"])
            .build()
            .unwrap();
        assert!(dp.register_file("rf_a").unwrap().has_mux());
        assert!(!dp.register_file("rf_m").unwrap().has_mux());
        assert_eq!(dp.opu("mult").unwrap().latency_of("mult"), Some(2));
    }

    #[test]
    fn io_ports_and_flags() {
        let dp = DatapathBuilder::new()
            .register_file("rf_out", 2)
            .opu(OpuKind::Input, "ipb", &[("read", 1)])
            .output("ipb", "bus_ipb")
            .opu(OpuKind::Output, "opb", &[("write", 1)])
            .inputs("opb", &["rf_out"])
            .opu(OpuKind::Alu, "alu", &[("add", 1)])
            .inputs("alu", &["rf_out"])
            .output("alu", "bus_alu")
            .flags("alu", &["zero", "neg"])
            .write_port("rf_out", &["bus_ipb", "bus_alu"])
            .build()
            .unwrap();
        assert_eq!(dp.opu("opb").unwrap().output_bus(), None);
        assert_eq!(dp.flags(), vec!["zero", "neg"]);
        assert_eq!(dp.opu("ipb").unwrap().kind(), OpuKind::Input);
    }

    #[test]
    fn opu_kind_display() {
        assert_eq!(OpuKind::Alu.to_string(), "ALU");
        assert_eq!(OpuKind::ProgConst.to_string(), "PRG_C");
        assert_eq!(OpuKind::Asu.to_string(), "ASU");
    }
}
