//! The symbol table: interned resource names and usage values.
//!
//! Every stage of the figure-1b pipeline talks about resources ("acu_1",
//! "bus_1_acu_1", artificial "SX"…) and usages (`add`, `add(Opr_1,
//! Opr_2)`). The seed implementation compared and hashed those strings on
//! every conflict query, usage-classing pass, and register-allocation map
//! operation. The [`SymbolTable`] resolves each distinct name and usage
//! value to a dense integer id exactly once — at the boundary where it
//! enters the IR — so that the hot paths (RT compatibility, conflict
//! matrix construction, encoding) run on integer compares only. In
//! particular the paper's single conflict rule — "different RTs with
//! common resources can be executed in parallel when the common resources
//! have the same usage" — becomes one `UsageId` equality test.
//!
//! The table is process-global and append-only: interned strings and
//! usage values are leaked (`&'static`), so resolving an id back to its
//! name is lock-free for the caller once fetched and ids stay valid for
//! the program's lifetime. Ids are assigned in first-intern order, which
//! depends on execution order; **no output of the compiler may depend on
//! the numeric value of an id** — orderings that reach diagnostics,
//! reports, or microcode are always derived from names or from program
//! structure (see `Rt`'s `Display`, the register allocator, and the
//! encoder). The differential property test `prop_intern.rs` pins the
//! id-based pipeline bit-identical to the retained string-keyed reference
//! implementations.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use crate::resource::Usage;

/// Dense id of an interned resource name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResId(pub u32);

impl ResId {
    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an interned usage value. Two usages are equal **iff**
/// their `UsageId`s are equal — the conflict rule as one integer compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UsageId(pub u32);

impl UsageId {
    /// Interns `usage`, returning its id (the inverse of
    /// [`UsageId::get`]).
    pub fn of(usage: &Usage) -> UsageId {
        SymbolTable::global().intern_usage(usage)
    }

    /// Interns the one-argument apply `op(arg)` without allocating on the
    /// warm path — RT generation's tagged bus and write-port usages.
    pub fn of_apply1(op: &str, arg: &str) -> UsageId {
        SymbolTable::global().intern_apply1(op, arg)
    }

    /// The interned usage value.
    pub fn get(self) -> &'static Usage {
        SymbolTable::global().usage(self)
    }
}

impl fmt::Display for UsageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.get(), f)
    }
}

#[derive(Default)]
struct Inner {
    res_names: Vec<&'static str>,
    res_lookup: HashMap<&'static str, u32>,
    usages: Vec<&'static Usage>,
    usage_lookup: HashMap<&'static Usage, u32>,
    /// Pre-hashed index over single-argument `Apply` usages (the dominant
    /// shape RT generation interns: `op(v<N>)` bus tags and `write(v<N>)`
    /// write-port claims) so the warm path never allocates a `Usage` just
    /// to look it up. Key = hash of `(op, arg)`; values are candidate ids
    /// verified against the table.
    apply1: HashMap<u64, Vec<u32>>,
}

fn apply1_key(op: &str, arg: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    op.hash(&mut h);
    arg.hash(&mut h);
    h.finish()
}

/// The process-wide interner for resource names and usage values.
///
/// All construction of [`crate::Resource`]s and all
/// [`crate::Rt::add_usage`] calls go through this table, so equality on
/// the hot paths never touches a string. See the module docs for the
/// determinism contract.
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

static TABLE: OnceLock<SymbolTable> = OnceLock::new();

impl SymbolTable {
    /// The global table.
    pub fn global() -> &'static SymbolTable {
        TABLE.get_or_init(|| SymbolTable {
            inner: RwLock::new(Inner::default()),
        })
    }

    /// Interns a resource name, returning its id. Idempotent.
    pub fn intern_res(&self, name: &str) -> ResId {
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(&id) = inner.res_lookup.get(name) {
                return ResId(id);
            }
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.res_lookup.get(name) {
            return ResId(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = inner.res_names.len() as u32;
        inner.res_names.push(leaked);
        inner.res_lookup.insert(leaked, id);
        ResId(id)
    }

    /// Looks up an already-interned resource name without interning it.
    /// Queries for names that never entered the IR cannot match anything,
    /// so lookups (e.g. [`crate::Rt::usage_of`]) must not grow the table.
    pub fn lookup_res(&self, name: &str) -> Option<ResId> {
        let inner = self.inner.read().expect("symbol table poisoned");
        inner.res_lookup.get(name).map(|&id| ResId(id))
    }

    /// The name of an interned resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn res_name(&self, id: ResId) -> &'static str {
        let inner = self.inner.read().expect("symbol table poisoned");
        inner.res_names[id.index()]
    }

    /// Interns a usage value, returning its id. Idempotent.
    pub fn intern_usage(&self, usage: &Usage) -> UsageId {
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(&id) = inner.usage_lookup.get(usage) {
                return UsageId(id);
            }
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.usage_lookup.get(usage) {
            return UsageId(id);
        }
        let leaked: &'static Usage = Box::leak(Box::new(usage.clone()));
        let id = inner.usages.len() as u32;
        inner.usages.push(leaked);
        inner.usage_lookup.insert(leaked, id);
        if let Usage::Apply { op, args } = leaked {
            if let [arg] = args.as_slice() {
                inner
                    .apply1
                    .entry(apply1_key(op, arg))
                    .or_default()
                    .push(id);
            }
        }
        UsageId(id)
    }

    /// Interns `op(arg)` — the one-argument `Apply` shape RT generation
    /// emits for every bus transfer and write-port claim — without
    /// constructing a `Usage` when it is already interned.
    pub fn intern_apply1(&self, op: &str, arg: &str) -> UsageId {
        let key = apply1_key(op, arg);
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(ids) = inner.apply1.get(&key) {
                for &id in ids {
                    if let Usage::Apply { op: o, args } = inner.usages[id as usize] {
                        if o == op && args.len() == 1 && args[0] == arg {
                            return UsageId(id);
                        }
                    }
                }
            }
        }
        self.intern_usage(&Usage::apply(op, [arg]))
    }

    /// The interned usage value.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn usage(&self, id: UsageId) -> &'static Usage {
        let inner = self.inner.read().expect("symbol table poisoned");
        inner.usages[id.0 as usize]
    }

    /// Number of distinct resource names interned so far.
    pub fn res_count(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .res_names
            .len()
    }

    /// Number of distinct usage values interned so far.
    pub fn usage_count(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .usages
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn res_interning_is_idempotent() {
        let t = SymbolTable::global();
        let a = t.intern_res("sym_test_res_a");
        let b = t.intern_res("sym_test_res_a");
        assert_eq!(a, b);
        assert_eq!(t.res_name(a), "sym_test_res_a");
        assert_eq!(t.lookup_res("sym_test_res_a"), Some(a));
    }

    #[test]
    fn lookup_does_not_intern() {
        let t = SymbolTable::global();
        let before = t.res_count();
        assert_eq!(t.lookup_res("sym_test_never_interned_xyzzy"), None);
        assert_eq!(t.res_count(), before);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let t = SymbolTable::global();
        let a = t.intern_res("sym_test_res_b");
        let b = t.intern_res("sym_test_res_c");
        assert_ne!(a, b);
    }

    #[test]
    fn usage_interning_models_the_conflict_rule() {
        let add1 = UsageId::of(&Usage::token("add"));
        let add2 = UsageId::of(&Usage::token("add"));
        let sub = UsageId::of(&Usage::token("sub"));
        assert_eq!(add1, add2);
        assert_ne!(add1, sub);
        // Token vs Apply with the same op are different usages.
        let apply = UsageId::of(&Usage::apply("add", Vec::<String>::new()));
        assert_ne!(add1, apply);
        assert_eq!(add1.get(), &Usage::token("add"));
    }

    #[test]
    fn usage_id_display_resolves_through_table() {
        let id = UsageId::of(&Usage::apply("add", ["Opr_1", "Opr_2"]));
        assert_eq!(id.to_string(), "add(Opr_1, Opr_2)");
    }
}
