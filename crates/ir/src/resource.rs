//! Resources and usage specifications.
//!
//! A *resource* is anything an RT can occupy for a cycle: an OPU, a buffer,
//! a bus, a multiplexer, a register-file write port — or an *artificial
//! resource* installed by instruction-set modelling (a clique of the
//! conflict graph, paper section 6.3). Resources are identified by name;
//! the architecture model decides which names exist. Names are resolved to
//! dense integer ids through the [`crate::SymbolTable`] the moment a
//! `Resource` is constructed, so everything downstream compares integers.

use std::cmp::Ordering;
use std::fmt;

use crate::symbol::{ResId, SymbolTable};

/// The name of a datapath (or artificial) resource.
///
/// A `Copy` handle to an interned name (see [`crate::SymbolTable`]):
/// equality and hashing are integer operations, while ordering and
/// display resolve the name, so `Resource`-keyed ordered maps and all
/// diagnostics behave exactly as if the string were stored inline.
///
/// # Example
///
/// ```
/// use dspcc_ir::Resource;
///
/// let r = Resource::from("acu_1");
/// assert_eq!(r.name(), "acu_1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resource(ResId);

impl Resource {
    /// Creates a resource with the given name, interning it.
    pub fn new(name: &str) -> Self {
        Resource(SymbolTable::global().intern_res(name))
    }

    /// The resource with the given interned id.
    pub fn from_id(id: ResId) -> Self {
        Resource(id)
    }

    /// Looks up an already-interned name without interning it; names that
    /// never entered the IR return `None`.
    pub fn lookup(name: &str) -> Option<Self> {
        SymbolTable::global().lookup_res(name).map(Resource)
    }

    /// The resource name.
    pub fn name(&self) -> &'static str {
        SymbolTable::global().res_name(self.0)
    }

    /// The interned id.
    pub fn id(&self) -> ResId {
        self.0
    }
}

impl From<&str> for Resource {
    fn from(name: &str) -> Self {
        Resource::new(name)
    }
}

impl From<String> for Resource {
    fn from(name: String) -> Self {
        Resource::new(&name)
    }
}

// NOTE: no `Borrow<str>` impl on purpose. `Hash` is over the interned id
// (that is the point of interning), so a string-keyed probe into a
// `HashMap<Resource, _>` would hash differently than the stored key —
// the std `Borrow` contract requires Eq/Ord/Hash to agree between the
// owned and borrowed forms. Look keys up with `Resource::lookup` instead.
impl AsRef<str> for Resource {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

// Ordering is by *name*, not by id: interning order is an execution
// artifact (see the symbol-table module docs), while name order is what
// reports, `Display` output, and `Resource`-keyed ordered maps rely on.
impl PartialOrd for Resource {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Resource {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.name().cmp(other.name())
        }
    }
}

impl fmt::Debug for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Resource({:?})", self.name())
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a resource is occupied during the cycle an RT executes.
///
/// The paper places the resource on the left of `=` and the usage on the
/// right (figure 2):
///
/// ```text
/// acu_1       = add,                    // Token
/// bus_1_acu_1 = add(Opr_1, Opr_2),      // Apply
/// ```
///
/// Two RTs may share a resource in one instruction **iff their usages are
/// equal** — the single rule from which all scheduling conflicts follow.
/// Inside RTs, usages are stored interned (see [`crate::UsageId`]), so
/// that rule costs one integer compare; this enum is the descriptor form
/// used at the boundaries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Usage {
    /// A bare mode name, e.g. `add`, `read`, `write`, or an RT-class name
    /// on an artificial resource.
    Token(String),
    /// An operation applied to named arguments, e.g. `add(Opr_1, Opr_2)` on
    /// a bus (the arguments make usages of different data distinct, so two
    /// different values can never share a bus) or `pass(0)` on a
    /// multiplexer input.
    Apply {
        /// Operation name.
        op: String,
        /// Argument names (operand tags, register names, mux input
        /// indices…).
        args: Vec<String>,
    },
}

impl Usage {
    /// Creates a bare-token usage.
    pub fn token(name: &str) -> Self {
        Usage::Token(name.to_owned())
    }

    /// Creates an applied usage `op(args…)`.
    pub fn apply<I, S>(op: &str, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Usage::Apply {
            op: op.to_owned(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// The operation or token name.
    pub fn op(&self) -> &str {
        match self {
            Usage::Token(t) => t,
            Usage::Apply { op, .. } => op,
        }
    }
}

impl fmt::Display for Usage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Usage::Token(t) => f.write_str(t),
            Usage::Apply { op, args } => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    f.write_str(a)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn resource_name_round_trip() {
        let r = Resource::new("bus_1_acu_1");
        assert_eq!(r.name(), "bus_1_acu_1");
        assert_eq!(r.to_string(), "bus_1_acu_1");
        assert_eq!(Resource::from("x"), Resource::from(String::from("x")));
    }

    #[test]
    fn resource_is_cheap_to_clone_and_ordered() {
        let a = Resource::new("a");
        let b = Resource::new("b");
        assert!(a < b);
        assert_eq!(a.clone(), a);
    }

    #[test]
    fn resource_orders_by_name_not_interning_order() {
        // Intern in reverse-alphabetical order; comparisons still follow
        // the names.
        let z = Resource::new("res_ord_z");
        let a = Resource::new("res_ord_a");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn resource_keyed_maps_look_up_by_interned_handle() {
        let mut m: BTreeMap<Resource, u32> = BTreeMap::new();
        m.insert(Resource::new("alu"), 1);
        assert_eq!(m.get(&Resource::new("alu")), Some(&1));
        let lookup = Resource::lookup("alu").expect("interned above");
        assert_eq!(m.get(&lookup), Some(&1));
    }

    #[test]
    fn resource_lookup_finds_only_interned_names() {
        let r = Resource::new("res_lookup_known");
        assert_eq!(Resource::lookup("res_lookup_known"), Some(r));
        assert_eq!(Resource::lookup("res_lookup_unknown_xyzzy"), None);
        assert_eq!(Resource::from_id(r.id()), r);
    }

    #[test]
    fn usage_equality_drives_compatibility() {
        assert_eq!(Usage::token("add"), Usage::token("add"));
        assert_ne!(Usage::token("add"), Usage::token("sub"));
        assert_ne!(
            Usage::apply("add", ["a", "b"]),
            Usage::apply("add", ["a", "c"])
        );
        assert_ne!(
            Usage::token("add"),
            Usage::apply("add", Vec::<String>::new())
        );
    }

    #[test]
    fn usage_display_matches_paper_notation() {
        assert_eq!(Usage::token("write").to_string(), "write");
        assert_eq!(
            Usage::apply("add", ["Opr_1", "Opr_2"]).to_string(),
            "add(Opr_1, Opr_2)"
        );
        assert_eq!(Usage::apply("pass", ["0"]).to_string(), "pass(0)");
    }

    #[test]
    fn usage_op_accessor() {
        assert_eq!(Usage::token("read").op(), "read");
        assert_eq!(Usage::apply("mult", ["x"]).op(), "mult");
    }
}
