//! The register-transfer (RT) intermediate representation of `dspcc`.
//!
//! RTs are the central data structure of the paper (section 3, figure 2): a
//! register transfer describes one *path* through the datapath —
//!
//! > "RTs start with one or more operands originating from register files as
//! > input for an operation executed on an operation unit (OPU) which is
//! > possibly pipelined. The result is transferred through a buffer onto a
//! > bus and optionally through a multiplexer into a destination register."
//!
//! Every RT carries a *usage specification* for each resource it activates.
//! The compatibility rule that drives the entire compiler is
//!
//! > "Different RTs with common resources can be executed in parallel when
//! > the common resources have the same usage."
//!
//! Instruction-set restrictions are later modelled by *adding* artificial
//! resources with class-valued usages to RTs (paper section 6.3), which is
//! why [`Rt::add_usage`] is part of the public API: the RT-modification step
//! of the compiler (figure 1b) literally rewrites these structures.
//!
//! # Example: the RT of figure 2
//!
//! ```
//! use dspcc_ir::{Rt, RegRef, Usage};
//!
//! let mut rt = Rt::new("add_acu");
//! rt.add_dest(RegRef::new("ram_1", 2));
//! rt.add_operand(RegRef::new("acu_1", 1));
//! rt.add_operand(RegRef::new("acu_1", 2));
//! rt.add_usage("acu_1", Usage::token("add"));
//! rt.add_usage("buf_1_acu_1", Usage::token("write"));
//! rt.add_usage("bus_1_acu_1", Usage::apply("add", ["Opr_1", "Opr_2"]));
//! rt.add_usage("mux_2_ram_1", Usage::apply("pass", ["0", "1"]));
//!
//! // An RT with the same usages on shared resources is compatible.
//! assert!(rt.compatible_with(&rt.clone()));
//! ```

mod program;
mod resource;
mod rt;
mod symbol;

pub use program::{Program, Value, ValueId};
pub use resource::{Resource, Usage};
pub use rt::{RegRef, Rt, RtId};
pub use symbol::{ResId, SymbolTable, UsageId};
