//! The register transfer itself.

use std::fmt;

use crate::program::ValueId;
use crate::resource::{Resource, Usage};
use crate::symbol::UsageId;

/// Identifier of an RT inside a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RtId(pub u32);

impl fmt::Display for RtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rt{}", self.0)
    }
}

/// A reference to one register of a register file: `reg_<index>_<rf>` in
/// the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegRef {
    rf: Resource,
    index: u32,
}

impl RegRef {
    /// Register `index` of register file `rf`.
    pub fn new(rf: impl Into<Resource>, index: u32) -> Self {
        RegRef {
            rf: rf.into(),
            index,
        }
    }

    /// The register file this register belongs to.
    pub fn rf(&self) -> &Resource {
        &self.rf
    }

    /// Index within the register file.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// This register with a different index (same file) — how register
    /// allocation rewrites virtual references in place.
    pub fn with_index(&self, index: u32) -> RegRef {
        RegRef { rf: self.rf, index }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg_{}_{}", self.index, self.rf)
    }
}

/// One register transfer: operands → OPU → buffer/bus/mux → destination,
/// with a usage specification per activated resource (paper figure 2).
///
/// RTs are created by RT generation, then *modified* (resources renamed by
/// merging, artificial resources added by ISA modelling) before scheduling —
/// the mutating methods mirror that pipeline stage.
///
/// Usages are stored as a vector of `(Resource, UsageId)` pairs kept
/// sorted by resource id: lookups are binary searches, compatibility
/// checks are linear merge-walks of integer ids, and no string is touched
/// after construction. Name-ordered views (Display, reports) sort on
/// demand — see [`Rt::usages_by_name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rt {
    name: String,
    dests: Vec<RegRef>,
    operands: Vec<RegRef>,
    /// Sorted by `Resource::id()`.
    usage: Vec<(Resource, UsageId)>,
    defs: Vec<ValueId>,
    uses: Vec<ValueId>,
    latency: u32,
}

impl Rt {
    /// Creates an RT with the given diagnostic name, no resources, and
    /// latency 1 (result available in the next cycle).
    pub fn new(name: impl Into<String>) -> Self {
        Rt {
            name: name.into(),
            dests: Vec::new(),
            operands: Vec::new(),
            usage: Vec::new(),
            defs: Vec::new(),
            uses: Vec::new(),
            latency: 1,
        }
    }

    /// Diagnostic name (e.g. the source operation this RT implements).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Destination registers written by this RT.
    pub fn dests(&self) -> &[RegRef] {
        &self.dests
    }

    /// Operand registers read by this RT.
    pub fn operands(&self) -> &[RegRef] {
        &self.operands
    }

    /// Values defined (produced) by this RT, for dependence analysis.
    pub fn defs(&self) -> &[ValueId] {
        &self.defs
    }

    /// Values used (consumed) by this RT, for dependence analysis.
    pub fn uses(&self) -> &[ValueId] {
        &self.uses
    }

    /// Pipeline latency in cycles: a consumer of a defined value can issue
    /// `latency` cycles after this RT issues.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Sets the pipeline latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero — chained RTs in one cycle are not part
    /// of the architecture model (every OPU result passes through a buffer,
    /// figure 2).
    pub fn set_latency(&mut self, latency: u32) {
        assert!(latency >= 1, "RT latency must be at least 1 cycle");
        self.latency = latency;
    }

    /// Appends a destination register.
    pub fn add_dest(&mut self, dest: RegRef) {
        self.dests.push(dest);
    }

    /// Appends an operand register.
    pub fn add_operand(&mut self, opr: RegRef) {
        self.operands.push(opr);
    }

    /// Records that this RT defines `value`.
    pub fn add_def(&mut self, value: ValueId) {
        self.defs.push(value);
    }

    /// Records that this RT uses `value`.
    pub fn add_use(&mut self, value: ValueId) {
        self.uses.push(value);
    }

    /// Rewrites every destination and operand register reference through
    /// `remap` — post-schedule register allocation mapping virtual to
    /// physical indices, in place and without rebuilding the RT.
    pub fn remap_registers(&mut self, mut remap: impl FnMut(&RegRef) -> RegRef) {
        for reg in self.dests.iter_mut().chain(self.operands.iter_mut()) {
            *reg = remap(reg);
        }
    }

    fn usage_idx(&self, res: Resource) -> Result<usize, usize> {
        self.usage.binary_search_by_key(&res.id(), |(r, _)| r.id())
    }

    /// Adds (or overwrites) the usage of `resource`.
    ///
    /// This is both how RT generation attaches datapath resources and how
    /// RT modification installs artificial instruction-set resources.
    pub fn add_usage(&mut self, resource: impl Into<Resource>, usage: Usage) {
        self.add_usage_id(resource.into(), UsageId::of(&usage));
    }

    /// As [`Rt::add_usage`], with both symbols already interned — the
    /// allocation-free path RT generation uses.
    pub fn add_usage_id(&mut self, resource: Resource, usage: UsageId) {
        match self.usage_idx(resource) {
            Ok(i) => self.usage[i].1 = usage,
            Err(i) => self.usage.insert(i, (resource, usage)),
        }
    }

    /// Removes the usage of `resource`, returning it if present.
    pub fn remove_usage(&mut self, resource: &str) -> Option<Usage> {
        let res = Resource::lookup(resource)?;
        match self.usage_idx(res) {
            Ok(i) => Some(self.usage.remove(i).1.get().clone()),
            Err(_) => None,
        }
    }

    /// The usage of `resource` by this RT, if any.
    pub fn usage_of(&self, resource: &str) -> Option<&'static Usage> {
        let res = Resource::lookup(resource)?;
        self.usage_id_of(res).map(UsageId::get)
    }

    /// The interned usage id of `resource` by this RT, if any — the
    /// string-free lookup used by classification and encoding.
    pub fn usage_id_of(&self, resource: Resource) -> Option<UsageId> {
        self.usage_idx(resource).ok().map(|i| self.usage[i].1)
    }

    /// The raw `(resource, usage id)` pairs, sorted by resource id — the
    /// conflict matrix and the bounds run directly on this slice.
    pub fn usage_ids(&self) -> &[(Resource, UsageId)] {
        &self.usage
    }

    /// Iterates over `(resource, usage)` pairs in resource-**id** order
    /// (an execution artifact — see the symbol-table docs). Use
    /// [`Rt::usages_by_name`] where the order reaches output.
    pub fn usages(&self) -> impl Iterator<Item = (&Resource, &'static Usage)> {
        self.usage.iter().map(|(r, u)| (r, u.get()))
    }

    /// The `(resource, usage)` pairs sorted by resource name — the
    /// deterministic, paper-notation order used by `Display` and reports.
    pub fn usages_by_name(&self) -> Vec<(Resource, &'static Usage)> {
        let mut pairs: Vec<(Resource, &'static Usage)> =
            self.usage.iter().map(|&(r, u)| (r, u.get())).collect();
        pairs.sort_by_key(|&(r, _)| r.name());
        pairs
    }

    /// Number of resources this RT occupies.
    pub fn resource_count(&self) -> usize {
        self.usage.len()
    }

    /// Renames every resource through `rename`, merging usages.
    ///
    /// This implements the resource-merging half of RT modification
    /// (register files and buses of the intermediate architecture are
    /// merged into the core's real resources, paper section 4 step 2).
    ///
    /// # Errors
    ///
    /// If two resources of this RT map to the same new name with *different*
    /// usages the RT would conflict with itself; the offending name is
    /// returned.
    pub fn rename_resources(
        &mut self,
        mut rename: impl FnMut(&Resource) -> Resource,
    ) -> Result<(), Resource> {
        let mut renamed: Vec<(Resource, UsageId)> = Vec::with_capacity(self.usage.len());
        for &(r, u) in &self.usage {
            let new = rename(&r);
            match renamed.binary_search_by_key(&new.id(), |(r, _)| r.id()) {
                Ok(i) => {
                    if renamed[i].1 != u {
                        return Err(new);
                    }
                }
                Err(i) => renamed.insert(i, (new, u)),
            }
        }
        self.usage = renamed;
        // Register references move with their register file.
        for reg in self.dests.iter_mut().chain(self.operands.iter_mut()) {
            reg.rf = rename(&reg.rf);
        }
        Ok(())
    }

    /// Whether this RT and `other` may execute in the same instruction:
    /// every resource they share must have equal usage.
    pub fn compatible_with(&self, other: &Rt) -> bool {
        self.conflict_with(other).is_none()
    }

    /// If the RTs conflict, returns a shared resource with differing
    /// usages, for diagnostics.
    pub fn conflict_with<'a>(
        &'a self,
        other: &'a Rt,
    ) -> Option<(&'a Resource, &'static Usage, &'static Usage)> {
        // Both usage vectors are sorted by resource id: one merge-walk of
        // integer compares answers the paper's conflict rule.
        let (a, b) = (&self.usage, &other.usage);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (ra, ua) = a[i];
            let (rb, ub) = b[j];
            match ra.id().cmp(&rb.id()) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if ua != ub {
                        return Some((&a[i].0, ua.get(), ub.get()));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        None
    }
}

impl fmt::Display for Rt {
    /// Formats in the paper's figure-2 notation (resources in name order).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dests.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "Dest_{}:{}", i + 1, d)?;
        }
        if self.dests.is_empty() {
            write!(f, "(no dest)")?;
        }
        write!(f, " <- ")?;
        for (i, o) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "Opr_{}:{}", i + 1, o)?;
        }
        if self.operands.is_empty() {
            write!(f, "(no operands)")?;
        }
        writeln!(f)?;
        let pairs = self.usages_by_name();
        let width = pairs.iter().map(|(r, _)| r.name().len()).max().unwrap_or(0);
        for (i, (r, u)) in pairs.iter().enumerate() {
            let lead = if i == 0 { '\\' } else { ' ' };
            let sep = if i + 1 == pairs.len() { ';' } else { ',' };
            writeln!(f, "{lead} {:width$} = {u}{sep}", r.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2_rt() -> Rt {
        let mut rt = Rt::new("add");
        rt.add_dest(RegRef::new("ram_1", 2));
        rt.add_operand(RegRef::new("acu_1", 1));
        rt.add_operand(RegRef::new("acu_1", 2));
        rt.add_usage("acu_1", Usage::token("add"));
        rt.add_usage("buf_1_acu_1", Usage::token("write"));
        rt.add_usage("bus_1_acu_1", Usage::apply("add", ["Opr_1", "Opr_2"]));
        rt.add_usage("mux_2_ram_1", Usage::apply("pass", ["0", "1"]));
        rt
    }

    #[test]
    fn reg_ref_display_matches_paper() {
        assert_eq!(RegRef::new("ram_1", 2).to_string(), "reg_2_ram_1");
        assert_eq!(RegRef::new("acu_1", 1).rf().name(), "acu_1");
        assert_eq!(RegRef::new("acu_1", 1).index(), 1);
        assert_eq!(RegRef::new("acu_1", 1).with_index(3).index(), 3);
    }

    #[test]
    fn identical_rts_are_compatible() {
        // Same usage on all shared resources ⇒ parallel execution allowed
        // (the paper's sharing rule).
        let rt = figure2_rt();
        assert!(rt.compatible_with(&rt.clone()));
        assert!(rt.conflict_with(&rt.clone()).is_none());
    }

    #[test]
    fn different_op_on_same_opu_conflicts() {
        let a = figure2_rt();
        let mut b = figure2_rt();
        b.add_usage("acu_1", Usage::token("addmod"));
        let (r, ua, ub) = a.conflict_with(&b).expect("must conflict");
        assert_eq!(r.name(), "acu_1");
        assert_eq!(ua, &Usage::token("add"));
        assert_eq!(ub, &Usage::token("addmod"));
    }

    #[test]
    fn conflict_orientation_is_self_then_other() {
        let a = figure2_rt();
        let mut b = Rt::new("small");
        b.add_usage("acu_1", Usage::token("inca"));
        // b has fewer resources; orientation must still be (a-usage, b-usage).
        let (_, ua, ub) = a.conflict_with(&b).unwrap();
        assert_eq!(ua, &Usage::token("add"));
        assert_eq!(ub, &Usage::token("inca"));
    }

    #[test]
    fn disjoint_resources_are_compatible() {
        let a = figure2_rt();
        let mut b = Rt::new("mult");
        b.add_usage("mult_1", Usage::token("mult"));
        b.add_usage("bus_1_mult_1", Usage::apply("mult", ["Opr_1", "Opr_2"]));
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn different_bus_data_conflicts() {
        // Two adds with different operands: same OPU usage but different
        // bus usage — cannot share the bus.
        let a = figure2_rt();
        let mut b = figure2_rt();
        b.add_usage("bus_1_acu_1", Usage::apply("add", ["Opr_1", "Opr_3"]));
        let (r, _, _) = a.conflict_with(&b).unwrap();
        assert_eq!(r.name(), "bus_1_acu_1");
    }

    #[test]
    fn artificial_resource_forbids_pairing() {
        // Section 6.3: SX = S on one RT and SX = X on the other.
        let mut a = Rt::new("rt1");
        a.add_usage("SX", Usage::token("S"));
        let mut b = Rt::new("rt3");
        b.add_usage("SX", Usage::token("X"));
        assert!(!a.compatible_with(&b));
        // Two RTs of the same class stay compatible through the artificial
        // resource.
        let mut c = Rt::new("rt1b");
        c.add_usage("SX", Usage::token("S"));
        assert!(a.compatible_with(&c));
    }

    #[test]
    fn rename_resources_merges() {
        let mut rt = figure2_rt();
        rt.rename_resources(|r| {
            if r.name() == "bus_1_acu_1" {
                Resource::new("bus_merged")
            } else {
                *r
            }
        })
        .unwrap();
        assert!(rt.usage_of("bus_1_acu_1").is_none());
        assert_eq!(
            rt.usage_of("bus_merged"),
            Some(&Usage::apply("add", ["Opr_1", "Opr_2"]))
        );
    }

    #[test]
    fn rename_detects_self_conflict() {
        let mut rt = figure2_rt();
        // Merging the OPU and the buffer maps different usages together.
        let result = rt.rename_resources(|_| Resource::new("everything"));
        assert_eq!(result, Err(Resource::new("everything")));
    }

    #[test]
    fn rename_updates_register_references() {
        let mut rt = figure2_rt();
        rt.rename_resources(|r| {
            if r.name() == "ram_1" {
                Resource::new("ram_merged")
            } else {
                *r
            }
        })
        .unwrap();
        assert_eq!(rt.dests()[0].rf().name(), "ram_merged");
    }

    #[test]
    fn display_matches_figure_2_shape() {
        let rt = figure2_rt();
        let text = rt.to_string();
        assert!(text.starts_with("Dest_1:reg_2_ram_1 <- Opr_1:reg_1_acu_1, Opr_2:reg_2_acu_1"));
        assert!(text.contains("\\ acu_1"));
        assert!(text.contains("= add,"));
        assert!(text.contains("bus_1_acu_1 = add(Opr_1, Opr_2),"));
        assert!(text.trim_end().ends_with(';'));
    }

    #[test]
    fn display_orders_resources_by_name() {
        // Interning order is reversed relative to name order on purpose.
        let mut rt = Rt::new("ordered");
        rt.add_usage("zz_last", Usage::token("z"));
        rt.add_usage("aa_first", Usage::token("a"));
        let text = rt.to_string();
        let first = text.find("aa_first").unwrap();
        let last = text.find("zz_last").unwrap();
        assert!(first < last, "{text}");
    }

    #[test]
    fn remove_usage_round_trip() {
        let mut rt = figure2_rt();
        let u = rt.remove_usage("acu_1");
        assert_eq!(u, Some(Usage::token("add")));
        assert_eq!(rt.remove_usage("acu_1"), None);
        assert_eq!(rt.resource_count(), 3);
    }

    #[test]
    fn usage_id_lookup_matches_string_lookup() {
        let rt = figure2_rt();
        let res = Resource::new("acu_1");
        assert_eq!(rt.usage_id_of(res).map(|u| u.get()), rt.usage_of("acu_1"));
        assert_eq!(rt.usage_id_of(Resource::new("nope_res")), None);
        assert_eq!(rt.usage_ids().len(), rt.resource_count());
        assert!(rt.usage_ids().windows(2).all(|w| w[0].0.id() < w[1].0.id()));
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_latency_rejected() {
        let mut rt = Rt::new("x");
        rt.set_latency(0);
    }

    #[test]
    fn defs_and_uses_recorded() {
        let mut rt = Rt::new("x");
        rt.add_def(ValueId(3));
        rt.add_use(ValueId(1));
        rt.add_use(ValueId(2));
        assert_eq!(rt.defs(), &[ValueId(3)]);
        assert_eq!(rt.uses(), &[ValueId(1), ValueId(2)]);
    }

    #[test]
    fn remap_registers_rewrites_in_place() {
        let mut rt = figure2_rt();
        rt.remap_registers(|r| r.with_index(r.index() + 10));
        assert_eq!(rt.dests()[0].index(), 12);
        assert_eq!(rt.operands()[0].index(), 11);
        assert_eq!(rt.operands()[1].index(), 12);
    }
}
