//! The register transfer itself.

use std::collections::BTreeMap;
use std::fmt;

use crate::program::ValueId;
use crate::resource::{Resource, Usage};

/// Identifier of an RT inside a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RtId(pub u32);

impl fmt::Display for RtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rt{}", self.0)
    }
}

/// A reference to one register of a register file: `reg_<index>_<rf>` in
/// the paper's notation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegRef {
    rf: Resource,
    index: u32,
}

impl RegRef {
    /// Register `index` of register file `rf`.
    pub fn new(rf: impl Into<Resource>, index: u32) -> Self {
        RegRef {
            rf: rf.into(),
            index,
        }
    }

    /// The register file this register belongs to.
    pub fn rf(&self) -> &Resource {
        &self.rf
    }

    /// Index within the register file.
    pub fn index(&self) -> u32 {
        self.index
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg_{}_{}", self.index, self.rf)
    }
}

/// One register transfer: operands → OPU → buffer/bus/mux → destination,
/// with a usage specification per activated resource (paper figure 2).
///
/// RTs are created by RT generation, then *modified* (resources renamed by
/// merging, artificial resources added by ISA modelling) before scheduling —
/// the mutating methods mirror that pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rt {
    name: String,
    dests: Vec<RegRef>,
    operands: Vec<RegRef>,
    usage: BTreeMap<Resource, Usage>,
    defs: Vec<ValueId>,
    uses: Vec<ValueId>,
    latency: u32,
}

impl Rt {
    /// Creates an RT with the given diagnostic name, no resources, and
    /// latency 1 (result available in the next cycle).
    pub fn new(name: &str) -> Self {
        Rt {
            name: name.to_owned(),
            dests: Vec::new(),
            operands: Vec::new(),
            usage: BTreeMap::new(),
            defs: Vec::new(),
            uses: Vec::new(),
            latency: 1,
        }
    }

    /// Diagnostic name (e.g. the source operation this RT implements).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Destination registers written by this RT.
    pub fn dests(&self) -> &[RegRef] {
        &self.dests
    }

    /// Operand registers read by this RT.
    pub fn operands(&self) -> &[RegRef] {
        &self.operands
    }

    /// Values defined (produced) by this RT, for dependence analysis.
    pub fn defs(&self) -> &[ValueId] {
        &self.defs
    }

    /// Values used (consumed) by this RT, for dependence analysis.
    pub fn uses(&self) -> &[ValueId] {
        &self.uses
    }

    /// Pipeline latency in cycles: a consumer of a defined value can issue
    /// `latency` cycles after this RT issues.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Sets the pipeline latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero — chained RTs in one cycle are not part
    /// of the architecture model (every OPU result passes through a buffer,
    /// figure 2).
    pub fn set_latency(&mut self, latency: u32) {
        assert!(latency >= 1, "RT latency must be at least 1 cycle");
        self.latency = latency;
    }

    /// Appends a destination register.
    pub fn add_dest(&mut self, dest: RegRef) {
        self.dests.push(dest);
    }

    /// Appends an operand register.
    pub fn add_operand(&mut self, opr: RegRef) {
        self.operands.push(opr);
    }

    /// Records that this RT defines `value`.
    pub fn add_def(&mut self, value: ValueId) {
        self.defs.push(value);
    }

    /// Records that this RT uses `value`.
    pub fn add_use(&mut self, value: ValueId) {
        self.uses.push(value);
    }

    /// Adds (or overwrites) the usage of `resource`.
    ///
    /// This is both how RT generation attaches datapath resources and how
    /// RT modification installs artificial instruction-set resources.
    pub fn add_usage(&mut self, resource: impl Into<Resource>, usage: Usage) {
        self.usage.insert(resource.into(), usage);
    }

    /// Removes the usage of `resource`, returning it if present.
    pub fn remove_usage(&mut self, resource: &str) -> Option<Usage> {
        self.usage.remove(resource)
    }

    /// The usage of `resource` by this RT, if any.
    pub fn usage_of(&self, resource: &str) -> Option<&Usage> {
        self.usage.get(resource)
    }

    /// Iterates over `(resource, usage)` pairs in resource-name order.
    pub fn usages(&self) -> impl Iterator<Item = (&Resource, &Usage)> {
        self.usage.iter()
    }

    /// Number of resources this RT occupies.
    pub fn resource_count(&self) -> usize {
        self.usage.len()
    }

    /// Renames every resource through `rename`, merging usages.
    ///
    /// This implements the resource-merging half of RT modification
    /// (register files and buses of the intermediate architecture are
    /// merged into the core's real resources, paper section 4 step 2).
    ///
    /// # Errors
    ///
    /// If two resources of this RT map to the same new name with *different*
    /// usages the RT would conflict with itself; the offending name is
    /// returned.
    pub fn rename_resources(
        &mut self,
        mut rename: impl FnMut(&Resource) -> Resource,
    ) -> Result<(), Resource> {
        let mut renamed: BTreeMap<Resource, Usage> = BTreeMap::new();
        for (r, u) in std::mem::take(&mut self.usage) {
            let new = rename(&r);
            if let Some(existing) = renamed.get(&new) {
                if *existing != u {
                    return Err(new);
                }
            } else {
                renamed.insert(new, u);
            }
        }
        self.usage = renamed;
        // Register references move with their register file.
        for reg in self.dests.iter_mut().chain(self.operands.iter_mut()) {
            reg.rf = rename(&reg.rf);
        }
        Ok(())
    }

    /// Whether this RT and `other` may execute in the same instruction:
    /// every resource they share must have equal usage.
    pub fn compatible_with(&self, other: &Rt) -> bool {
        self.conflict_with(other).is_none()
    }

    /// If the RTs conflict, returns the first shared resource with
    /// differing usages, for diagnostics.
    pub fn conflict_with<'a>(
        &'a self,
        other: &'a Rt,
    ) -> Option<(&'a Resource, &'a Usage, &'a Usage)> {
        // Iterate over the smaller usage map for speed.
        let (small, big) = if self.usage.len() <= other.usage.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (r, u) in &small.usage {
            if let Some(v) = big.usage.get(r) {
                if u != v {
                    // Report in (self, other) orientation.
                    return if std::ptr::eq(small, self) {
                        Some((r, u, v))
                    } else {
                        Some((r, v, u))
                    };
                }
            }
        }
        None
    }
}

impl fmt::Display for Rt {
    /// Formats in the paper's figure-2 notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dests.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "Dest_{}:{}", i + 1, d)?;
        }
        if self.dests.is_empty() {
            write!(f, "(no dest)")?;
        }
        write!(f, " <- ")?;
        for (i, o) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "Opr_{}:{}", i + 1, o)?;
        }
        if self.operands.is_empty() {
            write!(f, "(no operands)")?;
        }
        writeln!(f)?;
        let width = self.usage.keys().map(|r| r.name().len()).max().unwrap_or(0);
        for (i, (r, u)) in self.usage.iter().enumerate() {
            let lead = if i == 0 { '\\' } else { ' ' };
            let sep = if i + 1 == self.usage.len() { ';' } else { ',' };
            writeln!(f, "{lead} {:width$} = {u}{sep}", r.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2_rt() -> Rt {
        let mut rt = Rt::new("add");
        rt.add_dest(RegRef::new("ram_1", 2));
        rt.add_operand(RegRef::new("acu_1", 1));
        rt.add_operand(RegRef::new("acu_1", 2));
        rt.add_usage("acu_1", Usage::token("add"));
        rt.add_usage("buf_1_acu_1", Usage::token("write"));
        rt.add_usage("bus_1_acu_1", Usage::apply("add", ["Opr_1", "Opr_2"]));
        rt.add_usage("mux_2_ram_1", Usage::apply("pass", ["0", "1"]));
        rt
    }

    #[test]
    fn reg_ref_display_matches_paper() {
        assert_eq!(RegRef::new("ram_1", 2).to_string(), "reg_2_ram_1");
        assert_eq!(RegRef::new("acu_1", 1).rf().name(), "acu_1");
        assert_eq!(RegRef::new("acu_1", 1).index(), 1);
    }

    #[test]
    fn identical_rts_are_compatible() {
        // Same usage on all shared resources ⇒ parallel execution allowed
        // (the paper's sharing rule).
        let rt = figure2_rt();
        assert!(rt.compatible_with(&rt.clone()));
        assert!(rt.conflict_with(&rt.clone()).is_none());
    }

    #[test]
    fn different_op_on_same_opu_conflicts() {
        let a = figure2_rt();
        let mut b = figure2_rt();
        b.add_usage("acu_1", Usage::token("addmod"));
        let (r, ua, ub) = a.conflict_with(&b).expect("must conflict");
        assert_eq!(r.name(), "acu_1");
        assert_eq!(ua, &Usage::token("add"));
        assert_eq!(ub, &Usage::token("addmod"));
    }

    #[test]
    fn conflict_orientation_is_self_then_other() {
        let a = figure2_rt();
        let mut b = Rt::new("small");
        b.add_usage("acu_1", Usage::token("inca"));
        // b has fewer resources; orientation must still be (a-usage, b-usage).
        let (_, ua, ub) = a.conflict_with(&b).unwrap();
        assert_eq!(ua, &Usage::token("add"));
        assert_eq!(ub, &Usage::token("inca"));
    }

    #[test]
    fn disjoint_resources_are_compatible() {
        let a = figure2_rt();
        let mut b = Rt::new("mult");
        b.add_usage("mult_1", Usage::token("mult"));
        b.add_usage("bus_1_mult_1", Usage::apply("mult", ["Opr_1", "Opr_2"]));
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn different_bus_data_conflicts() {
        // Two adds with different operands: same OPU usage but different
        // bus usage — cannot share the bus.
        let a = figure2_rt();
        let mut b = figure2_rt();
        b.add_usage("bus_1_acu_1", Usage::apply("add", ["Opr_1", "Opr_3"]));
        let (r, _, _) = a.conflict_with(&b).unwrap();
        assert_eq!(r.name(), "bus_1_acu_1");
    }

    #[test]
    fn artificial_resource_forbids_pairing() {
        // Section 6.3: SX = S on one RT and SX = X on the other.
        let mut a = Rt::new("rt1");
        a.add_usage("SX", Usage::token("S"));
        let mut b = Rt::new("rt3");
        b.add_usage("SX", Usage::token("X"));
        assert!(!a.compatible_with(&b));
        // Two RTs of the same class stay compatible through the artificial
        // resource.
        let mut c = Rt::new("rt1b");
        c.add_usage("SX", Usage::token("S"));
        assert!(a.compatible_with(&c));
    }

    #[test]
    fn rename_resources_merges() {
        let mut rt = figure2_rt();
        rt.rename_resources(|r| {
            if r.name() == "bus_1_acu_1" {
                Resource::new("bus_merged")
            } else {
                r.clone()
            }
        })
        .unwrap();
        assert!(rt.usage_of("bus_1_acu_1").is_none());
        assert_eq!(
            rt.usage_of("bus_merged"),
            Some(&Usage::apply("add", ["Opr_1", "Opr_2"]))
        );
    }

    #[test]
    fn rename_detects_self_conflict() {
        let mut rt = figure2_rt();
        // Merging the OPU and the buffer maps different usages together.
        let result = rt.rename_resources(|_| Resource::new("everything"));
        assert_eq!(result, Err(Resource::new("everything")));
    }

    #[test]
    fn rename_updates_register_references() {
        let mut rt = figure2_rt();
        rt.rename_resources(|r| {
            if r.name() == "ram_1" {
                Resource::new("ram_merged")
            } else {
                r.clone()
            }
        })
        .unwrap();
        assert_eq!(rt.dests()[0].rf().name(), "ram_merged");
    }

    #[test]
    fn display_matches_figure_2_shape() {
        let rt = figure2_rt();
        let text = rt.to_string();
        assert!(text.starts_with("Dest_1:reg_2_ram_1 <- Opr_1:reg_1_acu_1, Opr_2:reg_2_acu_1"));
        assert!(text.contains("\\ acu_1"));
        assert!(text.contains("= add,"));
        assert!(text.contains("bus_1_acu_1 = add(Opr_1, Opr_2),"));
        assert!(text.trim_end().ends_with(';'));
    }

    #[test]
    fn remove_usage_round_trip() {
        let mut rt = figure2_rt();
        let u = rt.remove_usage("acu_1");
        assert_eq!(u, Some(Usage::token("add")));
        assert_eq!(rt.remove_usage("acu_1"), None);
        assert_eq!(rt.resource_count(), 3);
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_latency_rejected() {
        let mut rt = Rt::new("x");
        rt.set_latency(0);
    }

    #[test]
    fn defs_and_uses_recorded() {
        let mut rt = Rt::new("x");
        rt.add_def(ValueId(3));
        rt.add_use(ValueId(1));
        rt.add_use(ValueId(2));
        assert_eq!(rt.defs(), &[ValueId(3)]);
        assert_eq!(rt.uses(), &[ValueId(1), ValueId(2)]);
    }
}
