//! A program: the ordered collection of RTs produced by RT generation,
//! together with the value table that links producers to consumers.

use std::fmt;

use crate::rt::{Rt, RtId};

/// Identifier of a data value flowing between RTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A named data value (a wire of the signal-flow graph after lowering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    name: String,
}

impl Value {
    /// Diagnostic name of the value.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The RT-level program handed from RT generation through RT modification
/// to the scheduler (figure 1b, the "Intermediate" box).
///
/// # Example
///
/// ```
/// use dspcc_ir::{Program, Rt, Usage};
///
/// let mut p = Program::new();
/// let x = p.add_value("x");
/// let mut producer = Rt::new("load_x");
/// producer.add_def(x);
/// let mut consumer = Rt::new("use_x");
/// consumer.add_use(x);
/// let a = p.add_rt(producer);
/// let b = p.add_rt(consumer);
/// assert_eq!(p.producer_of(x), Some(a));
/// assert_eq!(p.consumers_of(x), vec![b]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    rts: Vec<Rt>,
    values: Vec<Value>,
    /// Producer of each value (index = value id), maintained as RTs are
    /// added — the def table dependence analysis and validation share.
    producers: Vec<Option<RtId>>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a value with a diagnostic `name`, returning its id.
    pub fn add_value(&mut self, name: impl Into<String>) -> ValueId {
        self.values.push(Value { name: name.into() });
        if self.producers.len() < self.values.len() {
            self.producers.push(None);
        }
        ValueId((self.values.len() - 1) as u32)
    }

    /// Adds an RT, returning its id.
    ///
    /// The RT's def set must be final at this point: the producer index
    /// ([`Program::producer_table`]) records it now, and
    /// [`Program::validate`] cross-checks the index against the RTs, so
    /// defs added later through [`Program::rt_mut`] are rejected there.
    pub fn add_rt(&mut self, rt: Rt) -> RtId {
        let id = RtId(self.rts.len() as u32);
        for &d in rt.defs() {
            let i = d.0 as usize;
            // Grow for defs of not-yet-added value ids so producer_of
            // keeps the pre-index behaviour (an RT scan would find the
            // def regardless of add_value/add_rt ordering); validate
            // still rejects ids that never get a value.
            if self.producers.len() <= i {
                self.producers.resize(i + 1, None);
            }
            if self.producers[i].is_none() {
                self.producers[i] = Some(id);
            }
        }
        self.rts.push(rt);
        id
    }

    /// Number of RTs.
    pub fn rt_count(&self) -> usize {
        self.rts.len()
    }

    /// Number of values.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// The RT with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn rt(&self, id: RtId) -> &Rt {
        &self.rts[id.0 as usize]
    }

    /// Mutable access to an RT — used by the RT-modification pass.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn rt_mut(&mut self, id: RtId) -> &mut Rt {
        &mut self.rts[id.0 as usize]
    }

    /// The value with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.0 as usize]
    }

    /// Iterates over `(id, rt)` pairs in insertion (source) order.
    pub fn rts(&self) -> impl Iterator<Item = (RtId, &Rt)> {
        self.rts
            .iter()
            .enumerate()
            .map(|(i, rt)| (RtId(i as u32), rt))
    }

    /// Iterates over RT ids in insertion order.
    pub fn rt_ids(&self) -> impl Iterator<Item = RtId> {
        (0..self.rts.len() as u32).map(RtId)
    }

    /// The RT that defines `value`, if any — one indexed load.
    ///
    /// Well-formed programs define each value at most once (they come from
    /// a signal-flow graph in single-assignment form).
    pub fn producer_of(&self, value: ValueId) -> Option<RtId> {
        self.producers.get(value.0 as usize).copied().flatten()
    }

    /// The producer of every value, indexed by value id — the def table
    /// maintained incrementally by [`Program::add_rt`], shared by
    /// dependence analysis and validation instead of each rebuilding its
    /// own per-value producer index.
    pub fn producer_table(&self) -> &[Option<RtId>] {
        &self.producers
    }

    /// All RTs that use `value`, in insertion order.
    pub fn consumers_of(&self, value: ValueId) -> Vec<RtId> {
        self.rts()
            .filter(|(_, rt)| rt.uses().contains(&value))
            .map(|(id, _)| id)
            .collect()
    }

    /// Checks structural sanity: every used value has a producer, and no
    /// value is defined twice.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut producer: Vec<Option<RtId>> = vec![None; self.values.len()];
        for (id, rt) in self.rts() {
            for &d in rt.defs() {
                let slot = producer
                    .get_mut(d.0 as usize)
                    .ok_or_else(|| format!("{id} defines unknown value {d}"))?;
                if let Some(prev) = slot {
                    return Err(format!(
                        "value {d} ({}) defined by both {prev} and {id}",
                        self.value(d).name()
                    ));
                }
                *slot = Some(id);
            }
        }
        for (id, rt) in self.rts() {
            for &u in rt.uses() {
                let slot = producer
                    .get(u.0 as usize)
                    .ok_or_else(|| format!("{id} uses unknown value {u}"))?;
                if slot.is_none() {
                    return Err(format!(
                        "value {u} ({}) used by {id} but never defined",
                        self.value(u).name()
                    ));
                }
            }
        }
        // The incremental index must agree with the RTs — it goes stale
        // only if a def was added through `rt_mut` after `add_rt`.
        if producer != self.producers {
            return Err(
                "producer index is stale: defs were added to an RT after it \
                 entered the program"
                    .to_owned(),
            );
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, rt) in self.rts() {
            writeln!(f, "/* {id}: {} */", rt.name())?;
            write!(f, "{rt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Usage;

    fn two_rt_program() -> (Program, ValueId, RtId, RtId) {
        let mut p = Program::new();
        let v = p.add_value("m");
        let mut prod = Rt::new("mult");
        prod.add_def(v);
        prod.add_usage("mult_1", Usage::token("mult"));
        let mut cons = Rt::new("add");
        cons.add_use(v);
        cons.add_usage("alu_1", Usage::token("add"));
        let a = p.add_rt(prod);
        let b = p.add_rt(cons);
        (p, v, a, b)
    }

    #[test]
    fn def_use_lookup() {
        let (p, v, a, b) = two_rt_program();
        assert_eq!(p.producer_of(v), Some(a));
        assert_eq!(p.consumers_of(v), vec![b]);
        assert_eq!(p.rt_count(), 2);
        assert_eq!(p.value_count(), 1);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (p, _, _, _) = two_rt_program();
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_double_definition() {
        let (mut p, v, _, _) = two_rt_program();
        let mut again = Rt::new("dup");
        again.add_def(v);
        p.add_rt(again);
        let err = p.validate().unwrap_err();
        assert!(err.contains("defined by both"), "{err}");
    }

    #[test]
    fn validate_rejects_undefined_use() {
        let mut p = Program::new();
        let v = p.add_value("ghost");
        let mut rt = Rt::new("user");
        rt.add_use(v);
        p.add_rt(rt);
        let err = p.validate().unwrap_err();
        assert!(err.contains("never defined"), "{err}");
    }

    #[test]
    fn add_rt_before_add_value_still_indexes_producer() {
        // The def table must behave like the old RT scan even when the RT
        // lands before its value id is registered.
        let mut p = Program::new();
        let mut rt = Rt::new("early");
        rt.add_def(ValueId(0));
        let id = p.add_rt(rt);
        let v = p.add_value("late");
        assert_eq!(v, ValueId(0));
        assert_eq!(p.producer_of(v), Some(id));
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_unknown_value_id() {
        let mut p = Program::new();
        let mut rt = Rt::new("bad");
        rt.add_def(ValueId(42));
        p.add_rt(rt);
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_lists_all_rts() {
        let (p, _, _, _) = two_rt_program();
        let text = p.to_string();
        assert!(text.contains("rt0: mult"));
        assert!(text.contains("rt1: add"));
    }

    #[test]
    fn rt_mut_allows_modification() {
        let (mut p, _, a, _) = two_rt_program();
        p.rt_mut(a).add_usage("ABC", Usage::token("A"));
        assert_eq!(p.rt(a).usage_of("ABC"), Some(&Usage::token("A")));
    }

    #[test]
    fn ids_display() {
        assert_eq!(RtId(3).to_string(), "rt3");
        assert_eq!(ValueId(7).to_string(), "v7");
    }
}
