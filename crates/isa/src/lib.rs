//! Instruction-set modelling — the paper's core contribution (section 6).
//!
//! RTs without a datapath resource conflict may still be forbidden from
//! executing in parallel *by the instruction set* (e.g. because a vertical
//! microcode encoding is preferred). The paper defines a class of
//! instruction sets whose parallelism restrictions can be modelled
//! **statically, before scheduling**, as ordinary resource conflicts:
//!
//! 1. [`classes`] — every RT belongs to exactly one *RT class*, determined
//!    by the OPU resource it uses and the way it is used (figure 5).
//!    Classes can be merged when their distinction carries no scheduling
//!    information (section 7 merges 13 classes down to 9).
//! 2. [`iset`] — an *instruction type* is a set of RT classes; an
//!    *instruction set* is a set of instruction types obeying construction
//!    rules 1–4 (NOP present, singletons present, downward closed, and
//!    pairwise-compatible ⇒ jointly allowed). Under these rules the
//!    allowed types are exactly the independent sets of a *conflict graph*
//!    over RT classes.
//! 3. [`conflict`] — the conflict graph's edges are covered with cliques;
//!    each clique becomes an **artificial resource** added to every RT of
//!    its member classes, with the RT's class as usage. Conflicting
//!    classes then disagree on an artificial resource, and the scheduler
//!    needs no knowledge of the instruction set at all.
//!
//! # Example: the paper's instruction set `I`
//!
//! ```
//! use dspcc_isa::iset::InstructionSet;
//!
//! // Classes S,T,U,V,X,Y = 0..6; desired types {S,T},{S,U,V},{X,Y}.
//! let iset = InstructionSet::closure(6, &[
//!     vec![0, 1],
//!     vec![0, 2, 3],
//!     vec![4, 5],
//! ]);
//! assert_eq!(iset.types().len(), 13); // NOP + 6 singletons + 6 larger
//! iset.validate().unwrap();
//! let g = iset.conflict_graph();
//! assert_eq!(g.edge_count(), 10); // figure 6
//! ```

pub mod classes;
pub mod conflict;
pub mod derive;
pub mod iset;

pub use classes::{ClassId, Classification, RtClass};
pub use conflict::{
    apply_artificial_resources, artificial_resources, artificial_resources_for_graph,
    ArtificialResource, CoverStrategy,
};
pub use derive::{derive_isa, DerivedIsa};
pub use iset::{InstructionSet, IsaError};
