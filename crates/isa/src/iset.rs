//! Instruction types, instruction sets, construction rules, conflict
//! graphs (paper section 6.2).
//!
//! ```text
//! instruction type = {class1, class2, ...}
//! instruction set  = {instr_type1, instr_type2, ...}
//! ```
//!
//! Construction rules for *allowed* instruction sets:
//!
//! 1. the NOP (empty type) is included;
//! 2. every individual RT class is a valid type;
//! 3. every subset of a valid type is a valid type;
//! 4. if all 2-subsets of a set are valid types, the set itself is a valid
//!    type (the paper states the 3-class case; the general form follows by
//!    induction and is what makes "conflict" a *binary* relation).
//!
//! Rules 3+4 make the set of valid types exactly the set of independent
//! sets of the **conflict graph**: classes are nodes, and an edge joins two
//! classes that never occur together in any type.

use std::collections::BTreeSet;
use std::fmt;

use dspcc_graph::cliques::maximal_cliques;
use dspcc_graph::{Bitset, UndirectedGraph};

use crate::classes::ClassId;

/// An instruction set over classes `0..class_count`.
///
/// See the [module docs](self) for the construction rules; use
/// [`InstructionSet::closure`] to build a rule-conforming set from desired
/// types, or [`InstructionSet::from_types`] + [`InstructionSet::validate`]
/// to check a hand-written one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionSet {
    class_count: usize,
    types: BTreeSet<BTreeSet<ClassId>>,
}

/// Violation of the instruction-set construction rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Rule 1: the NOP is missing.
    MissingNop,
    /// Rule 2: a singleton type is missing.
    MissingSingleton(ClassId),
    /// Rule 3: a subset of a valid type is missing.
    NotDownwardClosed {
        /// The valid type whose subset is missing.
        of: Vec<ClassId>,
        /// The missing subset.
        missing: Vec<ClassId>,
    },
    /// Rule 4: all pairs of these classes are valid but the set is not.
    PairwiseButNotJoint(Vec<ClassId>),
    /// A type references a class id ≥ `class_count`.
    UnknownClass(ClassId),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::MissingNop => write!(f, "rule 1 violated: NOP type missing"),
            IsaError::MissingSingleton(c) => {
                write!(f, "rule 2 violated: singleton type {{{c}}} missing")
            }
            IsaError::NotDownwardClosed { of, missing } => write!(
                f,
                "rule 3 violated: {missing:?} (subset of valid type {of:?}) is not a valid type"
            ),
            IsaError::PairwiseButNotJoint(t) => write!(
                f,
                "rule 4 violated: all pairs of {t:?} are valid types but the set is not"
            ),
            IsaError::UnknownClass(c) => write!(f, "type references unknown {c}"),
        }
    }
}

impl std::error::Error for IsaError {}

impl InstructionSet {
    /// Builds an instruction set from an explicit list of types (each a
    /// list of class ids). Duplicates are merged; no rules are enforced —
    /// call [`InstructionSet::validate`].
    pub fn from_types(class_count: usize, types: &[Vec<usize>]) -> Self {
        let types = types
            .iter()
            .map(|t| t.iter().map(|&c| ClassId(c)).collect())
            .collect();
        InstructionSet { class_count, types }
    }

    /// Builds the smallest allowed instruction set containing the
    /// `desired` types, by applying the construction rules: NOP and
    /// singletons are added, subsets are added (rule 3), and
    /// pairwise-compatible sets are completed (rule 4).
    ///
    /// This reproduces the paper's example: desired
    /// `{S,T}, {S,U,V}, {X,Y}` closes to the 13-type set `I`.
    ///
    /// # Panics
    ///
    /// Panics if `class_count > 24` (the closure is exponential in the
    /// number of classes — real instruction sets have few classes; use the
    /// conflict graph directly for bigger experiments) or if a desired
    /// type references an out-of-range class.
    pub fn closure(class_count: usize, desired: &[Vec<usize>]) -> Self {
        assert!(
            class_count <= 24,
            "closure enumerates up to 2^n types; {class_count} classes is too many"
        );
        for t in desired {
            for &c in t {
                assert!(c < class_count, "class {c} out of range");
            }
        }
        // Compatible pairs: those inside some desired type.
        let mut compat = UndirectedGraph::new(class_count);
        for t in desired {
            for (i, &a) in t.iter().enumerate() {
                for &b in &t[i + 1..] {
                    compat.add_edge(a, b);
                }
            }
        }
        // Valid types = independent sets of the conflict graph = cliques of
        // the compatibility graph, plus NOP and singletons.
        let mut types: BTreeSet<BTreeSet<ClassId>> = BTreeSet::new();
        types.insert(BTreeSet::new());
        for c in 0..class_count {
            types.insert([ClassId(c)].into_iter().collect());
        }
        for maximal in maximal_cliques(&compat) {
            // All subsets of each maximal clique.
            let n = maximal.len();
            for mask in 1u32..(1 << n) {
                let t: BTreeSet<ClassId> = (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| ClassId(maximal[i]))
                    .collect();
                types.insert(t);
            }
        }
        InstructionSet { class_count, types }
    }

    /// Number of RT classes this set ranges over.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// All types, smallest first (NOP, singletons, pairs, …).
    pub fn types(&self) -> Vec<Vec<ClassId>> {
        let mut out: Vec<Vec<ClassId>> = self
            .types
            .iter()
            .map(|t| t.iter().copied().collect())
            .collect();
        out.sort_by_key(|t: &Vec<ClassId>| (t.len(), t.clone()));
        out
    }

    /// Whether the given set of classes is an allowed instruction type.
    pub fn allows(&self, classes: &[ClassId]) -> bool {
        let set: BTreeSet<ClassId> = classes.iter().copied().collect();
        self.types.contains(&set)
    }

    /// Checks construction rules 1–4.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule with a witness.
    pub fn validate(&self) -> Result<(), IsaError> {
        for t in &self.types {
            for &c in t {
                if c.0 >= self.class_count {
                    return Err(IsaError::UnknownClass(c));
                }
            }
        }
        // Rule 1.
        if !self.types.contains(&BTreeSet::new()) {
            return Err(IsaError::MissingNop);
        }
        // Rule 2.
        for c in 0..self.class_count {
            let singleton: BTreeSet<ClassId> = [ClassId(c)].into_iter().collect();
            if !self.types.contains(&singleton) {
                return Err(IsaError::MissingSingleton(ClassId(c)));
            }
        }
        // Rule 3: removing any one element of a type yields a type
        // (sufficient for full downward closure by induction).
        for t in &self.types {
            for &c in t {
                let mut sub = t.clone();
                sub.remove(&c);
                if !self.types.contains(&sub) {
                    return Err(IsaError::NotDownwardClosed {
                        of: t.iter().copied().collect(),
                        missing: sub.into_iter().collect(),
                    });
                }
            }
        }
        // Rule 4: every maximal independent set of the conflict graph must
        // be a type (with rule 3 this makes types = independent sets).
        let conflict = self.conflict_graph();
        let compat = conflict.complement();
        for clique in maximal_cliques(&compat) {
            let t: BTreeSet<ClassId> = clique.iter().map(|&c| ClassId(c)).collect();
            if !self.types.contains(&t) {
                return Err(IsaError::PairwiseButNotJoint(t.into_iter().collect()));
            }
        }
        Ok(())
    }

    /// Content fingerprint: the class count and every type (types iterate
    /// in `BTreeSet` order, so the value is independent of construction
    /// order). Used by the compile session to key cached RT-modification
    /// artifacts against the instruction set actually imposed.
    pub fn fingerprint(&self) -> u64 {
        dspcc_arch::Fnv64::of_parts(|h| {
            h.write_u64(self.class_count as u64);
            h.write_u64(self.types.len() as u64);
            for ty in &self.types {
                h.write_u64(ty.len() as u64);
                for class in ty {
                    h.write_u64(class.0 as u64);
                }
            }
        })
    }

    /// The conflict graph (paper figure 6): nodes are classes, and an edge
    /// joins two classes that occur together in **no** instruction type.
    ///
    /// Built through the bitset path: one pass over the types accumulates a
    /// packed "appears together" row per class, then the complemented rows
    /// become the edges — O(Σ|t|² + n²) instead of rescanning every type
    /// for every class pair.
    pub fn conflict_graph(&self) -> UndirectedGraph {
        let n = self.class_count;
        let mut together: Vec<Bitset> = (0..n).map(|_| Bitset::new(n)).collect();
        for t in &self.types {
            for &ClassId(a) in t {
                for &ClassId(b) in t {
                    together[a].insert(b);
                }
            }
        }
        let mut g = UndirectedGraph::new(n);
        for (a, row) in together.iter().enumerate() {
            for b in (a + 1)..n {
                if !row.contains(b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }
}

impl fmt::Display for InstructionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.types().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if t.is_empty() {
                write!(f, "NOP")?;
            } else {
                write!(f, "{{")?;
                for (j, c) in t.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", c.0)?;
                }
                write!(f, "}}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class indices for the paper's example: S=0,T=1,U=2,V=3,X=4,Y=5.
    const S: usize = 0;
    const T: usize = 1;
    const U: usize = 2;
    const V: usize = 3;
    const X: usize = 4;
    const Y: usize = 5;

    fn paper_set() -> InstructionSet {
        InstructionSet::closure(6, &[vec![S, T], vec![S, U, V], vec![X, Y]])
    }

    #[test]
    fn paper_closure_has_13_types() {
        // I = {NOP, {S},{T},{U},{V},{X},{Y}, {S,U},{S,V},{U,V},{S,U,V},
        //      {S,T},{X,Y}}
        let iset = paper_set();
        assert_eq!(iset.types().len(), 13);
        assert!(iset.allows(&[]));
        for c in 0..6 {
            assert!(iset.allows(&[ClassId(c)]));
        }
        let yes: &[&[usize]] = &[&[S, U], &[S, V], &[U, V], &[S, U, V], &[S, T], &[X, Y]];
        for t in yes {
            let ids: Vec<ClassId> = t.iter().map(|&c| ClassId(c)).collect();
            assert!(iset.allows(&ids), "{t:?} should be allowed");
        }
        let no: &[&[usize]] = &[&[S, X], &[T, U], &[S, T, U], &[X, Y, S], &[T, V]];
        for t in no {
            let ids: Vec<ClassId> = t.iter().map(|&c| ClassId(c)).collect();
            assert!(!iset.allows(&ids), "{t:?} should be forbidden");
        }
    }

    #[test]
    fn paper_closure_validates() {
        paper_set().validate().unwrap();
    }

    #[test]
    fn paper_conflict_graph_matches_figure_6() {
        let g = paper_set().conflict_graph();
        // Compatible pairs: S-T, S-U, S-V, U-V, X-Y. All 10 others conflict.
        assert_eq!(g.edge_count(), 10);
        for (a, b) in [(S, T), (S, U), (S, V), (U, V), (X, Y)] {
            assert!(!g.has_edge(a, b), "{a}-{b} must be compatible");
        }
        for (a, b) in [
            (S, X),
            (S, Y),
            (T, U),
            (T, V),
            (T, X),
            (T, Y),
            (U, X),
            (U, Y),
            (V, X),
            (V, Y),
        ] {
            assert!(g.has_edge(a, b), "{a}-{b} must conflict");
        }
    }

    #[test]
    fn missing_nop_detected() {
        let iset = InstructionSet::from_types(2, &[vec![0], vec![1]]);
        assert_eq!(iset.validate(), Err(IsaError::MissingNop));
    }

    #[test]
    fn missing_singleton_detected() {
        let iset = InstructionSet::from_types(2, &[vec![], vec![0]]);
        assert_eq!(iset.validate(), Err(IsaError::MissingSingleton(ClassId(1))));
    }

    #[test]
    fn not_downward_closed_detected() {
        // {0,1} valid but {1} missing… include singletons 0 and 1 but not
        // the pair {0,1}'s subset {1}? Build: NOP, {0}, {0,1} — missing {1}
        // trips rule 2 first; to isolate rule 3 use a triple.
        let iset =
            InstructionSet::from_types(3, &[vec![], vec![0], vec![1], vec![2], vec![0, 1, 2]]);
        match iset.validate() {
            Err(IsaError::NotDownwardClosed { .. }) => {}
            other => panic!("expected rule-3 violation, got {other:?}"),
        }
    }

    #[test]
    fn pairwise_but_not_joint_detected() {
        // Rule 4's own example: {S,U},{S,V},{U,V} valid ⇒ {S,U,V} required.
        let iset = InstructionSet::from_types(
            3,
            &[
                vec![],
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
            ],
        );
        assert_eq!(
            iset.validate(),
            Err(IsaError::PairwiseButNotJoint(vec![
                ClassId(0),
                ClassId(1),
                ClassId(2)
            ]))
        );
    }

    #[test]
    fn unknown_class_detected() {
        let iset = InstructionSet::from_types(1, &[vec![], vec![0], vec![5]]);
        assert_eq!(iset.validate(), Err(IsaError::UnknownClass(ClassId(5))));
    }

    #[test]
    fn closure_of_nothing_is_nop_plus_singletons() {
        let iset = InstructionSet::closure(3, &[]);
        assert_eq!(iset.types().len(), 4);
        iset.validate().unwrap();
        // Fully serial: conflict graph is complete.
        assert_eq!(iset.conflict_graph().edge_count(), 3);
    }

    #[test]
    fn closure_of_everything_is_powerset() {
        let iset = InstructionSet::closure(4, &[vec![0, 1, 2, 3]]);
        assert_eq!(iset.types().len(), 16);
        iset.validate().unwrap();
        assert_eq!(iset.conflict_graph().edge_count(), 0);
    }

    #[test]
    fn closure_applies_rule_4_transitively() {
        // Desired pairs {0,1},{0,2},{1,2} — closure must add {0,1,2}.
        let iset = InstructionSet::closure(3, &[vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert!(iset.allows(&[ClassId(0), ClassId(1), ClassId(2)]));
        iset.validate().unwrap();
    }

    #[test]
    fn display_lists_nop_first() {
        let iset = InstructionSet::closure(2, &[vec![0, 1]]);
        let s = iset.to_string();
        assert!(s.starts_with("{NOP, {0}, {1}, {0,1}}"), "{s}");
    }

    #[test]
    fn error_display() {
        assert!(IsaError::MissingNop.to_string().contains("rule 1"));
        assert!(IsaError::MissingSingleton(ClassId(2))
            .to_string()
            .contains("rule 2"));
        assert!(IsaError::PairwiseButNotJoint(vec![])
            .to_string()
            .contains("rule 4"));
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn closure_guards_class_count() {
        InstructionSet::closure(25, &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn closure_guards_class_range() {
        InstructionSet::closure(2, &[vec![0, 7]]);
    }
}
