//! RT classes (paper section 6.1, figure 5).
//!
//! "To which RT class a RT belongs is determined by the combination of the
//! OPU resource it uses and the way the resource is used (usage). … A RT
//! class can contain more than one usage for the OPU resource."

use std::collections::BTreeSet;
use std::fmt;

use dspcc_arch::Datapath;
use dspcc_ir::{Resource, Rt};

/// Identifier of an RT class within a [`Classification`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// One RT class: an OPU resource plus the set of usages (operation names)
/// that fall into this class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtClass {
    name: String,
    opu: Resource,
    usages: BTreeSet<String>,
}

impl RtClass {
    /// Creates a class covering `usages` of `opu`.
    pub fn new(name: &str, opu: impl Into<Resource>, usages: &[&str]) -> Self {
        RtClass {
            name: name.to_owned(),
            opu: opu.into(),
            usages: usages.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Class name (the letters A..M of figure 5 / section 7, or merged
    /// names like X, Y).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The OPU resource whose use defines membership.
    pub fn opu(&self) -> &Resource {
        &self.opu
    }

    /// The usages (operation names) on that OPU that belong to this class.
    pub fn usages(&self) -> impl Iterator<Item = &str> {
        self.usages.iter().map(|s| s.as_str())
    }

    /// Whether an RT using `opu` with operation `op` belongs here.
    pub fn matches(&self, opu: &str, op: &str) -> bool {
        self.opu.name() == opu && self.usages.contains(op)
    }
}

impl fmt::Display for RtClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let usages: Vec<&str> = self.usages().collect();
        write!(
            f,
            "{}: ({}, {{{}}})",
            self.name,
            self.opu,
            usages.join(", ")
        )
    }
}

/// The classification of all RTs of a core: the figure-5 table.
///
/// Built from the datapath via [`Classification::identify`] (one class per
/// (OPU, operation) pair), then optionally reduced with
/// [`Classification::merge`]:
///
/// > "Because a high parallelism is required and no special class
/// > combinations using the RAM and ALU can be excluded it is not
/// > necessary to identify their individual classes. Classes E and F can
/// > be combined in a single class X and classes H, I, J and K can be
/// > combined to class Y so the number of classes is reduced to 9."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    classes: Vec<RtClass>,
}

impl Classification {
    /// Creates an empty classification.
    pub fn new() -> Self {
        Classification::default()
    }

    /// Enumerates one class per (OPU, operation) pair of the datapath, in
    /// OPU declaration order, auto-named `A`, `B`, `C`, … like figure 5.
    pub fn identify(dp: &Datapath) -> Self {
        let mut classes = Vec::new();
        for opu in dp.opus() {
            for (op, _) in opu.ops() {
                let name = letter_name(classes.len());
                classes.push(RtClass::new(&name, opu.name(), &[op]));
            }
        }
        Classification { classes }
    }

    /// Adds a class explicitly, returning its id.
    pub fn add(&mut self, class: RtClass) -> ClassId {
        self.classes.push(class);
        ClassId(self.classes.len() - 1)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether there are no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// All classes in id order.
    pub fn classes(&self) -> &[RtClass] {
        &self.classes
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: ClassId) -> &RtClass {
        &self.classes[id.0]
    }

    /// Looks up a class by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId)
    }

    /// Merges the named classes into one class named `new_name`.
    ///
    /// The merged class requires all members to use the *same OPU* — that
    /// is what makes merging sound: RTs of the same OPU always conflict
    /// physically, so distinguishing their classes adds no scheduling
    /// freedom, only table size.
    ///
    /// # Errors
    ///
    /// Returns an error naming the problem if a member is unknown or the
    /// members span different OPUs.
    pub fn merge(&mut self, members: &[&str], new_name: &str) -> Result<ClassId, String> {
        let ids: Vec<usize> = members
            .iter()
            .map(|m| {
                self.classes
                    .iter()
                    .position(|c| c.name == *m)
                    .ok_or_else(|| format!("unknown class `{m}`"))
            })
            .collect::<Result<_, _>>()?;
        if ids.is_empty() {
            return Err("cannot merge zero classes".to_owned());
        }
        let opu = self.classes[ids[0]].opu;
        for &i in &ids {
            if self.classes[i].opu != opu {
                return Err(format!(
                    "classes `{}` and `{}` use different OPUs ({} vs {})",
                    members[0], self.classes[i].name, opu, self.classes[i].opu
                ));
            }
        }
        let mut usages: BTreeSet<String> = BTreeSet::new();
        for &i in &ids {
            usages.extend(self.classes[i].usages.iter().cloned());
        }
        // Remove members (descending index), then append the merged class.
        let mut sorted = ids.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for i in sorted {
            self.classes.remove(i);
        }
        self.classes.push(RtClass {
            name: new_name.to_owned(),
            opu,
            usages,
        });
        Ok(ClassId(self.classes.len() - 1))
    }

    /// Renames class `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn rename(&mut self, id: ClassId, name: &str) {
        self.classes[id.0].name = name.to_owned();
    }

    /// Determines the class of an RT: the unique class matching the RT's
    /// OPU usage. Returns `None` for RTs that use no classified OPU.
    ///
    /// "Every RT generated in step 1 of the compiler belongs to exactly
    /// one RT class."
    pub fn class_of(&self, rt: &Rt) -> Option<ClassId> {
        for (resource, usage) in rt.usages() {
            for (i, class) in self.classes.iter().enumerate() {
                // Interned OPU resources: the common miss is one integer
                // compare, the op-name set is consulted only on a hit.
                if class.opu == *resource && class.usages.contains(usage.op()) {
                    return Some(ClassId(i));
                }
            }
        }
        None
    }

    /// Content fingerprint: every class's name, OPU resource, and usage
    /// set, in classification order. Used by the compile session to key
    /// cached RT-modification artifacts — merging or renaming classes
    /// changes the fingerprint and invalidates them.
    pub fn fingerprint(&self) -> u64 {
        dspcc_arch::Fnv64::of_parts(|h| {
            h.write_u64(self.classes.len() as u64);
            for class in &self.classes {
                h.write_text(&class.name);
                h.write_text(class.opu.name());
                h.write_u64(class.usages.len() as u64);
                for usage in &class.usages {
                    h.write_text(usage);
                }
            }
        })
    }

    /// Formats the figure-5 style table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("OPU Resource  Usage        Class\n");
        for c in &self.classes {
            let usages: Vec<&str> = c.usages().collect();
            out.push_str(&format!(
                "{:<13} {:<12} {}\n",
                c.opu.name(),
                usages.join(","),
                c.name
            ));
        }
        out
    }
}

/// Spreadsheet-style name: A, B, …, Z, AA, AB, …
fn letter_name(index: usize) -> String {
    let mut n = index;
    let mut s = String::new();
    loop {
        s.insert(0, (b'A' + (n % 26) as u8) as char);
        if n < 26 {
            break;
        }
        n = n / 26 - 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::{DatapathBuilder, OpuKind};
    use dspcc_ir::Usage;

    fn small_dp() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_a", 2)
            .opu(
                OpuKind::Acu,
                "acu_1",
                &[("add", 1), ("addmod", 1), ("inca", 1)],
            )
            .inputs("acu_1", &["rf_a"])
            .output("acu_1", "bus_acu")
            .opu(OpuKind::Ram, "ram_1", &[("read", 1), ("write", 1)])
            .memory("ram_1", 16)
            .inputs("ram_1", &["rf_a"])
            .output("ram_1", "bus_ram")
            .write_port("rf_a", &["bus_acu", "bus_ram"])
            .build()
            .unwrap()
    }

    #[test]
    fn identify_enumerates_opu_usage_pairs() {
        // Figure 5: acu_1 add/addmod/inca → A,B,C; ram_1 read/write → D,E.
        let c = Classification::identify(&small_dp());
        assert_eq!(c.len(), 5);
        assert_eq!(c.class(ClassId(0)).name(), "A");
        assert_eq!(c.class(ClassId(4)).name(), "E");
        assert!(c.class(ClassId(0)).matches("acu_1", "add"));
        assert!(c.class(ClassId(3)).matches("ram_1", "read"));
    }

    #[test]
    fn merge_combines_usages_of_one_opu() {
        // Figure 5's class E is (ram_1, {read, write}).
        let mut c = Classification::identify(&small_dp());
        let id = c.merge(&["D", "E"], "E").unwrap();
        assert_eq!(c.len(), 4);
        let merged = c.class(id);
        assert_eq!(merged.name(), "E");
        let usages: Vec<&str> = merged.usages().collect();
        assert_eq!(usages, vec!["read", "write"]);
    }

    #[test]
    fn merge_rejects_cross_opu() {
        let mut c = Classification::identify(&small_dp());
        let err = c.merge(&["A", "D"], "Z").unwrap_err();
        assert!(err.contains("different OPUs"));
    }

    #[test]
    fn merge_rejects_unknown() {
        let mut c = Classification::identify(&small_dp());
        assert!(c.merge(&["Q"], "Z").unwrap_err().contains("unknown"));
        assert!(c.merge(&[], "Z").is_err());
    }

    #[test]
    fn class_of_rt_uses_opu_usage() {
        let c = Classification::identify(&small_dp());
        let mut rt = Rt::new("x");
        rt.add_usage("acu_1", Usage::token("addmod"));
        rt.add_usage("bus_acu", Usage::apply("addmod", ["v1"]));
        assert_eq!(c.class_of(&rt), c.by_name("B"));
    }

    #[test]
    fn class_of_unclassified_rt_is_none() {
        let c = Classification::identify(&small_dp());
        let mut rt = Rt::new("x");
        rt.add_usage("mystery", Usage::token("op"));
        assert_eq!(c.class_of(&rt), None);
    }

    #[test]
    fn class_of_merged_class() {
        let mut c = Classification::identify(&small_dp());
        c.merge(&["D", "E"], "X").unwrap();
        let mut read = Rt::new("r");
        read.add_usage("ram_1", Usage::token("read"));
        let mut write = Rt::new("w");
        write.add_usage("ram_1", Usage::token("write"));
        assert_eq!(c.class_of(&read), c.by_name("X"));
        assert_eq!(c.class_of(&read), c.class_of(&write));
    }

    #[test]
    fn letter_names_extend_past_z() {
        assert_eq!(letter_name(0), "A");
        assert_eq!(letter_name(25), "Z");
        assert_eq!(letter_name(26), "AA");
        assert_eq!(letter_name(27), "AB");
    }

    #[test]
    fn table_format() {
        let c = Classification::identify(&small_dp());
        let t = c.to_table();
        assert!(t.contains("acu_1"));
        assert!(t.contains("read"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn rename_and_by_name() {
        let mut c = Classification::identify(&small_dp());
        let id = c.by_name("A").unwrap();
        c.rename(id, "AddClass");
        assert_eq!(c.by_name("AddClass"), Some(id));
        assert_eq!(c.by_name("A"), None);
    }

    #[test]
    fn display_class() {
        let class = RtClass::new("E", "ram_1", &["read", "write"]);
        assert_eq!(class.to_string(), "E: (ram_1, {read, write})");
    }
}
