//! Generating instruction-set conflicts (paper section 6.3).
//!
//! "For allowed instruction sets it is possible to generate extra conflicts
//! before scheduling such that the RT combinations after scheduling will
//! not violate the instruction set. … In this graph we find a set of
//! cliques such that all edges in the conflict graph are covered. … For
//! RTs from a class which is also present in a clique a conflict must be
//! added with the clique as artificial resource. The clique as artificial
//! resource is added with as usage the RT class."
//!
//! Any clique cover yields a *valid* schedule; larger (maximal) cliques
//! merely reduce the number of artificial resources and hence scheduler
//! run-time — which is exactly what experiment E8 measures.
//!
//! The whole chain here runs on the word-packed bitset path: the conflict
//! graph arrives with packed adjacency rows
//! ([`InstructionSet::conflict_graph`] accumulates "appears together"
//! bitsets over the types), and all three cover strategies enumerate and
//! grow cliques by word-parallel neighbourhood intersection (see
//! [`dspcc_graph::cliques`] / [`dspcc_graph::cover`]).

use std::fmt;

use dspcc_graph::cover::{
    greedy_edge_clique_cover, minimum_edge_clique_cover, per_edge_clique_cover,
};
use dspcc_graph::UndirectedGraph;
use dspcc_ir::{Program, Usage};

use crate::classes::{ClassId, Classification};
use crate::iset::InstructionSet;

/// Which edge-clique-cover algorithm to use when generating artificial
/// resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverStrategy {
    /// One 2-clique per conflict edge — most artificial resources, the
    /// ablation baseline.
    PerEdge,
    /// Greedy maximal cliques (the paper's suggestion); near-minimal.
    #[default]
    GreedyMaximal,
    /// Exact minimum cover (branch and bound); smallest possible.
    ExactMinimum,
}

impl CoverStrategy {
    /// Stable fingerprint tag for cache keys (the compile session keys
    /// RT-modification artifacts on the strategy, since the artificial
    /// resources it yields differ).
    pub fn fingerprint(self) -> u64 {
        match self {
            CoverStrategy::PerEdge => 1,
            CoverStrategy::GreedyMaximal => 2,
            CoverStrategy::ExactMinimum => 3,
        }
    }
}

impl fmt::Display for CoverStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoverStrategy::PerEdge => "per-edge",
            CoverStrategy::GreedyMaximal => "greedy",
            CoverStrategy::ExactMinimum => "exact",
        })
    }
}

/// One artificial resource: a clique of the conflict graph, named after
/// its member classes (`SX`, `TUY`, `ABC`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtificialResource {
    name: String,
    members: Vec<ClassId>,
}

impl ArtificialResource {
    /// Resource name used in RT usage maps.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The classes forming the clique.
    pub fn members(&self) -> &[ClassId] {
        &self.members
    }

    /// Whether `class` participates in this clique.
    pub fn contains(&self, class: ClassId) -> bool {
        self.members.contains(&class)
    }
}

impl fmt::Display for ArtificialResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {:?}", self.name, self.members)
    }
}

/// Computes the artificial resources for an instruction set: covers the
/// conflict graph's edges with cliques per `strategy` and names each
/// clique by concatenating the member class names.
///
/// Returns an empty list when the instruction set imposes no restrictions
/// beyond the datapath (conflict graph with no edges).
pub fn artificial_resources(
    iset: &InstructionSet,
    classification: &Classification,
    strategy: CoverStrategy,
) -> Vec<ArtificialResource> {
    let graph = iset.conflict_graph();
    artificial_resources_for_graph(&graph, classification, strategy)
}

/// As [`artificial_resources`], but from an explicit conflict graph
/// (useful when the instruction set is only known via its graph).
pub fn artificial_resources_for_graph(
    graph: &UndirectedGraph,
    classification: &Classification,
    strategy: CoverStrategy,
) -> Vec<ArtificialResource> {
    let cover = match strategy {
        CoverStrategy::PerEdge => per_edge_clique_cover(graph),
        CoverStrategy::GreedyMaximal => greedy_edge_clique_cover(graph),
        CoverStrategy::ExactMinimum => minimum_edge_clique_cover(graph),
    };
    cover
        .into_iter()
        .map(|clique| {
            let name: String = clique
                .iter()
                .map(|&c| classification.class(ClassId(c)).name())
                .collect::<Vec<_>>()
                .join("");
            ArtificialResource {
                name,
                members: clique.into_iter().map(ClassId).collect(),
            }
        })
        .collect()
}

/// Installs the artificial resources into every RT of `program`:
///
/// for each RT of class `C` and each artificial resource (clique) whose
/// members include `C`, the RT gains usage `<clique> = <C's name>`.
///
/// RTs that belong to no class (none of the classified OPUs) are left
/// untouched. Returns the number of usages added.
pub fn apply_artificial_resources(
    program: &mut Program,
    classification: &Classification,
    resources: &[ArtificialResource],
) -> usize {
    // Intern each artificial resource name and each class's token usage
    // once; the per-RT install is then id-based.
    let ar_res: Vec<dspcc_ir::Resource> = resources
        .iter()
        .map(|ar| dspcc_ir::Resource::new(ar.name()))
        .collect();
    let class_token: Vec<dspcc_ir::UsageId> = classification
        .classes()
        .iter()
        .map(|c| dspcc_ir::UsageId::of(&Usage::token(c.name())))
        .collect();
    let mut added = 0;
    for id in program.rt_ids().collect::<Vec<_>>() {
        let class = match classification.class_of(program.rt(id)) {
            Some(c) => c,
            None => continue,
        };
        for (ar, &res) in resources.iter().zip(&ar_res) {
            if ar.contains(class) {
                program.rt_mut(id).add_usage_id(res, class_token[class.0]);
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::RtClass;
    use dspcc_ir::Rt;

    /// Classification with classes S,T,U,V,X,Y on distinct OPUs.
    fn paper_classification() -> Classification {
        let mut c = Classification::new();
        for (name, opu) in [
            ("S", "opu_s"),
            ("T", "opu_t"),
            ("U", "opu_u"),
            ("V", "opu_v"),
            ("X", "opu_x"),
            ("Y", "opu_y"),
        ] {
            c.add(RtClass::new(name, opu, &["op"]));
        }
        c
    }

    fn paper_iset() -> InstructionSet {
        InstructionSet::closure(6, &[vec![0, 1], vec![0, 2, 3], vec![4, 5]])
    }

    fn rt_of_class(opu: &str) -> Rt {
        let mut rt = Rt::new(opu);
        rt.add_usage(opu, Usage::token("op"));
        rt
    }

    #[test]
    fn cover_resources_cover_all_conflict_edges() {
        let classification = paper_classification();
        let iset = paper_iset();
        for strategy in [
            CoverStrategy::PerEdge,
            CoverStrategy::GreedyMaximal,
            CoverStrategy::ExactMinimum,
        ] {
            let ars = artificial_resources(&iset, &classification, strategy);
            let g = iset.conflict_graph();
            for (a, b) in g.edges() {
                assert!(
                    ars.iter()
                        .any(|ar| ar.contains(ClassId(a)) && ar.contains(ClassId(b))),
                    "{strategy:?}: edge {a}-{b} uncovered"
                );
            }
        }
    }

    #[test]
    fn per_edge_cover_has_ten_resources() {
        let ars = artificial_resources(
            &paper_iset(),
            &paper_classification(),
            CoverStrategy::PerEdge,
        );
        assert_eq!(ars.len(), 10); // one per figure-6 edge
    }

    #[test]
    fn minimum_cover_no_larger_than_papers_six() {
        let ars = artificial_resources(
            &paper_iset(),
            &paper_classification(),
            CoverStrategy::ExactMinimum,
        );
        assert!(
            ars.len() <= 6,
            "paper's cover has 6 cliques, got {}",
            ars.len()
        );
    }

    #[test]
    fn resource_names_concatenate_class_names() {
        let ars = artificial_resources(
            &paper_iset(),
            &paper_classification(),
            CoverStrategy::GreedyMaximal,
        );
        // The maximal clique {T,U,Y} must appear with name "TUY".
        assert!(
            ars.iter()
                .any(|ar| ar.name() == "TUY" || ar.name() == "TVX"),
            "expected a paper-style maximal clique name, got {:?}",
            ars.iter().map(ArtificialResource::name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn apply_adds_class_usage_to_member_rts() {
        // Section 6.3's worked example: RT_1 ∈ S gains SX = S and SY = S.
        let classification = paper_classification();
        let iset = paper_iset();
        let ars = artificial_resources(&iset, &classification, CoverStrategy::PerEdge);
        let mut program = Program::new();
        let rt1 = program.add_rt(rt_of_class("opu_s"));
        let rt3 = program.add_rt(rt_of_class("opu_x"));
        let added = apply_artificial_resources(&mut program, &classification, &ars);
        assert!(added > 0);
        // S conflicts with X and Y ⇒ RT_1 carries SX and SY.
        assert_eq!(program.rt(rt1).usage_of("SX"), Some(&Usage::token("S")));
        assert_eq!(program.rt(rt1).usage_of("SY"), Some(&Usage::token("S")));
        // X's RT carries SX = X: the pair now conflicts for the scheduler.
        assert_eq!(program.rt(rt3).usage_of("SX"), Some(&Usage::token("X")));
        assert!(!program.rt(rt1).compatible_with(program.rt(rt3)));
    }

    #[test]
    fn compatible_classes_stay_compatible_after_apply() {
        let classification = paper_classification();
        let iset = paper_iset();
        let ars = artificial_resources(&iset, &classification, CoverStrategy::GreedyMaximal);
        let mut program = Program::new();
        let s = program.add_rt(rt_of_class("opu_s"));
        let u = program.add_rt(rt_of_class("opu_u"));
        let v = program.add_rt(rt_of_class("opu_v"));
        apply_artificial_resources(&mut program, &classification, &ars);
        // {S,U,V} is an allowed type: all pairs stay compatible.
        assert!(program.rt(s).compatible_with(program.rt(u)));
        assert!(program.rt(s).compatible_with(program.rt(v)));
        assert!(program.rt(u).compatible_with(program.rt(v)));
    }

    #[test]
    fn forbidden_pairs_conflict_for_every_strategy() {
        let classification = paper_classification();
        let iset = paper_iset();
        let g = iset.conflict_graph();
        for strategy in [
            CoverStrategy::PerEdge,
            CoverStrategy::GreedyMaximal,
            CoverStrategy::ExactMinimum,
        ] {
            let ars = artificial_resources(&iset, &classification, strategy);
            let opus = ["opu_s", "opu_t", "opu_u", "opu_v", "opu_x", "opu_y"];
            let mut program = Program::new();
            let ids: Vec<_> = opus
                .iter()
                .map(|o| program.add_rt(rt_of_class(o)))
                .collect();
            apply_artificial_resources(&mut program, &classification, &ars);
            for a in 0..6 {
                for b in (a + 1)..6 {
                    let compatible = program.rt(ids[a]).compatible_with(program.rt(ids[b]));
                    assert_eq!(
                        compatible,
                        !g.has_edge(a, b),
                        "{strategy:?}: classes {a},{b} compatibility mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn unclassified_rts_untouched() {
        let classification = paper_classification();
        let ars =
            artificial_resources(&paper_iset(), &classification, CoverStrategy::GreedyMaximal);
        let mut program = Program::new();
        let mut rt = Rt::new("other");
        rt.add_usage("unrelated_opu", Usage::token("op"));
        let id = program.add_rt(rt);
        let before = program.rt(id).resource_count();
        apply_artificial_resources(&mut program, &classification, &ars);
        assert_eq!(program.rt(id).resource_count(), before);
    }

    #[test]
    fn unrestricted_iset_yields_no_resources() {
        let mut c = Classification::new();
        c.add(RtClass::new("A", "opu_a", &["op"]));
        c.add(RtClass::new("B", "opu_b", &["op"]));
        let iset = InstructionSet::closure(2, &[vec![0, 1]]);
        let ars = artificial_resources(&iset, &c, CoverStrategy::GreedyMaximal);
        assert!(ars.is_empty());
    }

    #[test]
    fn display_artificial_resource() {
        let ar = ArtificialResource {
            name: "SX".into(),
            members: vec![ClassId(0), ClassId(4)],
        };
        assert!(ar.to_string().contains("SX"));
    }
}
