//! Seeded instruction-set derivation for generated datapaths.
//!
//! The architecture generator (`dspcc_arch::generate`) produces raw
//! datapaths; this module is its companion step on the ISA axis: from a
//! datapath and a seed it derives a [`Classification`] (randomized merges
//! of the identified (OPU, operation) classes) and optionally an
//! [`InstructionSet`] over the merged classes, plus a [`CoverStrategy`]
//! draw — everything `dspcc::Core` needs beyond the datapath itself.
//!
//! Three instruction-set *styles* are drawn per seed:
//!
//! * **horizontal** — no instruction set at all: only datapath conflicts
//!   restrict parallelism (the `tiny_core` situation);
//! * **IO-exclusive** — the audio-core pattern of section 7: the classes
//!   of the input/output ports are mutually exclusive ("input via the IPB
//!   or output via the OPB₁ or the OPB₂ but not simultaneously"), every
//!   other class freely parallel — this yields a single ABC-style
//!   artificial resource;
//! * **random-conflict** — IO exclusion plus a few extra randomly drawn
//!   forbidden class pairs, producing richer conflict graphs and thus
//!   richer artificial-resource covers.
//!
//! # Validity
//!
//! The derived set always satisfies construction rules 1–4: desired types
//! are handed to [`InstructionSet::closure`], which completes them by the
//! rules, and `derive_isa` asserts `validate()` in debug builds. Because
//! [`InstructionSet::closure`] enumerates subsets of each compatibility
//! clique, any style that imposes an instruction set first **merges every
//! multi-operation OPU's classes down to one class per OPU** (a repair the
//! [`DerivedIsa::notes`] record): class count = OPU count ≤ ~14, keeping
//! the closure tractable. Merging same-OPU classes is always sound — RTs
//! of one OPU conflict physically anyway (see [`Classification::merge`]).

use dspcc_arch::{Datapath, OpuKind, SplitMix64};

use crate::classes::{ClassId, Classification};
use crate::conflict::CoverStrategy;
use crate::iset::InstructionSet;

/// The ISA bundle derived for a generated datapath.
#[derive(Debug, Clone)]
pub struct DerivedIsa {
    /// The classification (merges already applied).
    pub classification: Classification,
    /// The instruction set, `None` for the fully horizontal style.
    pub instruction_set: Option<InstructionSet>,
    /// The clique-cover strategy drawn for the artificial resources.
    pub cover: CoverStrategy,
    /// Human-readable notes on merges/repairs applied (mirrors the
    /// generator's repair log).
    pub notes: Vec<String>,
}

/// Upper bound on the class count underneath an instruction set: keeps
/// `InstructionSet::closure` (exponential in the largest compatible
/// clique) comfortably tractable.
const MAX_ISA_CLASSES: usize = 14;

/// Derives a seeded classification + instruction set for `dp`. Pure
/// function of `(dp, seed)` — same inputs, same ISA, on every run and
/// thread.
///
/// # Panics
///
/// Panics (debug assertion) if the derived instruction set fails its own
/// construction-rule validation — impossible by construction.
pub fn derive_isa(dp: &Datapath, seed: u64) -> DerivedIsa {
    let mut rng = SplitMix64::substream(seed, 0x15a);
    let mut notes = Vec::new();
    let mut c = Classification::identify(dp);

    // Randomized per-OPU merges. An instruction-set style (drawn below)
    // forces *all* multi-op OPUs merged so the class count stays small;
    // the horizontal style merges each OPU only with some probability,
    // exercising unmerged classifications too.
    let style = rng.range(0, 99);
    let want_iset = style >= 30; // 30% horizontal, 40% IO-exclusive, 30% random-conflict
    let random_conflicts = style >= 70;
    let merge_all = want_iset;
    let opu_names: Vec<String> = dp.opus().iter().map(|o| o.name().to_owned()).collect();
    for opu in &opu_names {
        let members: Vec<String> = c
            .classes()
            .iter()
            .filter(|cl| cl.opu().name() == opu)
            .map(|cl| cl.name().to_owned())
            .collect();
        if members.len() < 2 {
            continue;
        }
        if merge_all || rng.chance(60) {
            let refs: Vec<&str> = members.iter().map(String::as_str).collect();
            let merged_name = format!("M{opu}");
            c.merge(&refs, &merged_name)
                .expect("same-OPU classes always merge");
            if merge_all {
                notes.push(format!(
                    "merged {} classes of `{opu}` into `{merged_name}` \
                     (class-count cap for the instruction-set closure)",
                    members.len()
                ));
            } else {
                notes.push(format!(
                    "merged {} classes of `{opu}` into `{merged_name}`",
                    members.len()
                ));
            }
        }
    }

    let cover = *rng.pick(&[
        CoverStrategy::PerEdge,
        CoverStrategy::GreedyMaximal,
        CoverStrategy::ExactMinimum,
    ]);

    if !want_iset {
        return DerivedIsa {
            classification: c,
            instruction_set: None,
            cover,
            notes,
        };
    }
    // A cross-core union (`dspcc_arch::merge::union`) can carry more
    // distinct OPUs than the closure cap, which exists to keep
    // `InstructionSet::closure` tractable. Fall back to the horizontal
    // style instead of refusing: every class stays independently
    // schedulable, just without an instruction-set restriction.
    if c.len() > MAX_ISA_CLASSES {
        notes.push(format!(
            "{} classes exceed the instruction-set cap ({MAX_ISA_CLASSES}); \
             falling back to the horizontal style",
            c.len()
        ));
        return DerivedIsa {
            classification: c,
            instruction_set: None,
            cover,
            notes,
        };
    }

    // Partition classes: the IO classes (input/output port OPUs) are
    // mutually exclusive; all others are pairwise compatible unless a
    // random conflict forbids them.
    let n = c.len();
    let io: Vec<usize> = (0..n)
        .filter(|&i| {
            let opu = c.class(ClassId(i)).opu().name();
            dp.opu(opu)
                .map(|o| matches!(o.kind(), OpuKind::Input | OpuKind::Output))
                .unwrap_or(false)
        })
        .collect();
    let compute: Vec<usize> = (0..n).filter(|i| !io.contains(i)).collect();

    // Extra random conflicts among compute classes (random-conflict style).
    let mut forbidden: Vec<(usize, usize)> = Vec::new();
    if random_conflicts && compute.len() >= 2 {
        let pairs = rng.range(1, 3);
        for _ in 0..pairs {
            let a = *rng.pick(&compute);
            let b = *rng.pick(&compute);
            if a != b && !forbidden.contains(&(a.min(b), a.max(b))) {
                forbidden.push((a.min(b), a.max(b)));
            }
        }
        if !forbidden.is_empty() {
            let named: Vec<String> = forbidden
                .iter()
                .map(|&(a, b)| {
                    format!(
                        "{}-{}",
                        c.class(ClassId(a)).name(),
                        c.class(ClassId(b)).name()
                    )
                })
                .collect();
            notes.push(format!("extra forbidden pairs: {}", named.join(", ")));
        }
    }

    // Desired types: for each IO class, {that class} ∪ {compute classes
    // compatible with everything in the type}. Conflicting compute pairs
    // are split greedily into separate types so no desired type contains
    // a forbidden pair — the closure then derives the exact rule-conforming
    // set (pairwise compatibility is what matters; see iset rules 3+4).
    let conflicts = |a: usize, b: usize| forbidden.contains(&(a.min(b), a.max(b)));
    let mut compute_groups: Vec<Vec<usize>> = Vec::new();
    for &cls in &compute {
        match compute_groups
            .iter_mut()
            .find(|g| g.iter().all(|&m| !conflicts(m, cls)))
        {
            Some(g) => g.push(cls),
            None => compute_groups.push(vec![cls]),
        }
    }
    if compute_groups.is_empty() {
        compute_groups.push(Vec::new());
    }
    let mut desired: Vec<Vec<usize>> = Vec::new();
    if io.is_empty() {
        desired.extend(compute_groups.iter().cloned());
    } else {
        for &io_cls in &io {
            for group in &compute_groups {
                let mut t = vec![io_cls];
                t.extend(group.iter().copied());
                desired.push(t);
            }
        }
    }
    let iset = InstructionSet::closure(n, &desired);
    debug_assert_eq!(iset.validate(), Ok(()), "closure output always validates");

    DerivedIsa {
        classification: c,
        instruction_set: Some(iset),
        cover,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::CoreGenerator;

    #[test]
    fn derivation_is_deterministic() {
        let arch = CoreGenerator::new().generate(3);
        let a = derive_isa(&arch.datapath, 3);
        let b = derive_isa(&arch.datapath, 3);
        assert_eq!(a.classification, b.classification);
        assert_eq!(a.instruction_set, b.instruction_set);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.notes, b.notes);
    }

    #[test]
    fn derived_sets_validate_across_many_seeds() {
        let gen = CoreGenerator::new();
        let mut with_iset = 0;
        let mut without = 0;
        for seed in 0..96u64 {
            let arch = gen.generate(seed);
            let isa = derive_isa(&arch.datapath, seed);
            assert!(!isa.classification.is_empty());
            match &isa.instruction_set {
                Some(iset) => {
                    with_iset += 1;
                    iset.validate().unwrap();
                    assert_eq!(iset.class_count(), isa.classification.len());
                    assert!(iset.class_count() <= MAX_ISA_CLASSES);
                }
                None => without += 1,
            }
        }
        // All three styles must actually occur over 96 seeds.
        assert!(with_iset > 0 && without > 0, "{with_iset} / {without}");
    }

    #[test]
    fn oversized_class_count_falls_back_to_horizontal() {
        // 16 single-op ALUs — more classes than the instruction-set cap
        // can close over. Models a cross-core union larger than any
        // single generated core.
        let mut b = dspcc_arch::DatapathBuilder::new();
        for i in 0..16 {
            let rf = format!("rf_{i}");
            let alu = format!("alu_{i}");
            let bus = format!("bus_{i}");
            b = b
                .register_file(&rf, 4)
                .opu(OpuKind::Alu, &alu, &[("add", 1)])
                .inputs(&alu, &[&rf])
                .output(&alu, &bus)
                .write_port(&rf, &[&bus]);
        }
        let dp = b.build().unwrap();
        let mut fell_back = 0;
        for seed in 0..32u64 {
            let isa = derive_isa(&dp, seed);
            assert_eq!(isa.classification.len(), 16);
            if isa.notes.iter().any(|n| n.contains("falling back")) {
                assert!(isa.instruction_set.is_none());
                fell_back += 1;
            }
        }
        // The instruction-set styles are drawn ~70% of the time; over 32
        // seeds the fallback must actually trigger.
        assert!(fell_back > 0);
    }

    #[test]
    fn io_classes_are_mutually_exclusive_when_iset_present() {
        let gen = CoreGenerator::new();
        let mut checked = 0;
        for seed in 0..64u64 {
            let arch = gen.generate(seed);
            let isa = derive_isa(&arch.datapath, seed);
            let Some(iset) = &isa.instruction_set else {
                continue;
            };
            let io: Vec<ClassId> = (0..isa.classification.len())
                .map(ClassId)
                .filter(|&id| {
                    let opu = isa.classification.class(id).opu().name();
                    matches!(
                        arch.datapath.opu(opu).unwrap().kind(),
                        OpuKind::Input | OpuKind::Output
                    )
                })
                .collect();
            let g = iset.conflict_graph();
            for (i, &a) in io.iter().enumerate() {
                for &b in &io[i + 1..] {
                    assert!(g.has_edge(a.0, b.0), "seed {seed}: {a:?}/{b:?} compatible");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no IO pairs checked");
    }

    #[test]
    fn classification_merges_are_per_opu() {
        let gen = CoreGenerator::new();
        for seed in 0..32u64 {
            let arch = gen.generate(seed);
            let isa = derive_isa(&arch.datapath, seed);
            // Each class's usages all belong to its OPU's op set.
            for class in isa.classification.classes() {
                let opu = arch.datapath.opu(class.opu().name()).unwrap();
                for usage in class.usages() {
                    assert!(
                        opu.supports(usage),
                        "seed {seed}: {usage} on {}",
                        opu.name()
                    );
                }
            }
        }
    }
}
