//! Property-based tests for instruction-set modelling: the construction
//! rules, the closure, and the artificial-resource machinery on random
//! instruction sets.

use dspcc_ir::{Program, Rt, Usage};
use dspcc_isa::classes::RtClass;
use dspcc_isa::{
    apply_artificial_resources, artificial_resources, ClassId, Classification, CoverStrategy,
    InstructionSet,
};
use proptest::prelude::*;

fn arb_desired(class_count: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..class_count, 1..=class_count.min(5)),
        0..5,
    )
    .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

fn classification_for(n: usize) -> Classification {
    let mut c = Classification::new();
    for i in 0..n {
        c.add(RtClass::new(
            &format!("C{i}"),
            format!("opu_{i}").as_str(),
            &["op"],
        ));
    }
    c
}

fn one_rt_per_class(n: usize) -> Program {
    let mut p = Program::new();
    for i in 0..n {
        let mut rt = Rt::new(format!("rt_{i}"));
        rt.add_usage(format!("opu_{i}").as_str(), Usage::token("op"));
        p.add_rt(rt);
    }
    p
}

proptest! {
    /// The closure of any desired types satisfies construction rules 1–4.
    #[test]
    fn closure_always_validates((n, desired) in (2usize..8).prop_flat_map(|n| (Just(n), arb_desired(n)))) {
        let iset = InstructionSet::closure(n, &desired);
        prop_assert!(iset.validate().is_ok());
        // Every desired type is allowed.
        for t in &desired {
            let ids: Vec<ClassId> = t.iter().map(|&c| ClassId(c)).collect();
            prop_assert!(iset.allows(&ids), "{t:?} lost in closure");
        }
    }

    /// `allows` is exactly "independent set of the conflict graph".
    #[test]
    fn allows_iff_conflict_free((n, desired) in (2usize..7).prop_flat_map(|n| (Just(n), arb_desired(n)))) {
        let iset = InstructionSet::closure(n, &desired);
        let g = iset.conflict_graph();
        // Enumerate all subsets (n ≤ 6 ⇒ ≤ 64).
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let independent = set.iter().enumerate().all(|(k, &a)| {
                set[k + 1..].iter().all(|&b| !g.has_edge(a, b))
            });
            let ids: Vec<ClassId> = set.iter().map(|&c| ClassId(c)).collect();
            prop_assert_eq!(
                iset.allows(&ids),
                independent,
                "subset {:?} mismatch", set
            );
        }
    }

    /// After installing artificial resources, RT-pair compatibility equals
    /// conflict-graph non-adjacency — for every cover strategy.
    #[test]
    fn artificial_resources_realise_the_conflict_graph(
        (n, desired) in (2usize..7).prop_flat_map(|n| (Just(n), arb_desired(n))),
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            CoverStrategy::PerEdge,
            CoverStrategy::GreedyMaximal,
            CoverStrategy::ExactMinimum,
        ][strategy_idx];
        let iset = InstructionSet::closure(n, &desired);
        let g = iset.conflict_graph();
        let classification = classification_for(n);
        let ars = artificial_resources(&iset, &classification, strategy);
        let mut program = one_rt_per_class(n);
        apply_artificial_resources(&mut program, &classification, &ars);
        for a in 0..n {
            for b in (a + 1)..n {
                let compatible = program
                    .rt(dspcc_ir::RtId(a as u32))
                    .compatible_with(program.rt(dspcc_ir::RtId(b as u32)));
                prop_assert_eq!(compatible, !g.has_edge(a, b),
                    "classes {}/{} with {:?}", a, b, strategy);
            }
        }
    }

    /// Merging classes on the same OPU never changes an RT's class lookup
    /// result's OPU.
    #[test]
    fn class_of_stable_under_identification(n in 2usize..10) {
        let c = classification_for(n);
        let p = one_rt_per_class(n);
        for (i, (_, rt)) in p.rts().enumerate() {
            let id = c.class_of(rt).expect("each RT has a class");
            prop_assert_eq!(c.class(id).opu().name(), format!("opu_{i}"));
        }
    }
}
