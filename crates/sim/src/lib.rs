//! Cycle-accurate simulator for `dspcc` in-house DSP cores.
//!
//! Executes **encoded microcode** ([`dspcc_encode::Microcode`]) on the
//! datapath model: register files are read at issue, results land at
//! issue + latency (the buffered paths of figure 2), RAM and ROM behave as
//! synchronous memories, the ACU implements the circular-buffer address
//! arithmetic, and the controller loops the program once per sample frame
//! (the hardware time-loop of figure 4).
//!
//! The paper could only *claim* code quality via occupation statistics;
//! running the generated code against the bit-exact reference interpreter
//! (`dspcc_dfg::Interpreter`) is the verification the original flow
//! lacked, and it is the backbone of this reproduction's test suite.
//!
//! # Performance notes
//!
//! The verifier runs once per compiled frame in every differential test
//! and design-space sweep, so its inner loop is a hot path of the whole
//! flow. [`CoreSim`] therefore **pre-decodes** the microcode at
//! construction into a dense [`MicroOp`] table: every OPU, operation,
//! operand register, destination register, immediate, and latency is
//! resolved to a flat index or value exactly once. Per cycle the executor
//! walks a `&[MicroOp]` slice, reads operands out of one flat `Vec<i64>`
//! register array, and retires pending writebacks from a fixed-capacity
//! ring indexed by `cycle % (max_latency + 1)` — no string hashing, no
//! `BTreeMap` walks, no per-cycle allocation. The original
//! interpret-every-cycle implementation is retained in [`reference`] as
//! the differential oracle; a property test pins the two bit-identical,
//! cycle for cycle.

pub mod reference;

use std::fmt;

use dspcc_arch::{Datapath, OpuKind};
use dspcc_encode::{decode, Microcode};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Wrong number of input samples for a frame.
    InputCount {
        /// Samples provided.
        got: usize,
        /// Samples expected (one per DFG input port).
        expected: usize,
    },
    /// An input unit read with no sample left in its stream.
    InputUnderflow {
        /// The input OPU.
        opu: String,
    },
    /// A RAM or ROM access out of range.
    AddressOutOfRange {
        /// The memory unit.
        opu: String,
        /// The offending address.
        addr: i64,
    },
    /// The frame produced fewer output writes than the port map expects.
    MissingOutputs {
        /// Writes expected.
        expected: usize,
        /// Writes seen.
        got: usize,
    },
    /// An OPU kind the simulator cannot execute (application-specific
    /// units need user-provided semantics).
    Unsupported {
        /// The OPU.
        opu: String,
    },
    /// The microcode references a register outside the datapath's files
    /// — a word no encoder produced (corrupted or hand-forged
    /// microcode), caught at construction.
    RegisterOutOfRange {
        /// The register file (or the unknown name the word referenced).
        rf: String,
        /// The offending register index.
        index: u32,
    },
    /// An instruction word failed to decode (corrupted or hand-forged
    /// microcode), caught at construction.
    BadWord {
        /// The program-memory address of the word.
        cycle: usize,
        /// The decoder's diagnostic.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputCount { got, expected } => {
                write!(f, "frame got {got} input samples, expected {expected}")
            }
            SimError::InputUnderflow { opu } => {
                write!(f, "input unit `{opu}` read past the end of its stream")
            }
            SimError::AddressOutOfRange { opu, addr } => {
                write!(f, "`{opu}` access out of range at address {addr}")
            }
            SimError::MissingOutputs { expected, got } => {
                write!(f, "frame produced {got} output writes, expected {expected}")
            }
            SimError::Unsupported { opu } => {
                write!(f, "simulator has no semantics for `{opu}`")
            }
            SimError::RegisterOutOfRange { rf, index } => {
                write!(f, "register {index} out of range for `{rf}`")
            }
            SimError::BadWord { cycle, detail } => {
                write!(f, "instruction word {cycle} does not decode: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Fully resolved operation selector: the string `op` of the decoded
/// action mapped to a branch the executor can match on directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    InputRead,
    OutputWrite,
    ProgConst,
    RomConst,
    AcuAddMod,
    RamRead,
    RamWrite,
    Mult,
    Add,
    AddClip,
    Sub,
    Pass,
    PassClip,
    /// ASUs, unknown OPUs, unknown ALU ops: reported as
    /// [`SimError::Unsupported`] when (and only when) executed, exactly
    /// like the decode-per-cycle path.
    Unsupported,
}

/// One pre-decoded OPU action: every name resolved to a flat index at
/// construction.
#[derive(Debug, Clone)]
struct MicroOp {
    op: Op,
    /// Index into the OPU name table (errors, stream indexing).
    opu: u32,
    /// Flat register indices of the operand ports the operation reads.
    /// Unused ports stay 0: the executor loads them unconditionally (the
    /// branchless hot path) and ignores the value, which is why the flat
    /// register array is never allocated empty.
    src: [u32; 2],
    /// RAM/ROM slot or input/output stream slot, depending on `op`.
    mem: u32,
    /// Decoded immediate (program constant or ROM address).
    imm: i64,
    /// Writeback delay in cycles (≥ 1).
    latency: u32,
    /// Range of flat destination registers in the dest arena.
    dests: (u32, u32),
}

/// The core simulator. One instance holds the pre-decoded program tables
/// and the full architectural state: register files, data RAM, the
/// input/output streams, and the cycle counter. State persists across
/// frames (delay lines!).
///
/// # Example
///
/// See the crate tests: the canonical use is
/// `dfg → rtgen → schedule → regalloc → encode → CoreSim`, then
/// comparing [`CoreSim::step_frame`] with
/// `dspcc_dfg::Interpreter::step` frame by frame.
#[derive(Debug, Clone)]
pub struct CoreSim {
    // Pre-decoded program: one range into `micro` per instruction word.
    instr: Vec<(u32, u32)>,
    micro: Vec<MicroOp>,
    dest_regs: Vec<u32>,
    // Name tables for errors and the debug accessors.
    opu_names: Vec<String>,
    rf_layout: Vec<(String, u32, u32)>,
    ram_names: Vec<String>,
    // Frame I/O plans: `(stream slot, DFG port)` in issue order.
    input_plan: Vec<(u32, usize)>,
    output_plan: Vec<(u32, usize)>,
    input_port_count: usize,
    output_port_count: usize,
    region_mask: i64,
    format: dspcc_num::WordFormat,
    // Architectural state.
    regs: Vec<i64>,
    ram: Vec<Vec<i64>>,
    rom: Vec<Vec<i64>>,
    /// Writeback ring: slot `due % ring.len()` holds the `(flat register,
    /// value)` pairs landing at cycle `due`. The ring has
    /// `max_latency + 1` slots, so a slot is always drained before any
    /// write could wrap onto it.
    ring: Vec<Vec<(u32, i64)>>,
    // Per-frame stream scratch, reused across frames.
    in_data: Vec<Vec<i64>>,
    in_cursor: Vec<usize>,
    out_data: Vec<Vec<i64>>,
    out_cursor: Vec<usize>,
    ram_writes: Vec<(u32, u32, i64)>,
    /// Register writebacks `(ring slot, flat reg, value)` of the cycle in
    /// flight: committed to `ring` only when the whole cycle executed —
    /// a mid-cycle [`SimError`] discards them, exactly like the
    /// reference's per-cycle write buffer.
    rf_writes: Vec<(u32, u32, i64)>,
    cycle: u64,
    frames: u64,
}

impl CoreSim {
    /// Builds a simulator for `microcode` on `dp`, pre-decoding the whole
    /// program, with all state zeroed (hardware reset).
    ///
    /// # Errors
    ///
    /// [`SimError::BadWord`] when an instruction word does not decode and
    /// [`SimError::RegisterOutOfRange`] when the microcode references a
    /// register outside the datapath's files — both describe corrupted or
    /// hand-forged microcode (no encoder produces such words; these used
    /// to panic, and typed errors are what lets the fault-injection audit
    /// count them as *detected*). Other malformed actions become
    /// [`SimError::Unsupported`] at execution, matching the
    /// decode-per-cycle path.
    pub fn new(dp: &Datapath, microcode: &Microcode) -> Result<Self, SimError> {
        let format = microcode.word_format;
        // Flat register-file layout: (name, base, size) in datapath order.
        let mut rf_layout = Vec::new();
        let mut total_regs = 0u32;
        for r in dp.register_files() {
            rf_layout.push((r.name().to_owned(), total_regs, r.size()));
            total_regs += r.size();
        }
        let flat_reg = |rf: &str, reg: u32| -> Result<u32, SimError> {
            let &(_, base, size) = rf_layout
                .iter()
                .find(|(name, _, _)| name == rf)
                .ok_or_else(|| SimError::RegisterOutOfRange {
                    rf: rf.to_owned(),
                    index: reg,
                })?;
            if reg >= size {
                return Err(SimError::RegisterOutOfRange {
                    rf: rf.to_owned(),
                    index: reg,
                });
            }
            Ok(base + reg)
        };
        // OPU tables and memory slots.
        let mut opu_names: Vec<String> = Vec::new();
        let mut ram_names = Vec::new();
        let mut ram = Vec::new();
        let mut rom_slots = Vec::new();
        let mut rom = Vec::new();
        let mut in_slots: Vec<(String, u32)> = Vec::new();
        let mut out_slots: Vec<(String, u32)> = Vec::new();
        for o in dp.opus() {
            opu_names.push(o.name().to_owned());
            match o.kind() {
                OpuKind::Ram => {
                    ram_names.push(o.name().to_owned());
                    ram.push(vec![0i64; o.memory_size() as usize]);
                }
                OpuKind::Rom => {
                    let mut image = microcode.rom_image.clone();
                    image.resize(o.memory_size() as usize, 0);
                    rom_slots.push(o.name().to_owned());
                    rom.push(image);
                }
                OpuKind::Input => {
                    in_slots.push((o.name().to_owned(), in_slots.len() as u32));
                }
                OpuKind::Output => {
                    out_slots.push((o.name().to_owned(), out_slots.len() as u32));
                }
                _ => {}
            }
        }
        // Stream slots for I/O-order names that name no datapath unit:
        // the sample is queued and never read (input) or read and never
        // produced (output) — faithful to the name-keyed maps.
        let slot_of = |slots: &mut Vec<(String, u32)>, name: &str| -> u32 {
            if let Some(&(_, s)) = slots.iter().find(|(n, _)| n == name) {
                return s;
            }
            let s = slots.len() as u32;
            slots.push((name.to_owned(), s));
            s
        };
        let input_plan: Vec<(u32, usize)> = microcode
            .input_order
            .iter()
            .map(|(opu, port)| (slot_of(&mut in_slots, opu), *port))
            .collect();
        let output_plan: Vec<(u32, usize)> = microcode
            .output_order
            .iter()
            .map(|(opu, port)| (slot_of(&mut out_slots, opu), *port))
            .collect();
        // Pre-decode every instruction word into the dense tables.
        let mut instr = Vec::with_capacity(microcode.words.len());
        let mut micro = Vec::new();
        let mut dest_regs = Vec::new();
        let mut max_latency = 1u32;
        for (cycle, word) in microcode.words.iter().enumerate() {
            let start = micro.len() as u32;
            let decoded =
                decode(word, &microcode.layout, format).map_err(|e| SimError::BadWord {
                    cycle,
                    detail: e.to_string(),
                })?;
            for action in decoded.actions {
                let spec = dp.opu(&action.opu);
                let opu = match opu_names.iter().position(|n| n == &action.opu) {
                    Some(i) => i as u32,
                    None => {
                        opu_names.push(action.opu.clone());
                        opu_names.len() as u32 - 1
                    }
                };
                let mut src = [0u32; 2];
                let mut resolve_srcs = |ports: &[usize]| -> Result<(), SimError> {
                    let spec = spec.expect("resolved op implies known opu");
                    for &p in ports {
                        src[p] = flat_reg(&spec.inputs()[p], action.operand_regs[p])?;
                    }
                    Ok(())
                };
                let (op, mem, imm) = match spec.map(|s| s.kind()) {
                    Some(OpuKind::Input) => {
                        let slot = slot_of(&mut in_slots, &action.opu);
                        (Op::InputRead, slot, 0)
                    }
                    Some(OpuKind::Output) => {
                        resolve_srcs(&[0])?;
                        let slot = slot_of(&mut out_slots, &action.opu);
                        (Op::OutputWrite, slot, 0)
                    }
                    Some(OpuKind::ProgConst) => {
                        (Op::ProgConst, 0, action.imm.expect("prgc imm decoded"))
                    }
                    Some(OpuKind::Rom) => {
                        let slot = rom_slots
                            .iter()
                            .position(|n| n == &action.opu)
                            .expect("rom opu has an image")
                            as u32;
                        (Op::RomConst, slot, action.imm.expect("rom imm decoded"))
                    }
                    Some(OpuKind::Acu) => {
                        resolve_srcs(&[0, 1])?;
                        (Op::AcuAddMod, 0, 0)
                    }
                    Some(OpuKind::Ram) => {
                        let slot = ram_names
                            .iter()
                            .position(|n| n == &action.opu)
                            .expect("ram opu has a memory")
                            as u32;
                        if action.op == "write" {
                            resolve_srcs(&[0, 1])?;
                            (Op::RamWrite, slot, 0)
                        } else {
                            resolve_srcs(&[0])?;
                            (Op::RamRead, slot, 0)
                        }
                    }
                    Some(OpuKind::Mult) => {
                        resolve_srcs(&[0, 1])?;
                        (Op::Mult, 0, 0)
                    }
                    Some(OpuKind::Alu) => {
                        let alu_op = match action.op.as_str() {
                            "add" => Some(Op::Add),
                            "add_clip" => Some(Op::AddClip),
                            "sub" => Some(Op::Sub),
                            "pass" => Some(Op::Pass),
                            "pass_clip" => Some(Op::PassClip),
                            _ => None,
                        };
                        match alu_op {
                            Some(op) => {
                                resolve_srcs(if matches!(op, Op::Pass | Op::PassClip) {
                                    &[0]
                                } else {
                                    &[0, 1]
                                })?;
                                (op, 0, 0)
                            }
                            None => (Op::Unsupported, 0, 0),
                        }
                    }
                    Some(OpuKind::Asu) | None => (Op::Unsupported, 0, 0),
                };
                let latency = spec
                    .and_then(|s| s.latency_of(&action.op))
                    .unwrap_or(1)
                    .max(1);
                max_latency = max_latency.max(latency);
                let dest_start = dest_regs.len() as u32;
                for (rf, reg) in &action.dests {
                    dest_regs.push(flat_reg(rf, *reg)?);
                }
                micro.push(MicroOp {
                    op,
                    opu,
                    src,
                    mem,
                    imm,
                    latency,
                    dests: (dest_start, dest_regs.len() as u32),
                });
            }
            instr.push((start, micro.len() as u32));
        }
        let input_port_count = microcode
            .input_order
            .iter()
            .map(|&(_, p)| p + 1)
            .max()
            .unwrap_or(0);
        let output_port_count = microcode
            .output_order
            .iter()
            .map(|&(_, p)| p + 1)
            .max()
            .unwrap_or(0);
        Ok(CoreSim {
            instr,
            micro,
            dest_regs,
            opu_names,
            ram_names,
            input_plan,
            output_plan,
            input_port_count,
            output_port_count,
            region_mask: microcode.region_size as i64 - 1,
            format,
            // At least one slot: the executor reads `src` ports
            // unconditionally, and index 0 is the harmless default for
            // ports an operation ignores (even on a register-file-less
            // datapath).
            regs: vec![0; (total_regs as usize).max(1)],
            ram,
            rom,
            ring: vec![Vec::new(); max_latency as usize + 1],
            in_data: vec![Vec::new(); in_slots.len()],
            in_cursor: vec![0; in_slots.len()],
            out_data: vec![Vec::new(); out_slots.len()],
            out_cursor: vec![0; out_slots.len()],
            ram_writes: Vec::new(),
            rf_writes: Vec::new(),
            rf_layout,
            cycle: 0,
            frames: 0,
        })
    }

    /// Frames executed so far.
    pub fn frames_run(&self) -> u64 {
        self.frames
    }

    /// Total cycles executed so far.
    pub fn cycles_run(&self) -> u64 {
        self.cycle
    }

    /// Current value of a register, for debugging.
    pub fn register(&self, rf: &str, index: u32) -> Option<i64> {
        let &(_, base, size) = self.rf_layout.iter().find(|(name, _, _)| name == rf)?;
        if index < size {
            Some(self.regs[(base + index) as usize])
        } else {
            None
        }
    }

    /// Contents of a data RAM, for debugging.
    pub fn memory(&self, opu: &str) -> Option<&[i64]> {
        let i = self.ram_names.iter().position(|n| n == opu)?;
        Some(&self.ram[i])
    }

    /// Executes one time-loop iteration (one sample frame).
    ///
    /// `inputs` are indexed by DFG input port; the returned vector by DFG
    /// output port — the same convention as the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on malformed input or microcode that walks out
    /// of memory bounds.
    pub fn step_frame(&mut self, inputs: &[i64]) -> Result<Vec<i64>, SimError> {
        if inputs.len() != self.input_port_count {
            return Err(SimError::InputCount {
                got: inputs.len(),
                expected: self.input_port_count,
            });
        }
        // Queue this frame's samples per input stream, in read order.
        for q in &mut self.in_data {
            q.clear();
        }
        for c in &mut self.in_cursor {
            *c = 0;
        }
        for &(slot, port) in &self.input_plan {
            self.in_data[slot as usize].push(inputs[port]);
        }
        for q in &mut self.out_data {
            q.clear();
        }
        let ring_size = self.ring.len() as u64;
        for &(start, end) in &self.instr {
            // Writes due this cycle land before the cycle executes.
            let slot = (self.cycle % ring_size) as usize;
            for (reg, value) in self.ring[slot].drain(..) {
                self.regs[reg as usize] = value;
            }
            self.ram_writes.clear();
            self.rf_writes.clear();
            for m in &self.micro[start as usize..end as usize] {
                let a = self.regs[m.src[0] as usize];
                let b = self.regs[m.src[1] as usize];
                let result: Option<i64> = match m.op {
                    Op::InputRead => {
                        let q = &self.in_data[m.mem as usize];
                        let c = &mut self.in_cursor[m.mem as usize];
                        if *c < q.len() {
                            *c += 1;
                            Some(q[*c - 1])
                        } else {
                            return Err(SimError::InputUnderflow {
                                opu: self.opu_names[m.opu as usize].clone(),
                            });
                        }
                    }
                    Op::OutputWrite => {
                        self.out_data[m.mem as usize].push(a);
                        None
                    }
                    Op::ProgConst => Some(m.imm),
                    Op::RomConst => {
                        let image = &self.rom[m.mem as usize];
                        match image.get(m.imm as usize) {
                            Some(&v) => Some(v),
                            None => {
                                return Err(SimError::AddressOutOfRange {
                                    opu: self.opu_names[m.opu as usize].clone(),
                                    addr: m.imm,
                                })
                            }
                        }
                    }
                    Op::AcuAddMod => {
                        // addr = (V & !(M−1)) | ((fp + V) & (M−1))
                        let mask = self.region_mask;
                        Some((b & !mask) | ((a + b) & mask))
                    }
                    Op::RamRead | Op::RamWrite => {
                        let memory = &self.ram[m.mem as usize];
                        if a < 0 || a >= memory.len() as i64 {
                            return Err(SimError::AddressOutOfRange {
                                opu: self.opu_names[m.opu as usize].clone(),
                                addr: a,
                            });
                        }
                        if m.op == Op::RamWrite {
                            self.ram_writes.push((m.mem, a as u32, b));
                            None
                        } else {
                            Some(memory[a as usize])
                        }
                    }
                    Op::Mult => Some(self.format.mult(a, b)),
                    Op::Add => Some(self.format.add(a, b)),
                    Op::AddClip => Some(self.format.add_clip(a, b)),
                    Op::Sub => Some(self.format.sub(a, b)),
                    Op::Pass => Some(a),
                    Op::PassClip => Some(self.format.saturate(a)),
                    Op::Unsupported => {
                        return Err(SimError::Unsupported {
                            opu: self.opu_names[m.opu as usize].clone(),
                        })
                    }
                };
                if let Some(value) = result {
                    let due = ((self.cycle + m.latency as u64) % ring_size) as u32;
                    for &reg in &self.dest_regs[m.dests.0 as usize..m.dests.1 as usize] {
                        self.rf_writes.push((due, reg, value));
                    }
                }
            }
            // Memory and register writes land at end of cycle (same-cycle
            // reads see the old contents; a mid-cycle error above discards
            // both buffers, matching the reference).
            for &(mem, addr, data) in &self.ram_writes {
                self.ram[mem as usize][addr as usize] = data;
            }
            for &(slot, reg, value) in &self.rf_writes {
                self.ring[slot as usize].push((reg, value));
            }
            self.cycle += 1;
        }
        // Frame drain: let outstanding writes land before the next frame
        // reuses the registers? No — the time-loop re-enters immediately;
        // values crossing the frame boundary live in RAM, and in-flight
        // register writes land naturally in the next frame's early cycles.
        // Collect outputs by port.
        let mut outputs = vec![0i64; self.output_port_count];
        for c in &mut self.out_cursor {
            *c = 0;
        }
        let mut seen = 0usize;
        for &(slot, port) in &self.output_plan {
            let q = &self.out_data[slot as usize];
            let c = &mut self.out_cursor[slot as usize];
            if *c < q.len() {
                outputs[port] = q[*c];
                *c += 1;
                seen += 1;
            } else {
                return Err(SimError::MissingOutputs {
                    expected: self.output_plan.len(),
                    got: seen,
                });
            }
        }
        self.frames += 1;
        Ok(outputs)
    }

    /// Runs one frame per row of `input_frames`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, input_frames: &[Vec<i64>]) -> Result<Vec<Vec<i64>>, SimError> {
        input_frames.iter().map(|f| self.step_frame(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::DatapathBuilder;
    use dspcc_dfg::{parse, Dfg, Interpreter};
    use dspcc_encode::{allocate_registers, encode, FieldLayout, Microcode};
    use dspcc_num::WordFormat;
    use dspcc_rtgen::{lower, LowerOptions};
    use dspcc_sched::deps::DependenceGraph;
    use dspcc_sched::list::{list_schedule, ListConfig};

    /// The same small audio-style core as rtgen's tests.
    fn test_core() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_acu_base", 2)
            .register_file("rf_acu_off", 8)
            .register_file("rf_ram_addr", 8)
            .register_file("rf_ram_data", 8)
            .register_file("rf_mult_c", 8)
            .register_file("rf_mult_x", 8)
            .register_file("rf_alu_a", 8)
            .register_file("rf_alu_b", 8)
            .register_file("rf_opb_1", 4)
            .register_file("rf_opb_2", 4)
            .opu(OpuKind::Input, "ipb", &[("read", 1)])
            .output("ipb", "bus_ipb")
            .opu(OpuKind::Output, "opb_1", &[("write", 1)])
            .inputs("opb_1", &["rf_opb_1"])
            .opu(OpuKind::Output, "opb_2", &[("write", 1)])
            .inputs("opb_2", &["rf_opb_2"])
            .opu(OpuKind::Acu, "acu", &[("addmod", 1)])
            .inputs("acu", &["rf_acu_base", "rf_acu_off"])
            .output("acu", "bus_acu")
            .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
            .memory("ram", 64)
            .inputs("ram", &["rf_ram_addr", "rf_ram_data"])
            .output("ram", "bus_ram")
            .opu(OpuKind::Rom, "rom", &[("const", 1)])
            .memory("rom", 64)
            .output("rom", "bus_rom")
            .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
            .output("prgc", "bus_prgc")
            .opu(OpuKind::Mult, "mult", &[("mult", 1)])
            .inputs("mult", &["rf_mult_c", "rf_mult_x"])
            .output("mult", "bus_mult")
            .opu(
                OpuKind::Alu,
                "alu",
                &[
                    ("add", 1),
                    ("add_clip", 1),
                    ("sub", 1),
                    ("pass", 1),
                    ("pass_clip", 1),
                ],
            )
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .write_port("rf_acu_base", &["bus_acu"])
            .write_port("rf_acu_off", &["bus_prgc"])
            .write_port("rf_ram_addr", &["bus_acu"])
            .write_port("rf_ram_data", &["bus_alu", "bus_ipb"])
            .write_port("rf_mult_c", &["bus_rom", "bus_prgc"])
            .write_port("rf_mult_x", &["bus_ram", "bus_ipb", "bus_alu"])
            .write_port(
                "rf_alu_a",
                &["bus_mult", "bus_ram", "bus_ipb", "bus_prgc", "bus_alu"],
            )
            .write_port("rf_alu_b", &["bus_alu", "bus_mult", "bus_ram"])
            .write_port("rf_opb_1", &["bus_alu"])
            .write_port("rf_opb_2", &["bus_alu"])
            .build()
            .unwrap()
    }

    /// Full pipeline: source → microcode + simulator.
    fn compile(src: &str) -> (Datapath, Dfg, Microcode) {
        let dp = test_core();
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let lowering = lower(&dfg, &dp, &LowerOptions::default()).unwrap();
        let deps =
            DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
        let schedule = list_schedule(&lowering.program, &deps, &ListConfig::default()).unwrap();
        schedule.verify(&lowering.program, &deps).unwrap();
        let format = WordFormat::q15();
        let pinned = vec![lowering.fp_reg.clone()];
        let assignment = allocate_registers(&lowering.program, &schedule, &dp, &pinned).unwrap();
        let layout = FieldLayout::derive(&dp, format);
        let words = encode(
            &assignment.program,
            &schedule,
            &layout,
            &lowering.immediates,
            format,
        )
        .unwrap();
        let microcode = Microcode {
            words,
            layout,
            rom_image: lowering
                .rom_image
                .iter()
                .map(|&v| format.from_f64(v))
                .collect(),
            region_size: lowering.ram_layout.region_size,
            output_order: lowering.output_order.clone(),
            input_order: lowering.input_order.clone(),
            word_format: format,
        };
        (dp, dfg, microcode)
    }

    fn differential(src: &str, frames: &[Vec<i64>]) {
        let (dp, dfg, microcode) = compile(src);
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let mut interp = Interpreter::new(&dfg, WordFormat::q15());
        for (i, frame) in frames.iter().enumerate() {
            let expected = interp.step(frame);
            let got = sim.step_frame(frame).unwrap();
            assert_eq!(got, expected, "frame {i} diverged for source:\n{src}");
        }
    }

    #[test]
    fn passthrough_matches_interpreter() {
        differential(
            "input u; output y; y = pass(u);",
            &[vec![123], vec![-456], vec![0], vec![32767]],
        );
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        differential(
            "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);",
            &[vec![1000], vec![-2000], vec![32767], vec![-32768]],
        );
    }

    #[test]
    fn unit_delay_matches_interpreter() {
        differential(
            "input u; output y; y = pass(u@1);",
            &[vec![11], vec![22], vec![33], vec![44], vec![55]],
        );
    }

    #[test]
    fn deep_delay_matches_interpreter() {
        differential(
            "input u; output y; y = pass(u@3);",
            &(0..10).map(|i| vec![i * 100]).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn feedback_signal_matches_interpreter() {
        // First-order IIR: s = u/2 + s@1/2.
        differential(
            "input u; signal s; coeff a = 0.5; coeff b = 0.5; output y;
             s = add(mlt(a, u), mlt(b, s@1));
             y = pass_clip(s);",
            &(0..12)
                .map(|i| vec![(i % 5) * 1000 - 2000])
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn treble_section_matches_interpreter() {
        let src = "
            input u; signal v; output y;
            coeff d1 = 0.25; coeff d2 = 0.125; coeff e1 = -0.5;
            x0 := u@2;
            m  := mlt(d2, x0);
            a  := pass(m);
            x2 := v@1;
            m  := mlt(e1, x2);
            a  := add(m, a);
            x1 := u@1;
            m  := mlt(d1, x1);
            rd := add_clip(m, a);
            v  = rd;
            y  = rd;";
        differential(
            src,
            &(0..16)
                .map(|i| vec![if i == 0 { 20000 } else { 0 }])
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn two_inputs_two_outputs_match() {
        differential(
            "input l; input r; output yl; output yr;
             yl = add(l, r); yr = sub(l, r);",
            &[vec![100, 30], vec![-5, 7], vec![32000, 32000]],
        );
    }

    #[test]
    fn multiple_frames_accumulate_state() {
        // Running average keeps internal RAM state across many frames.
        differential(
            "input u; signal s; coeff h = 0.5; output y;
             s = add(mlt(h, s@1), mlt(h, u)); y = s;",
            &(0..32)
                .map(|i| vec![(i * 37 % 101) * 10])
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn input_arity_surface_matches_interpreter() {
        // The golden model (Interpreter::try_step) and the microcode
        // executor (CoreSim::step_frame) must agree on *which* frames are
        // malformed, not only on outputs: for every arity, both error or
        // both succeed, with identical got/expected counts.
        let (dp, dfg, microcode) = compile(
            "input l; input r; output y; y = add(l, r);
             /* two ports so arity 0,1,3,4 are all wrong */",
        );
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let mut interp = Interpreter::new(&dfg, WordFormat::q15());
        for arity in 0..5usize {
            let frame = vec![7i64; arity];
            let golden = interp.try_step(&frame);
            let micro = sim.step_frame(&frame);
            match (golden, micro) {
                (Ok(expected), Ok(got)) => {
                    assert_eq!(arity, 2);
                    assert_eq!(got, expected);
                }
                (
                    Err(dspcc_dfg::StepError::InputCount {
                        got: g0,
                        expected: e0,
                    }),
                    Err(SimError::InputCount {
                        got: g1,
                        expected: e1,
                    }),
                ) => {
                    assert_eq!((g0, e0), (g1, e1), "arity {arity}");
                    assert_eq!(g0, arity);
                }
                (g, m) => panic!("arity {arity}: surfaces disagree: {g:?} vs {m:?}"),
            }
        }
        // Neither side consumed state on the malformed frames: the counts
        // advanced once (the single well-formed frame).
        assert_eq!(sim.frames_run(), 1);
        assert_eq!(interp.frames_run(), 1);
    }

    #[test]
    fn input_underflow_reported() {
        // Tampered IO plan: the program reads two samples from the IPB but
        // the input order claims only one — the second read underflows.
        let (dp, _, mut microcode) = compile(
            "input l; input r; output y; y = add(l, r);
             /* both inputs arrive through the single ipb */",
        );
        assert_eq!(microcode.input_order.len(), 2);
        microcode.input_order.truncate(1);
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let err = sim.step_frame(&[5]).unwrap_err();
        assert_eq!(
            err,
            SimError::InputUnderflow {
                opu: "ipb".to_owned()
            }
        );
        assert!(err.to_string().contains("past the end"));
    }

    #[test]
    fn missing_outputs_reported() {
        // Tampered IO plan: the output order expects one more write than
        // the program performs.
        let (dp, _, mut microcode) = compile("input u; output y; y = pass(u);");
        microcode.output_order.push(("opb_1".to_owned(), 1));
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let err = sim.step_frame(&[5]).unwrap_err();
        assert_eq!(
            err,
            SimError::MissingOutputs {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn ram_address_out_of_range_reported() {
        // Valid microcode for a 64-word RAM executed on a datapath whose
        // RAM shrank to 2 words: the delay-line region walks out of
        // bounds. Both the fast path and the reference report it (and
        // agree), leaving the frame uncommitted.
        let (_, _, microcode) = compile("input u; output y; y = pass(u@3);");
        let small = {
            let mut b = DatapathBuilder::new();
            b = b
                .register_file("rf_acu_base", 2)
                .register_file("rf_acu_off", 8)
                .register_file("rf_ram_addr", 8)
                .register_file("rf_ram_data", 8)
                .register_file("rf_mult_c", 8)
                .register_file("rf_mult_x", 8)
                .register_file("rf_alu_a", 8)
                .register_file("rf_alu_b", 8)
                .register_file("rf_opb_1", 4)
                .register_file("rf_opb_2", 4)
                .opu(OpuKind::Input, "ipb", &[("read", 1)])
                .opu(OpuKind::Output, "opb_1", &[("write", 1)])
                .opu(OpuKind::Output, "opb_2", &[("write", 1)])
                .opu(OpuKind::Acu, "acu", &[("addmod", 1)])
                .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
                .opu(OpuKind::Rom, "rom", &[("const", 1)])
                .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
                .opu(OpuKind::Mult, "mult", &[("mult", 1)])
                .opu(
                    OpuKind::Alu,
                    "alu",
                    &[
                        ("add", 1),
                        ("add_clip", 1),
                        ("sub", 1),
                        ("pass", 1),
                        ("pass_clip", 1),
                    ],
                );
            b = b
                .output("ipb", "bus_ipb")
                .inputs("opb_1", &["rf_opb_1"])
                .inputs("opb_2", &["rf_opb_2"])
                .inputs("acu", &["rf_acu_base", "rf_acu_off"])
                .output("acu", "bus_acu")
                .memory("ram", 2)
                .inputs("ram", &["rf_ram_addr", "rf_ram_data"])
                .output("ram", "bus_ram")
                .memory("rom", 64)
                .output("rom", "bus_rom")
                .output("prgc", "bus_prgc")
                .inputs("mult", &["rf_mult_c", "rf_mult_x"])
                .output("mult", "bus_mult")
                .inputs("alu", &["rf_alu_a", "rf_alu_b"])
                .output("alu", "bus_alu")
                .write_port("rf_acu_base", &["bus_acu"])
                .write_port("rf_acu_off", &["bus_prgc"])
                .write_port("rf_ram_addr", &["bus_acu"])
                .write_port("rf_ram_data", &["bus_alu", "bus_ipb"])
                .write_port("rf_mult_c", &["bus_rom", "bus_prgc"])
                .write_port("rf_mult_x", &["bus_ram", "bus_ipb", "bus_alu"])
                .write_port(
                    "rf_alu_a",
                    &["bus_mult", "bus_ram", "bus_ipb", "bus_prgc", "bus_alu"],
                )
                .write_port("rf_alu_b", &["bus_alu", "bus_mult", "bus_ram"])
                .write_port("rf_opb_1", &["bus_alu"])
                .write_port("rf_opb_2", &["bus_alu"]);
            b.build().unwrap()
        };
        let mut fast = CoreSim::new(&small, &microcode).unwrap();
        let mut oracle = reference::ReferenceSim::new(&small, &microcode).unwrap();
        let fe = fast.step_frame(&[1]).unwrap_err();
        let oe = oracle.step_frame(&[1]).unwrap_err();
        assert!(
            matches!(fe, SimError::AddressOutOfRange { ref opu, .. } if opu == "ram"),
            "{fe}"
        );
        assert_eq!(fe, oe, "fast path and reference disagree on the error");
        assert!(fe.to_string().contains("out of range"));
    }

    #[test]
    fn unsupported_unit_reported() {
        // The same microcode executed on a datapath whose ALU became an
        // application-specific unit: decode still resolves the action but
        // execution has no semantics for it.
        let (dp, _, microcode) = compile("input u; output y; y = pass(u);");
        let mut b = DatapathBuilder::new();
        for rf in dp.register_files() {
            b = b.register_file(rf.name(), rf.size());
        }
        for opu in dp.opus() {
            let ops: Vec<(&str, u32)> = opu.ops().collect();
            let kind = if opu.name() == "alu" {
                OpuKind::Asu
            } else {
                opu.kind()
            };
            b = b.opu(kind, opu.name(), &ops);
            let inputs: Vec<&str> = opu.inputs().iter().map(String::as_str).collect();
            if !inputs.is_empty() {
                b = b.inputs(opu.name(), &inputs);
            }
            if let Some(bus) = opu.output_bus() {
                b = b.output(opu.name(), bus);
            }
            if opu.memory_size() > 0 {
                b = b.memory(opu.name(), opu.memory_size());
            }
        }
        for rf in dp.register_files() {
            let buses: Vec<&str> = rf.write_buses().iter().map(String::as_str).collect();
            if !buses.is_empty() {
                b = b.write_port(rf.name(), &buses);
            }
        }
        let asu_dp = b.build().unwrap();
        let mut sim = CoreSim::new(&asu_dp, &microcode).unwrap();
        let err = sim.step_frame(&[5]).unwrap_err();
        assert_eq!(
            err,
            SimError::Unsupported {
                opu: "alu".to_owned()
            }
        );
        assert!(err.to_string().contains("no semantics"));
    }

    #[test]
    fn wrong_input_count_errors() {
        let (dp, _, microcode) = compile("input u; output y; y = pass(u);");
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let err = sim.step_frame(&[1, 2]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InputCount {
                got: 2,
                expected: 1
            }
        ));
        assert!(err.to_string().contains("expected 1"));
    }

    #[test]
    fn frames_and_cycles_counted() {
        let (dp, _, microcode) = compile("input u; output y; y = pass(u);");
        let len = microcode.len() as u64;
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        sim.step_frame(&[1]).unwrap();
        sim.step_frame(&[2]).unwrap();
        assert_eq!(sim.frames_run(), 2);
        assert_eq!(sim.cycles_run(), 2 * len);
    }

    #[test]
    fn register_inspection() {
        let (dp, _, microcode) = compile("input u; output y; y = pass(u@1);");
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        sim.step_frame(&[5]).unwrap();
        // The frame pointer lives in rf_acu_base register 0 and stepped
        // once: (0 + M-1) mod M = region_size - 1.
        let fp = sim.register("rf_acu_base", 0).unwrap();
        assert_eq!(fp, microcode.region_size as i64 - 1);
        assert_eq!(sim.register("rf_ghost", 0), None);
    }

    #[test]
    fn predecoded_matches_reference_cycle_for_cycle() {
        // The fast path and the decode-per-cycle oracle agree on outputs,
        // every register file, and every RAM word after every frame.
        let (dp, _, microcode) = compile(
            "input u; signal s; coeff a = 0.5; coeff b = 0.25; output y;
             s = add(mlt(a, u), mlt(b, s@1));
             y = pass_clip(s);",
        );
        let mut fast = CoreSim::new(&dp, &microcode).unwrap();
        let mut oracle = reference::ReferenceSim::new(&dp, &microcode).unwrap();
        for i in 0..24i64 {
            let frame = vec![(i * 997) % 30000 - 15000];
            assert_eq!(
                fast.step_frame(&frame).unwrap(),
                oracle.step_frame(&frame).unwrap(),
                "outputs diverged at frame {i}"
            );
            assert_eq!(fast.cycles_run(), oracle.cycles_run());
            for rf in dp.register_files() {
                for r in 0..rf.size() {
                    assert_eq!(
                        fast.register(rf.name(), r),
                        oracle.register(rf.name(), r),
                        "register {}[{r}] diverged at frame {i}",
                        rf.name()
                    );
                }
            }
            assert_eq!(fast.memory("ram"), oracle.memory("ram"));
        }
    }
}
