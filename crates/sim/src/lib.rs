//! Cycle-accurate simulator for `dspcc` in-house DSP cores.
//!
//! Executes **encoded microcode** ([`dspcc_encode::Microcode`]) on the
//! datapath model: register files are read at issue, results land at
//! issue + latency (the buffered paths of figure 2), RAM and ROM behave as
//! synchronous memories, the ACU implements the circular-buffer address
//! arithmetic, and the controller loops the program once per sample frame
//! (the hardware time-loop of figure 4).
//!
//! The paper could only *claim* code quality via occupation statistics;
//! running the generated code against the bit-exact reference interpreter
//! (`dspcc_dfg::Interpreter`) is the verification the original flow
//! lacked, and it is the backbone of this reproduction's test suite.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dspcc_arch::{Datapath, OpuKind};
use dspcc_encode::{decode, DecodedInstruction, Microcode};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Wrong number of input samples for a frame.
    InputCount {
        /// Samples provided.
        got: usize,
        /// Samples expected (one per DFG input port).
        expected: usize,
    },
    /// An input unit read with no sample left in its stream.
    InputUnderflow {
        /// The input OPU.
        opu: String,
    },
    /// A RAM or ROM access out of range.
    AddressOutOfRange {
        /// The memory unit.
        opu: String,
        /// The offending address.
        addr: i64,
    },
    /// The frame produced fewer output writes than the port map expects.
    MissingOutputs {
        /// Writes expected.
        expected: usize,
        /// Writes seen.
        got: usize,
    },
    /// An OPU kind the simulator cannot execute (application-specific
    /// units need user-provided semantics).
    Unsupported {
        /// The OPU.
        opu: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputCount { got, expected } => {
                write!(f, "frame got {got} input samples, expected {expected}")
            }
            SimError::InputUnderflow { opu } => {
                write!(f, "input unit `{opu}` read past the end of its stream")
            }
            SimError::AddressOutOfRange { opu, addr } => {
                write!(f, "`{opu}` access out of range at address {addr}")
            }
            SimError::MissingOutputs { expected, got } => {
                write!(f, "frame produced {got} output writes, expected {expected}")
            }
            SimError::Unsupported { opu } => {
                write!(f, "simulator has no semantics for `{opu}`")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-OPU static info the executor needs.
#[derive(Debug, Clone)]
struct OpuInfo {
    kind: OpuKind,
    inputs: Vec<String>,
    latency: BTreeMap<String, u32>,
}

/// The core simulator. One instance holds the full architectural state:
/// register files, data RAM, the input/output streams, and the cycle
/// counter. State persists across frames (delay lines!).
///
/// # Example
///
/// See the crate tests: the canonical use is
/// `dfg → rtgen → schedule → regalloc → encode → CoreSim`, then
/// comparing [`CoreSim::step_frame`] with
/// `dspcc_dfg::Interpreter::step` frame by frame.
#[derive(Debug, Clone)]
pub struct CoreSim {
    program: Vec<DecodedInstruction>,
    opus: BTreeMap<String, OpuInfo>,
    rf: BTreeMap<String, Vec<i64>>,
    ram: BTreeMap<String, Vec<i64>>,
    rom: BTreeMap<String, Vec<i64>>,
    region_mask: i64,
    format: dspcc_num::WordFormat,
    input_order: Vec<(String, usize)>,
    output_order: Vec<(String, usize)>,
    input_port_count: usize,
    output_port_count: usize,
    /// Pending register writes: (due_cycle, rf, reg, value).
    pending: VecDeque<(u64, String, u32, i64)>,
    cycle: u64,
    frames: u64,
}

impl CoreSim {
    /// Builds a simulator for `microcode` on `dp`, with all state zeroed
    /// (hardware reset).
    pub fn new(dp: &Datapath, microcode: &Microcode) -> Result<Self, SimError> {
        let format = microcode.word_format;
        let program = microcode
            .words
            .iter()
            .map(|w| decode(w, &microcode.layout, format))
            .collect();
        let mut opus = BTreeMap::new();
        let mut ram = BTreeMap::new();
        let mut rom = BTreeMap::new();
        for o in dp.opus() {
            opus.insert(
                o.name().to_owned(),
                OpuInfo {
                    kind: o.kind(),
                    inputs: o.inputs().to_vec(),
                    latency: o.ops().map(|(op, l)| (op.to_owned(), l)).collect(),
                },
            );
            match o.kind() {
                OpuKind::Ram => {
                    ram.insert(o.name().to_owned(), vec![0; o.memory_size() as usize]);
                }
                OpuKind::Rom => {
                    let mut image = microcode.rom_image.clone();
                    image.resize(o.memory_size() as usize, 0);
                    rom.insert(o.name().to_owned(), image);
                }
                _ => {}
            }
        }
        let rf = dp
            .register_files()
            .iter()
            .map(|r| (r.name().to_owned(), vec![0i64; r.size() as usize]))
            .collect();
        let input_port_count = microcode
            .input_order
            .iter()
            .map(|&(_, p)| p + 1)
            .max()
            .unwrap_or(0);
        let output_port_count = microcode
            .output_order
            .iter()
            .map(|&(_, p)| p + 1)
            .max()
            .unwrap_or(0);
        Ok(CoreSim {
            program,
            opus,
            rf,
            ram,
            rom,
            region_mask: microcode.region_size as i64 - 1,
            format,
            input_order: microcode.input_order.clone(),
            output_order: microcode.output_order.clone(),
            input_port_count,
            output_port_count,
            pending: VecDeque::new(),
            cycle: 0,
            frames: 0,
        })
    }

    /// Frames executed so far.
    pub fn frames_run(&self) -> u64 {
        self.frames
    }

    /// Total cycles executed so far.
    pub fn cycles_run(&self) -> u64 {
        self.cycle
    }

    /// Current value of a register, for debugging.
    pub fn register(&self, rf: &str, index: u32) -> Option<i64> {
        self.rf.get(rf).and_then(|v| v.get(index as usize)).copied()
    }

    /// Contents of a data RAM, for debugging.
    pub fn memory(&self, opu: &str) -> Option<&[i64]> {
        self.ram.get(opu).map(|v| v.as_slice())
    }

    /// Executes one time-loop iteration (one sample frame).
    ///
    /// `inputs` are indexed by DFG input port; the returned vector by DFG
    /// output port — the same convention as the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on malformed input or microcode that walks out
    /// of memory bounds.
    pub fn step_frame(&mut self, inputs: &[i64]) -> Result<Vec<i64>, SimError> {
        if inputs.len() != self.input_port_count {
            return Err(SimError::InputCount {
                got: inputs.len(),
                expected: self.input_port_count,
            });
        }
        // Queue this frame's samples per input unit, in read order.
        let mut in_fifo: BTreeMap<&str, VecDeque<i64>> = BTreeMap::new();
        for (opu, port) in &self.input_order {
            in_fifo
                .entry(opu.as_str())
                .or_default()
                .push_back(inputs[*port]);
        }
        let mut out_events: BTreeMap<String, VecDeque<i64>> = BTreeMap::new();

        let program_len = self.program.len();
        for pc in 0..program_len {
            // Writes due by now land before the cycle executes.
            let cycle = self.cycle;
            while let Some(&(due, _, _, _)) = self.pending.front() {
                if due > cycle {
                    break;
                }
                let (_, rf, reg, value) = self.pending.pop_front().expect("peeked");
                self.rf.get_mut(&rf).expect("known rf")[reg as usize] = value;
            }
            let instr = self.program[pc].clone();
            let mut ram_writes: Vec<(String, i64, i64)> = Vec::new();
            let mut rf_writes: Vec<(u64, String, u32, i64)> = Vec::new();
            for action in &instr.actions {
                let info =
                    self.opus
                        .get(&action.opu)
                        .cloned()
                        .ok_or_else(|| SimError::Unsupported {
                            opu: action.opu.clone(),
                        })?;
                let operand = |port: usize| -> i64 {
                    let rf_name = &info.inputs[port];
                    let reg = action.operand_regs[port] as usize;
                    self.rf[rf_name][reg]
                };
                let result: Option<i64> = match info.kind {
                    OpuKind::Input => {
                        let fifo = in_fifo.get_mut(action.opu.as_str());
                        match fifo.and_then(|f| f.pop_front()) {
                            Some(v) => Some(v),
                            None => {
                                return Err(SimError::InputUnderflow {
                                    opu: action.opu.clone(),
                                })
                            }
                        }
                    }
                    OpuKind::Output => {
                        out_events
                            .entry(action.opu.clone())
                            .or_default()
                            .push_back(operand(0));
                        None
                    }
                    OpuKind::ProgConst => Some(action.imm.expect("prgc imm decoded")),
                    OpuKind::Rom => {
                        let addr = action.imm.expect("rom imm decoded");
                        let image = &self.rom[&action.opu];
                        match image.get(addr as usize) {
                            Some(&v) => Some(v),
                            None => {
                                return Err(SimError::AddressOutOfRange {
                                    opu: action.opu.clone(),
                                    addr,
                                })
                            }
                        }
                    }
                    OpuKind::Acu => {
                        // addr = (V & !(M−1)) | ((fp + V) & (M−1))
                        let base = operand(0);
                        let v = operand(1);
                        let m = self.region_mask;
                        Some((v & !m) | ((base + v) & m))
                    }
                    OpuKind::Ram => {
                        let addr = operand(0);
                        let size = self.ram[&action.opu].len() as i64;
                        if addr < 0 || addr >= size {
                            return Err(SimError::AddressOutOfRange {
                                opu: action.opu.clone(),
                                addr,
                            });
                        }
                        if action.op == "write" {
                            let data = operand(1);
                            ram_writes.push((action.opu.clone(), addr, data));
                            None
                        } else {
                            Some(self.ram[&action.opu][addr as usize])
                        }
                    }
                    OpuKind::Mult => Some(self.format.mult(operand(0), operand(1))),
                    OpuKind::Alu => Some(match action.op.as_str() {
                        "add" => self.format.add(operand(0), operand(1)),
                        "add_clip" => self.format.add_clip(operand(0), operand(1)),
                        "sub" => self.format.sub(operand(0), operand(1)),
                        "pass" => operand(0),
                        "pass_clip" => self.format.saturate(operand(0)),
                        _ => {
                            return Err(SimError::Unsupported {
                                opu: action.opu.clone(),
                            })
                        }
                    }),
                    OpuKind::Asu => {
                        return Err(SimError::Unsupported {
                            opu: action.opu.clone(),
                        })
                    }
                };
                if let Some(value) = result {
                    let latency = info.latency.get(&action.op).copied().unwrap_or(1) as u64;
                    for (rf, reg) in &action.dests {
                        rf_writes.push((self.cycle + latency, rf.clone(), *reg, value));
                    }
                }
            }
            // Memory and register updates land at end of cycle.
            for (opu, addr, data) in ram_writes {
                self.ram.get_mut(&opu).expect("known ram")[addr as usize] = data;
            }
            for w in rf_writes {
                // Keep the queue sorted by due cycle.
                let pos = self.pending.iter().position(|p| p.0 > w.0);
                match pos {
                    Some(i) => self.pending.insert(i, w),
                    None => self.pending.push_back(w),
                }
            }
            self.cycle += 1;
        }
        // Frame drain: let outstanding writes land before the next frame
        // reuses the registers? No — the time-loop re-enters immediately;
        // values crossing the frame boundary live in RAM, and in-flight
        // register writes land naturally in the next frame's early cycles.
        // Collect outputs by port.
        let mut outputs = vec![0i64; self.output_port_count];
        let mut seen = 0usize;
        for (opu, port) in &self.output_order {
            match out_events.get_mut(opu).and_then(|q| q.pop_front()) {
                Some(v) => {
                    outputs[*port] = v;
                    seen += 1;
                }
                None => {
                    return Err(SimError::MissingOutputs {
                        expected: self.output_order.len(),
                        got: seen,
                    })
                }
            }
        }
        self.frames += 1;
        Ok(outputs)
    }

    /// Runs one frame per row of `input_frames`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, input_frames: &[Vec<i64>]) -> Result<Vec<Vec<i64>>, SimError> {
        input_frames.iter().map(|f| self.step_frame(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::DatapathBuilder;
    use dspcc_dfg::{parse, Dfg, Interpreter};
    use dspcc_encode::{allocate_registers, encode, FieldLayout, Microcode};
    use dspcc_num::WordFormat;
    use dspcc_rtgen::{lower, LowerOptions};
    use dspcc_sched::deps::DependenceGraph;
    use dspcc_sched::list::{list_schedule, ListConfig};

    /// The same small audio-style core as rtgen's tests.
    fn test_core() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_acu_base", 2)
            .register_file("rf_acu_off", 8)
            .register_file("rf_ram_addr", 8)
            .register_file("rf_ram_data", 8)
            .register_file("rf_mult_c", 8)
            .register_file("rf_mult_x", 8)
            .register_file("rf_alu_a", 8)
            .register_file("rf_alu_b", 8)
            .register_file("rf_opb_1", 4)
            .register_file("rf_opb_2", 4)
            .opu(OpuKind::Input, "ipb", &[("read", 1)])
            .output("ipb", "bus_ipb")
            .opu(OpuKind::Output, "opb_1", &[("write", 1)])
            .inputs("opb_1", &["rf_opb_1"])
            .opu(OpuKind::Output, "opb_2", &[("write", 1)])
            .inputs("opb_2", &["rf_opb_2"])
            .opu(OpuKind::Acu, "acu", &[("addmod", 1)])
            .inputs("acu", &["rf_acu_base", "rf_acu_off"])
            .output("acu", "bus_acu")
            .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
            .memory("ram", 64)
            .inputs("ram", &["rf_ram_addr", "rf_ram_data"])
            .output("ram", "bus_ram")
            .opu(OpuKind::Rom, "rom", &[("const", 1)])
            .memory("rom", 64)
            .output("rom", "bus_rom")
            .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
            .output("prgc", "bus_prgc")
            .opu(OpuKind::Mult, "mult", &[("mult", 1)])
            .inputs("mult", &["rf_mult_c", "rf_mult_x"])
            .output("mult", "bus_mult")
            .opu(
                OpuKind::Alu,
                "alu",
                &[
                    ("add", 1),
                    ("add_clip", 1),
                    ("sub", 1),
                    ("pass", 1),
                    ("pass_clip", 1),
                ],
            )
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .write_port("rf_acu_base", &["bus_acu"])
            .write_port("rf_acu_off", &["bus_prgc"])
            .write_port("rf_ram_addr", &["bus_acu"])
            .write_port("rf_ram_data", &["bus_alu", "bus_ipb"])
            .write_port("rf_mult_c", &["bus_rom", "bus_prgc"])
            .write_port("rf_mult_x", &["bus_ram", "bus_ipb", "bus_alu"])
            .write_port(
                "rf_alu_a",
                &["bus_mult", "bus_ram", "bus_ipb", "bus_prgc", "bus_alu"],
            )
            .write_port("rf_alu_b", &["bus_alu", "bus_mult", "bus_ram"])
            .write_port("rf_opb_1", &["bus_alu"])
            .write_port("rf_opb_2", &["bus_alu"])
            .build()
            .unwrap()
    }

    /// Full pipeline: source → microcode + simulator.
    fn compile(src: &str) -> (Datapath, Dfg, Microcode) {
        let dp = test_core();
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let lowering = lower(&dfg, &dp, &LowerOptions::default()).unwrap();
        let deps =
            DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
        let schedule = list_schedule(&lowering.program, &deps, &ListConfig::default()).unwrap();
        schedule.verify(&lowering.program, &deps).unwrap();
        let format = WordFormat::q15();
        let pinned = vec![lowering.fp_reg.clone()];
        let assignment = allocate_registers(&lowering.program, &schedule, &dp, &pinned).unwrap();
        let layout = FieldLayout::derive(&dp, format);
        let words = encode(
            &assignment.program,
            &schedule,
            &layout,
            &lowering.immediates,
            format,
        )
        .unwrap();
        let microcode = Microcode {
            words,
            layout,
            rom_image: lowering
                .rom_image
                .iter()
                .map(|&v| format.from_f64(v))
                .collect(),
            region_size: lowering.ram_layout.region_size,
            output_order: lowering.output_order.clone(),
            input_order: lowering.input_order.clone(),
            word_format: format,
        };
        (dp, dfg, microcode)
    }

    fn differential(src: &str, frames: &[Vec<i64>]) {
        let (dp, dfg, microcode) = compile(src);
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let mut interp = Interpreter::new(&dfg, WordFormat::q15());
        for (i, frame) in frames.iter().enumerate() {
            let expected = interp.step(frame);
            let got = sim.step_frame(frame).unwrap();
            assert_eq!(got, expected, "frame {i} diverged for source:\n{src}");
        }
    }

    #[test]
    fn passthrough_matches_interpreter() {
        differential(
            "input u; output y; y = pass(u);",
            &[vec![123], vec![-456], vec![0], vec![32767]],
        );
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        differential(
            "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);",
            &[vec![1000], vec![-2000], vec![32767], vec![-32768]],
        );
    }

    #[test]
    fn unit_delay_matches_interpreter() {
        differential(
            "input u; output y; y = pass(u@1);",
            &[vec![11], vec![22], vec![33], vec![44], vec![55]],
        );
    }

    #[test]
    fn deep_delay_matches_interpreter() {
        differential(
            "input u; output y; y = pass(u@3);",
            &(0..10).map(|i| vec![i * 100]).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn feedback_signal_matches_interpreter() {
        // First-order IIR: s = u/2 + s@1/2.
        differential(
            "input u; signal s; coeff a = 0.5; coeff b = 0.5; output y;
             s = add(mlt(a, u), mlt(b, s@1));
             y = pass_clip(s);",
            &(0..12)
                .map(|i| vec![(i % 5) * 1000 - 2000])
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn treble_section_matches_interpreter() {
        let src = "
            input u; signal v; output y;
            coeff d1 = 0.25; coeff d2 = 0.125; coeff e1 = -0.5;
            x0 := u@2;
            m  := mlt(d2, x0);
            a  := pass(m);
            x2 := v@1;
            m  := mlt(e1, x2);
            a  := add(m, a);
            x1 := u@1;
            m  := mlt(d1, x1);
            rd := add_clip(m, a);
            v  = rd;
            y  = rd;";
        differential(
            src,
            &(0..16)
                .map(|i| vec![if i == 0 { 20000 } else { 0 }])
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn two_inputs_two_outputs_match() {
        differential(
            "input l; input r; output yl; output yr;
             yl = add(l, r); yr = sub(l, r);",
            &[vec![100, 30], vec![-5, 7], vec![32000, 32000]],
        );
    }

    #[test]
    fn multiple_frames_accumulate_state() {
        // Running average keeps internal RAM state across many frames.
        differential(
            "input u; signal s; coeff h = 0.5; output y;
             s = add(mlt(h, s@1), mlt(h, u)); y = s;",
            &(0..32)
                .map(|i| vec![(i * 37 % 101) * 10])
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn wrong_input_count_errors() {
        let (dp, _, microcode) = compile("input u; output y; y = pass(u);");
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        let err = sim.step_frame(&[1, 2]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InputCount {
                got: 2,
                expected: 1
            }
        ));
        assert!(err.to_string().contains("expected 1"));
    }

    #[test]
    fn frames_and_cycles_counted() {
        let (dp, _, microcode) = compile("input u; output y; y = pass(u);");
        let len = microcode.len() as u64;
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        sim.step_frame(&[1]).unwrap();
        sim.step_frame(&[2]).unwrap();
        assert_eq!(sim.frames_run(), 2);
        assert_eq!(sim.cycles_run(), 2 * len);
    }

    #[test]
    fn register_inspection() {
        let (dp, _, microcode) = compile("input u; output y; y = pass(u@1);");
        let mut sim = CoreSim::new(&dp, &microcode).unwrap();
        sim.step_frame(&[5]).unwrap();
        // The frame pointer lives in rf_acu_base register 0 and stepped
        // once: (0 + M-1) mod M = region_size - 1.
        let fp = sim.register("rf_acu_base", 0).unwrap();
        assert_eq!(fp, microcode.region_size as i64 - 1);
        assert_eq!(sim.register("rf_ghost", 0), None);
    }
}
