//! The decode-per-cycle reference simulator.
//!
//! This is the original `CoreSim` implementation: every cycle re-reads the
//! decoded instruction, looks execution state up in string-keyed
//! `BTreeMap`s, and keeps pending register writebacks in a sorted
//! `VecDeque`. It is retained — like `dspcc_graph::naive` — as the
//! differential oracle for the pre-decoded fast path in the crate root
//! (property-tested cycle-for-cycle equal) and as the baseline of the
//! `sim_predecoded` benchmark group.

use std::collections::{BTreeMap, VecDeque};

use dspcc_arch::{Datapath, OpuKind};
use dspcc_encode::{decode, DecodedInstruction, Microcode};

use crate::SimError;

/// Per-OPU static info the executor needs.
#[derive(Debug, Clone)]
struct OpuInfo {
    kind: OpuKind,
    inputs: Vec<String>,
    latency: BTreeMap<String, u32>,
}

/// The reference simulator: architecturally identical to
/// [`CoreSim`](crate::CoreSim), implemented with per-cycle instruction
/// interpretation over name-keyed state.
#[derive(Debug, Clone)]
pub struct ReferenceSim {
    program: Vec<DecodedInstruction>,
    opus: BTreeMap<String, OpuInfo>,
    rf: BTreeMap<String, Vec<i64>>,
    ram: BTreeMap<String, Vec<i64>>,
    rom: BTreeMap<String, Vec<i64>>,
    region_mask: i64,
    format: dspcc_num::WordFormat,
    input_order: Vec<(String, usize)>,
    output_order: Vec<(String, usize)>,
    input_port_count: usize,
    output_port_count: usize,
    /// Pending register writes: (due_cycle, rf, reg, value).
    pending: VecDeque<(u64, String, u32, i64)>,
    cycle: u64,
    frames: u64,
}

impl ReferenceSim {
    /// Builds a simulator for `microcode` on `dp`, with all state zeroed
    /// (hardware reset).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadWord`] when an instruction word does not
    /// decode under the datapath's field layout, mirroring
    /// [`crate::CoreSim::new`].
    pub fn new(dp: &Datapath, microcode: &Microcode) -> Result<Self, SimError> {
        let format = microcode.word_format;
        let program = microcode
            .words
            .iter()
            .enumerate()
            .map(|(cycle, w)| {
                decode(w, &microcode.layout, format).map_err(|e| SimError::BadWord {
                    cycle,
                    detail: e.to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut opus = BTreeMap::new();
        let mut ram = BTreeMap::new();
        let mut rom = BTreeMap::new();
        for o in dp.opus() {
            opus.insert(
                o.name().to_owned(),
                OpuInfo {
                    kind: o.kind(),
                    inputs: o.inputs().to_vec(),
                    latency: o.ops().map(|(op, l)| (op.to_owned(), l)).collect(),
                },
            );
            match o.kind() {
                OpuKind::Ram => {
                    ram.insert(o.name().to_owned(), vec![0; o.memory_size() as usize]);
                }
                OpuKind::Rom => {
                    let mut image = microcode.rom_image.clone();
                    image.resize(o.memory_size() as usize, 0);
                    rom.insert(o.name().to_owned(), image);
                }
                _ => {}
            }
        }
        let rf = dp
            .register_files()
            .iter()
            .map(|r| (r.name().to_owned(), vec![0i64; r.size() as usize]))
            .collect();
        let input_port_count = microcode
            .input_order
            .iter()
            .map(|&(_, p)| p + 1)
            .max()
            .unwrap_or(0);
        let output_port_count = microcode
            .output_order
            .iter()
            .map(|&(_, p)| p + 1)
            .max()
            .unwrap_or(0);
        Ok(ReferenceSim {
            program,
            opus,
            rf,
            ram,
            rom,
            region_mask: microcode.region_size as i64 - 1,
            format,
            input_order: microcode.input_order.clone(),
            output_order: microcode.output_order.clone(),
            input_port_count,
            output_port_count,
            pending: VecDeque::new(),
            cycle: 0,
            frames: 0,
        })
    }

    /// Frames executed so far.
    pub fn frames_run(&self) -> u64 {
        self.frames
    }

    /// Total cycles executed so far.
    pub fn cycles_run(&self) -> u64 {
        self.cycle
    }

    /// Current value of a register, for debugging.
    pub fn register(&self, rf: &str, index: u32) -> Option<i64> {
        self.rf.get(rf).and_then(|v| v.get(index as usize)).copied()
    }

    /// Contents of a data RAM, for debugging.
    pub fn memory(&self, opu: &str) -> Option<&[i64]> {
        self.ram.get(opu).map(|v| v.as_slice())
    }

    /// Executes one time-loop iteration (one sample frame).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on malformed input or microcode that walks out
    /// of memory bounds.
    pub fn step_frame(&mut self, inputs: &[i64]) -> Result<Vec<i64>, SimError> {
        if inputs.len() != self.input_port_count {
            return Err(SimError::InputCount {
                got: inputs.len(),
                expected: self.input_port_count,
            });
        }
        // Queue this frame's samples per input unit, in read order.
        let mut in_fifo: BTreeMap<&str, VecDeque<i64>> = BTreeMap::new();
        for (opu, port) in &self.input_order {
            in_fifo
                .entry(opu.as_str())
                .or_default()
                .push_back(inputs[*port]);
        }
        let mut out_events: BTreeMap<String, VecDeque<i64>> = BTreeMap::new();

        let program_len = self.program.len();
        for pc in 0..program_len {
            // Writes due by now land before the cycle executes.
            let cycle = self.cycle;
            while let Some(&(due, _, _, _)) = self.pending.front() {
                if due > cycle {
                    break;
                }
                let (_, rf, reg, value) = self.pending.pop_front().expect("peeked");
                self.rf.get_mut(&rf).expect("known rf")[reg as usize] = value;
            }
            let instr = self.program[pc].clone();
            let mut ram_writes: Vec<(String, i64, i64)> = Vec::new();
            let mut rf_writes: Vec<(u64, String, u32, i64)> = Vec::new();
            for action in &instr.actions {
                let info =
                    self.opus
                        .get(&action.opu)
                        .cloned()
                        .ok_or_else(|| SimError::Unsupported {
                            opu: action.opu.clone(),
                        })?;
                let operand = |port: usize| -> i64 {
                    let rf_name = &info.inputs[port];
                    let reg = action.operand_regs[port] as usize;
                    self.rf[rf_name][reg]
                };
                let result: Option<i64> = match info.kind {
                    OpuKind::Input => {
                        let fifo = in_fifo.get_mut(action.opu.as_str());
                        match fifo.and_then(|f| f.pop_front()) {
                            Some(v) => Some(v),
                            None => {
                                return Err(SimError::InputUnderflow {
                                    opu: action.opu.clone(),
                                })
                            }
                        }
                    }
                    OpuKind::Output => {
                        out_events
                            .entry(action.opu.clone())
                            .or_default()
                            .push_back(operand(0));
                        None
                    }
                    OpuKind::ProgConst => Some(action.imm.expect("prgc imm decoded")),
                    OpuKind::Rom => {
                        let addr = action.imm.expect("rom imm decoded");
                        let image = &self.rom[&action.opu];
                        match image.get(addr as usize) {
                            Some(&v) => Some(v),
                            None => {
                                return Err(SimError::AddressOutOfRange {
                                    opu: action.opu.clone(),
                                    addr,
                                })
                            }
                        }
                    }
                    OpuKind::Acu => {
                        // addr = (V & !(M−1)) | ((fp + V) & (M−1))
                        let base = operand(0);
                        let v = operand(1);
                        let m = self.region_mask;
                        Some((v & !m) | ((base + v) & m))
                    }
                    OpuKind::Ram => {
                        let addr = operand(0);
                        let size = self.ram[&action.opu].len() as i64;
                        if addr < 0 || addr >= size {
                            return Err(SimError::AddressOutOfRange {
                                opu: action.opu.clone(),
                                addr,
                            });
                        }
                        if action.op == "write" {
                            let data = operand(1);
                            ram_writes.push((action.opu.clone(), addr, data));
                            None
                        } else {
                            Some(self.ram[&action.opu][addr as usize])
                        }
                    }
                    OpuKind::Mult => Some(self.format.mult(operand(0), operand(1))),
                    OpuKind::Alu => Some(match action.op.as_str() {
                        "add" => self.format.add(operand(0), operand(1)),
                        "add_clip" => self.format.add_clip(operand(0), operand(1)),
                        "sub" => self.format.sub(operand(0), operand(1)),
                        "pass" => operand(0),
                        "pass_clip" => self.format.saturate(operand(0)),
                        _ => {
                            return Err(SimError::Unsupported {
                                opu: action.opu.clone(),
                            })
                        }
                    }),
                    OpuKind::Asu => {
                        return Err(SimError::Unsupported {
                            opu: action.opu.clone(),
                        })
                    }
                };
                if let Some(value) = result {
                    let latency = info.latency.get(&action.op).copied().unwrap_or(1) as u64;
                    for (rf, reg) in &action.dests {
                        rf_writes.push((self.cycle + latency, rf.clone(), *reg, value));
                    }
                }
            }
            // Memory and register updates land at end of cycle.
            for (opu, addr, data) in ram_writes {
                self.ram.get_mut(&opu).expect("known ram")[addr as usize] = data;
            }
            for w in rf_writes {
                // Keep the queue sorted by due cycle.
                let pos = self.pending.iter().position(|p| p.0 > w.0);
                match pos {
                    Some(i) => self.pending.insert(i, w),
                    None => self.pending.push_back(w),
                }
            }
            self.cycle += 1;
        }
        // Frame drain: let outstanding writes land before the next frame
        // reuses the registers? No — the time-loop re-enters immediately;
        // values crossing the frame boundary live in RAM, and in-flight
        // register writes land naturally in the next frame's early cycles.
        // Collect outputs by port.
        let mut outputs = vec![0i64; self.output_port_count];
        let mut seen = 0usize;
        for (opu, port) in &self.output_order {
            match out_events.get_mut(opu).and_then(|q| q.pop_front()) {
                Some(v) => {
                    outputs[*port] = v;
                    seen += 1;
                }
                None => {
                    return Err(SimError::MissingOutputs {
                        expected: self.output_order.len(),
                        got: seen,
                    })
                }
            }
        }
        self.frames += 1;
        Ok(outputs)
    }

    /// Runs one frame per row of `input_frames`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, input_frames: &[Vec<i64>]) -> Result<Vec<Vec<i64>>, SimError> {
        input_frames.iter().map(|f| self.step_frame(f)).collect()
    }
}
