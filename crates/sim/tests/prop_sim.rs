//! Property test: the pre-decoded simulator fast path is cycle-for-cycle
//! bit-identical to the retained decode-per-cycle reference
//! (`dspcc_sim::reference::ReferenceSim`) on random audio frames — same
//! outputs, same cycle counter, same register files, same RAM, after
//! every frame.

use dspcc_arch::{Datapath, DatapathBuilder, OpuKind};
use dspcc_dfg::{parse, Dfg};
use dspcc_encode::{allocate_registers, encode, FieldLayout, Microcode};
use dspcc_num::WordFormat;
use dspcc_rtgen::{lower, LowerOptions};
use dspcc_sched::deps::DependenceGraph;
use dspcc_sched::list::{list_schedule, ListConfig};
use dspcc_sim::{reference::ReferenceSim, CoreSim};
use proptest::prelude::*;

/// The small audio-style core the sim unit tests use.
fn test_core() -> Datapath {
    DatapathBuilder::new()
        .register_file("rf_acu_base", 2)
        .register_file("rf_acu_off", 8)
        .register_file("rf_ram_addr", 8)
        .register_file("rf_ram_data", 8)
        .register_file("rf_mult_c", 8)
        .register_file("rf_mult_x", 8)
        .register_file("rf_alu_a", 8)
        .register_file("rf_alu_b", 8)
        .register_file("rf_opb_1", 4)
        .register_file("rf_opb_2", 4)
        .opu(OpuKind::Input, "ipb", &[("read", 1)])
        .output("ipb", "bus_ipb")
        .opu(OpuKind::Output, "opb_1", &[("write", 1)])
        .inputs("opb_1", &["rf_opb_1"])
        .opu(OpuKind::Output, "opb_2", &[("write", 1)])
        .inputs("opb_2", &["rf_opb_2"])
        .opu(OpuKind::Acu, "acu", &[("addmod", 1)])
        .inputs("acu", &["rf_acu_base", "rf_acu_off"])
        .output("acu", "bus_acu")
        .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
        .memory("ram", 64)
        .inputs("ram", &["rf_ram_addr", "rf_ram_data"])
        .output("ram", "bus_ram")
        .opu(OpuKind::Rom, "rom", &[("const", 1)])
        .memory("rom", 64)
        .output("rom", "bus_rom")
        .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
        .output("prgc", "bus_prgc")
        .opu(OpuKind::Mult, "mult", &[("mult", 1)])
        .inputs("mult", &["rf_mult_c", "rf_mult_x"])
        .output("mult", "bus_mult")
        .opu(
            OpuKind::Alu,
            "alu",
            &[
                ("add", 1),
                ("add_clip", 1),
                ("sub", 1),
                ("pass", 1),
                ("pass_clip", 1),
            ],
        )
        .inputs("alu", &["rf_alu_a", "rf_alu_b"])
        .output("alu", "bus_alu")
        .write_port("rf_acu_base", &["bus_acu"])
        .write_port("rf_acu_off", &["bus_prgc"])
        .write_port("rf_ram_addr", &["bus_acu"])
        .write_port("rf_ram_data", &["bus_alu", "bus_ipb"])
        .write_port("rf_mult_c", &["bus_rom", "bus_prgc"])
        .write_port("rf_mult_x", &["bus_ram", "bus_ipb", "bus_alu"])
        .write_port(
            "rf_alu_a",
            &["bus_mult", "bus_ram", "bus_ipb", "bus_prgc", "bus_alu"],
        )
        .write_port("rf_alu_b", &["bus_alu", "bus_mult", "bus_ram"])
        .write_port("rf_opb_1", &["bus_alu"])
        .write_port("rf_opb_2", &["bus_alu"])
        .build()
        .unwrap()
}

/// Compiles `src` for the test core down to executable microcode.
fn compile(src: &str) -> (Datapath, Microcode) {
    let dp = test_core();
    let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
    let lowering = lower(&dfg, &dp, &LowerOptions::default()).unwrap();
    let deps =
        DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
    let schedule = list_schedule(&lowering.program, &deps, &ListConfig::default()).unwrap();
    let format = WordFormat::q15();
    let pinned = vec![lowering.fp_reg.clone()];
    let assignment = allocate_registers(&lowering.program, &schedule, &dp, &pinned).unwrap();
    let layout = FieldLayout::derive(&dp, format);
    let words = encode(
        &assignment.program,
        &schedule,
        &layout,
        &lowering.immediates,
        format,
    )
    .unwrap();
    let microcode = Microcode {
        words,
        layout,
        rom_image: lowering
            .rom_image
            .iter()
            .map(|&v| format.from_f64(v))
            .collect(),
        region_size: lowering.ram_layout.region_size,
        output_order: lowering.output_order.clone(),
        input_order: lowering.input_order.clone(),
        word_format: format,
    };
    (dp, microcode)
}

/// Programs covering every executed OPU kind: straight arithmetic, delay
/// lines (RAM/ACU), feedback state, and multi-port I/O.
const SOURCES: [&str; 3] = [
    "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);",
    "input u; signal s; coeff a = 0.5; coeff b = 0.25; output y;
     s = add(mlt(a, u@1), mlt(b, s@1));
     y = pass_clip(s);",
    "input l; input r; output yl; output yr;
     yl = add(l, r); yr = sub(l, r);",
];

/// Input port count of each source above.
const PORTS: [usize; 3] = [1, 1, 2];

fn assert_same_state(dp: &Datapath, fast: &CoreSim, oracle: &ReferenceSim, frame: usize) {
    assert_eq!(fast.cycles_run(), oracle.cycles_run(), "frame {frame}");
    for rf in dp.register_files() {
        for r in 0..rf.size() {
            assert_eq!(
                fast.register(rf.name(), r),
                oracle.register(rf.name(), r),
                "register {}[{r}] diverged at frame {frame}",
                rf.name()
            );
        }
    }
    assert_eq!(fast.memory("ram"), oracle.memory("ram"), "frame {frame}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// (c) Pre-decoded execution is bit-identical to decode-per-cycle,
    /// cycle for cycle, on random frame streams.
    #[test]
    fn predecoded_matches_reference(
        which in 0usize..3,
        frames in proptest::collection::vec(-32768i64..=32767, 1..24),
    ) {
        let (dp, microcode) = compile(SOURCES[which]);
        let ports = PORTS[which];
        let mut fast = CoreSim::new(&dp, &microcode).unwrap();
        let mut oracle = ReferenceSim::new(&dp, &microcode).unwrap();
        for (f, &sample) in frames.iter().enumerate() {
            // Derive one sample per port deterministically from the drawn
            // value so multi-port programs get distinct channel data.
            let frame: Vec<i64> = (0..ports)
                .map(|p| (sample ^ (p as i64 * 12289)).clamp(-32768, 32767))
                .collect();
            let got = fast.step_frame(&frame).unwrap();
            let expected = oracle.step_frame(&frame).unwrap();
            prop_assert_eq!(&got, &expected, "outputs diverged at frame {}", f);
            assert_same_state(&dp, &fast, &oracle, f);
        }
        prop_assert_eq!(fast.frames_run(), oracle.frames_run());
    }
}
