//! Word formats: width-parameterised two's-complement fixed point.

use std::fmt;

/// A two's-complement fixed-point word format of a given bit width.
///
/// The audio core of the paper works on one word length throughout the
/// datapath; the width is a parameter of the core definition (section 5:
/// "program and instruction bus width … are parameters"). Widths from 2 to
/// 48 bits are supported so double-precision accumulators can be modelled
/// too.
///
/// # Example
///
/// ```
/// use dspcc_num::WordFormat;
///
/// let q15 = WordFormat::new(16)?;
/// assert_eq!(q15.min_value(), -32768);
/// assert_eq!(q15.max_value(), 32767);
/// assert_eq!(q15.wrap(32768), -32768);   // adder overflow wraps
/// assert_eq!(q15.saturate(32768), 32767); // clip saturates
/// # Ok::<(), dspcc_num::WordFormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordFormat {
    width: u32,
}

/// Error constructing a [`WordFormat`] with an unsupported width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordFormatError {
    width: u32,
}

impl fmt::Display for WordFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported word width {} (supported: 2..=48 bits)",
            self.width
        )
    }
}

impl std::error::Error for WordFormatError {}

impl WordFormat {
    /// Creates a format of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`WordFormatError`] unless `2 <= width <= 48`.
    pub fn new(width: u32) -> Result<Self, WordFormatError> {
        if (2..=48).contains(&width) {
            Ok(WordFormat { width })
        } else {
            Err(WordFormatError { width })
        }
    }

    /// The standard 16-bit audio format (Q15).
    pub fn q15() -> Self {
        WordFormat { width: 16 }
    }

    /// Bit width of the word.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of fractional bits under the Q(width−1) interpretation.
    pub fn frac_bits(&self) -> u32 {
        self.width - 1
    }

    /// Smallest representable value, −2^(width−1).
    pub fn min_value(&self) -> i64 {
        -(1i64 << (self.width - 1))
    }

    /// Largest representable value, 2^(width−1) − 1.
    pub fn max_value(&self) -> i64 {
        (1i64 << (self.width - 1)) - 1
    }

    /// Returns whether `v` is representable without wrapping.
    pub fn contains(&self, v: i64) -> bool {
        v >= self.min_value() && v <= self.max_value()
    }

    /// Reduces `v` into the word range modulo 2^width (hardware adder
    /// overflow behaviour).
    pub fn wrap(&self, v: i64) -> i64 {
        let modulus = 1i64 << self.width;
        let m = v.rem_euclid(modulus);
        if m > self.max_value() {
            m - modulus
        } else {
            m
        }
    }

    /// Clamps `v` into the word range (the `clip` datapath action).
    pub fn saturate(&self, v: i64) -> i64 {
        v.clamp(self.min_value(), self.max_value())
    }

    /// Wrapping addition: `wrap(a + b)`.
    pub fn add(&self, a: i64, b: i64) -> i64 {
        self.wrap(a + b)
    }

    /// Saturating addition: `saturate(a + b)` — the ALU's `add_clip`.
    pub fn add_clip(&self, a: i64, b: i64) -> i64 {
        self.saturate(a + b)
    }

    /// Wrapping subtraction: `wrap(a - b)`.
    pub fn sub(&self, a: i64, b: i64) -> i64 {
        self.wrap(a - b)
    }

    /// Q-format multiplication: full product, arithmetic shift right by
    /// width−1, wrap.
    ///
    /// The only product that can exceed the range after the shift is
    /// −1.0 × −1.0 (e.g. Q15: −32768²≫15 = 32768), which wraps to −1.0 —
    /// the behaviour of a bare hardware multiplier without a saturation
    /// stage. Use [`WordFormat::mult_clip`] for the saturating variant.
    pub fn mult(&self, a: i64, b: i64) -> i64 {
        debug_assert!(self.contains(a) && self.contains(b));
        self.wrap((a * b) >> self.frac_bits())
    }

    /// Saturating Q-format multiplication.
    pub fn mult_clip(&self, a: i64, b: i64) -> i64 {
        debug_assert!(self.contains(a) && self.contains(b));
        self.saturate((a * b) >> self.frac_bits())
    }

    /// Converts a real number in \[−1, 1) to the nearest representable
    /// fixed-point value, saturating outside the range.
    pub fn from_f64(&self, x: f64) -> i64 {
        let scaled = (x * (1i64 << self.frac_bits()) as f64).round() as i64;
        self.saturate(scaled)
    }

    /// Real value of a fixed-point word under the Q(width−1) interpretation.
    pub fn to_f64(&self, v: i64) -> f64 {
        v as f64 / (1i64 << self.frac_bits()) as f64
    }
}

impl Default for WordFormat {
    /// Defaults to [`WordFormat::q15`], the 16-bit audio format.
    fn default() -> Self {
        WordFormat::q15()
    }
}

impl fmt::Display for WordFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", 1, self.frac_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bounds_enforced() {
        assert!(WordFormat::new(1).is_err());
        assert!(WordFormat::new(49).is_err());
        assert!(WordFormat::new(2).is_ok());
        assert!(WordFormat::new(48).is_ok());
        let err = WordFormat::new(64).unwrap_err();
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn q15_range() {
        let f = WordFormat::q15();
        assert_eq!(f.width(), 16);
        assert_eq!(f.min_value(), -32768);
        assert_eq!(f.max_value(), 32767);
        assert_eq!(f.frac_bits(), 15);
    }

    #[test]
    fn wrap_behaves_like_twos_complement() {
        let f = WordFormat::q15();
        assert_eq!(f.wrap(32767), 32767);
        assert_eq!(f.wrap(32768), -32768);
        assert_eq!(f.wrap(-32769), 32767);
        assert_eq!(f.wrap(65536), 0);
        assert_eq!(f.wrap(0), 0);
    }

    #[test]
    fn saturate_clamps() {
        let f = WordFormat::q15();
        assert_eq!(f.saturate(100_000), 32767);
        assert_eq!(f.saturate(-100_000), -32768);
        assert_eq!(f.saturate(1234), 1234);
    }

    #[test]
    fn add_wraps_add_clip_saturates() {
        let f = WordFormat::q15();
        assert_eq!(f.add(32767, 1), -32768);
        assert_eq!(f.add_clip(32767, 1), 32767);
        assert_eq!(f.add_clip(-32768, -1), -32768);
        assert_eq!(f.add(1000, 2000), 3000);
    }

    #[test]
    fn mult_q_format() {
        let f = WordFormat::q15();
        let half = f.from_f64(0.5);
        assert_eq!(f.mult(half, half), f.from_f64(0.25));
        // -1.0 * -1.0 wraps to -1.0 (hardware multiplier), saturates to ~1.0.
        assert_eq!(f.mult(-32768, -32768), -32768);
        assert_eq!(f.mult_clip(-32768, -32768), 32767);
    }

    #[test]
    fn mult_zero_and_identity() {
        let f = WordFormat::q15();
        assert_eq!(f.mult(0, 12345), 0);
        // Multiplying by ~1.0 (max_value) loses only the LSB scaling.
        let x = 16384; // 0.5
        let y = f.mult(f.max_value(), x);
        assert!((f.to_f64(y) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn from_to_f64_round_trip() {
        let f = WordFormat::q15();
        for &x in &[0.0, 0.5, -0.5, 0.999, -1.0, 0.123456] {
            let v = f.from_f64(x);
            assert!((f.to_f64(v) - x).abs() < 1e-4, "round-trip failed for {x}");
        }
    }

    #[test]
    fn from_f64_saturates_out_of_range() {
        let f = WordFormat::q15();
        assert_eq!(f.from_f64(2.0), f.max_value());
        assert_eq!(f.from_f64(-2.0), f.min_value());
    }

    #[test]
    fn narrow_format() {
        let f = WordFormat::new(4).unwrap(); // range -8..=7
        assert_eq!(f.min_value(), -8);
        assert_eq!(f.max_value(), 7);
        assert_eq!(f.wrap(8), -8);
        assert_eq!(f.add(7, 1), -8);
        assert_eq!(f.add_clip(7, 1), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(WordFormat::q15().to_string(), "Q1.15");
        assert_eq!(WordFormat::default(), WordFormat::q15());
    }

    #[test]
    fn sub_wraps() {
        let f = WordFormat::q15();
        assert_eq!(f.sub(-32768, 1), 32767);
        assert_eq!(f.sub(100, 40), 60);
    }
}
