//! Fixed-point saturating DSP arithmetic for `dspcc`.
//!
//! The in-house DSP cores of the paper (digital audio domain, section 7)
//! compute on two's-complement fixed-point words; the application of
//! figure 7 uses multiplications, additions, *clip* (saturating) actions and
//! delays. This crate defines that arithmetic **once**, so the reference
//! interpreter (`dspcc-dfg`) and the cycle-accurate simulator (`dspcc-sim`)
//! are bit-exact against each other by construction.
//!
//! # Semantics
//!
//! All values are `width`-bit two's-complement integers carried in `i64`.
//! The fractional interpretation is Q(width−1): the implicit binary point
//! sits after the sign bit, matching the paper's audio coefficients.
//!
//! * [`WordFormat::wrap`] — reduce into the word range modulo 2^width
//!   (what a plain hardware adder does on overflow).
//! * [`WordFormat::saturate`] — clamp into the word range (the `clip`
//!   actions of the application: `add_clip`, `pass_clip`).
//! * [`WordFormat::mult`] — full-precision product, arithmetic shift right
//!   by width−1 (Q-format renormalisation), then wrap.
//!
//! # Example
//!
//! ```
//! use dspcc_num::WordFormat;
//!
//! let q15 = WordFormat::new(16).unwrap();
//! // 0.5 * 0.5 = 0.25 in Q15.
//! let half = q15.from_f64(0.5);
//! assert_eq!(q15.to_f64(q15.mult(half, half)), 0.25);
//! // Saturating addition clips at full scale.
//! let max = q15.max_value();
//! assert_eq!(q15.add_clip(max, max), max);
//! ```

use std::fmt;

mod format;

pub use format::{WordFormat, WordFormatError};

/// Address arithmetic of the ACU (address computation unit).
///
/// Delay lines live in RAM as circular buffers; the ACU computes
/// `(base + offset) mod modulus` — the paper's `addmod` usage — and simple
/// increments (`inca`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acu;

impl Acu {
    /// `(base + offset) mod modulus` with a non-negative result.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    pub fn addmod(base: i64, offset: i64, modulus: i64) -> i64 {
        assert!(modulus > 0, "addmod modulus must be positive");
        (base + offset).rem_euclid(modulus)
    }

    /// `(addr + 1) mod modulus` — the `inca` usage of figure 5.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    pub fn inca(addr: i64, modulus: i64) -> i64 {
        Self::addmod(addr, 1, modulus)
    }
}

/// A value tagged with its [`WordFormat`], for ergonomic chained arithmetic
/// in examples and tests.
///
/// The compiler pipeline itself works on raw `i64` + [`WordFormat`] to keep
/// the datapath hot loops allocation- and branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sample {
    value: i64,
    format: WordFormat,
}

impl Sample {
    /// Wraps `value` into `format` and tags it.
    pub fn new(format: WordFormat, value: i64) -> Self {
        Sample {
            value: format.wrap(value),
            format,
        }
    }

    /// The raw integer value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The format this sample is in.
    pub fn format(&self) -> WordFormat {
        self.format
    }

    /// Wrapping addition (plain hardware adder).
    ///
    /// Named after the hardware operation, like `add_clip`/`mult`, rather
    /// than implementing `std::ops::Add` (which could not also carry the
    /// format-mismatch panic semantics documented here).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Sample) -> Sample {
        Sample::new(self.format, self.format.add(self.value, rhs.value))
    }

    /// Saturating addition (`add_clip`).
    #[must_use]
    pub fn add_clip(self, rhs: Sample) -> Sample {
        Sample::new(self.format, self.format.add_clip(self.value, rhs.value))
    }

    /// Q-format multiplication.
    #[must_use]
    pub fn mult(self, rhs: Sample) -> Sample {
        Sample::new(self.format, self.format.mult(self.value, rhs.value))
    }

    /// Saturating identity (`pass_clip`).
    #[must_use]
    pub fn pass_clip(self) -> Sample {
        Sample::new(self.format, self.format.saturate(self.value))
    }

    /// Approximate real value under the Q(width−1) interpretation.
    pub fn to_f64(self) -> f64 {
        self.format.to_f64(self.value)
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acu_addmod_wraps_circular_buffer() {
        assert_eq!(Acu::addmod(6, 3, 8), 1);
        assert_eq!(Acu::addmod(0, 0, 8), 0);
        assert_eq!(Acu::addmod(7, 1, 8), 0);
    }

    #[test]
    fn acu_addmod_handles_negative_offsets() {
        // Reading "2 frames ago" steps backwards through the buffer.
        assert_eq!(Acu::addmod(0, -2, 8), 6);
        assert_eq!(Acu::addmod(1, -2, 8), 7);
    }

    #[test]
    fn acu_inca_is_addmod_one() {
        for addr in 0..8 {
            assert_eq!(Acu::inca(addr, 8), Acu::addmod(addr, 1, 8));
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn acu_zero_modulus_panics() {
        Acu::addmod(1, 1, 0);
    }

    #[test]
    fn sample_chained_arithmetic() {
        let q15 = WordFormat::new(16).unwrap();
        let a = Sample::new(q15, q15.from_f64(0.5));
        let b = Sample::new(q15, q15.from_f64(0.25));
        let y = a.mult(b).add(b); // 0.5*0.25 + 0.25 = 0.375
        assert!((y.to_f64() - 0.375).abs() < 1e-4);
    }

    #[test]
    fn sample_display_is_nonempty() {
        let q15 = WordFormat::new(16).unwrap();
        let s = Sample::new(q15, 0);
        assert_eq!(s.to_string(), "+0.000000");
    }

    #[test]
    fn sample_new_wraps_out_of_range() {
        let q15 = WordFormat::new(16).unwrap();
        let s = Sample::new(q15, 1 << 20);
        assert!(s.value() >= q15.min_value() && s.value() <= q15.max_value());
    }

    #[test]
    fn sample_pass_clip_saturates() {
        let q15 = WordFormat::new(16).unwrap();
        let max = Sample::new(q15, q15.max_value());
        assert_eq!(max.pass_clip().value(), q15.max_value());
    }
}
