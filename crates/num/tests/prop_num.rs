//! Property-based tests for the fixed-point arithmetic substrate.

use dspcc_num::{Acu, WordFormat};
use proptest::prelude::*;

fn arb_format() -> impl Strategy<Value = WordFormat> {
    (2u32..=32).prop_map(|w| WordFormat::new(w).unwrap())
}

proptest! {
    #[test]
    fn wrap_is_idempotent_in_range((f, v) in arb_format().prop_flat_map(|f| (Just(f), any::<i64>().prop_map(|v| v % (1i64 << 50))))) {
        let w = f.wrap(v);
        prop_assert!(f.contains(w));
        prop_assert_eq!(f.wrap(w), w);
    }

    #[test]
    fn wrap_is_congruent_mod_2w((f, v) in arb_format().prop_flat_map(|f| (Just(f), -(1i64 << 40)..(1i64 << 40)))) {
        let w = f.wrap(v);
        let modulus = 1i64 << f.width();
        prop_assert_eq!((w - v).rem_euclid(modulus), 0);
    }

    #[test]
    fn saturate_is_identity_in_range((f, v) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value()))) {
        prop_assert_eq!(f.saturate(v), v);
        prop_assert_eq!(f.wrap(v), v);
    }

    #[test]
    fn add_clip_never_leaves_range((f, a, b) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value(), f.min_value()..=f.max_value()))) {
        let s = f.add_clip(a, b);
        prop_assert!(f.contains(s));
        // Saturating add is monotone: result is between min(a,b) growth bounds.
        prop_assert!(s >= f.min_value() && s <= f.max_value());
    }

    #[test]
    fn add_agrees_with_clip_when_no_overflow((f, a, b) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value(), f.min_value()..=f.max_value()))) {
        if f.contains(a + b) {
            prop_assert_eq!(f.add(a, b), a + b);
            prop_assert_eq!(f.add_clip(a, b), a + b);
        }
    }

    #[test]
    fn add_is_commutative((f, a, b) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value(), f.min_value()..=f.max_value()))) {
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.add_clip(a, b), f.add_clip(b, a));
    }

    #[test]
    fn mult_stays_in_range((f, a, b) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value(), f.min_value()..=f.max_value()))) {
        prop_assert!(f.contains(f.mult(a, b)));
        prop_assert!(f.contains(f.mult_clip(a, b)));
    }

    #[test]
    fn mult_is_commutative((f, a, b) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value(), f.min_value()..=f.max_value()))) {
        prop_assert_eq!(f.mult(a, b), f.mult(b, a));
    }

    #[test]
    fn mult_by_zero_is_zero((f, a) in arb_format().prop_flat_map(|f| (Just(f), f.min_value()..=f.max_value()))) {
        prop_assert_eq!(f.mult(a, 0), 0);
        prop_assert_eq!(f.mult_clip(0, a), 0);
    }

    #[test]
    fn mult_approximates_real_product(a in -0.9f64..0.9, b in -0.9f64..0.9) {
        let f = WordFormat::q15();
        let fa = f.from_f64(a);
        let fb = f.from_f64(b);
        let prod = f.to_f64(f.mult(fa, fb));
        // One LSB of Q15 is ~3e-5; truncation error is bounded by a few LSB.
        prop_assert!((prod - a * b).abs() < 1e-3, "{a}*{b} gave {prod}");
    }

    #[test]
    fn addmod_result_in_range((base, off, m) in (0i64..64, -64i64..64, 1i64..64)) {
        let r = Acu::addmod(base, off, m);
        prop_assert!(r >= 0 && r < m);
    }

    #[test]
    fn addmod_is_congruent((base, off, m) in (0i64..64, -64i64..64, 1i64..64)) {
        let r = Acu::addmod(base, off, m);
        prop_assert_eq!((r - (base + off)).rem_euclid(m), 0);
    }

    #[test]
    fn stepping_inca_visits_all_addresses(m in 1i64..32) {
        let mut seen = vec![false; m as usize];
        let mut addr = 0i64;
        for _ in 0..m {
            seen[addr as usize] = true;
            addr = Acu::inca(addr, m);
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(addr, 0);
    }
}
