//! RT generation and RT modification for `dspcc` (compiler steps 1–2,
//! paper section 4).
//!
//! * [`lower()`] — **RT generation**: translates the signal-flow graph into
//!   register transfers on a target datapath. Every operation becomes a
//!   path `register files → OPU → buffer → bus → (mux) → destination
//!   register(s)` with a full usage specification (figure 2). Delay-line
//!   taps and signal updates become ACU address computations plus RAM
//!   accesses over circular buffers addressed by a single decrementing
//!   *frame pointer*; coefficients come from the ROM; immediates from the
//!   program-constant unit.
//! * [`modify`] — **RT modification**: (a) resource merging per a
//!   [`dspcc_arch::merge::MergePlan`] (intermediate architecture → real
//!   core) and (b) instruction-set imposition by installing the artificial
//!   resources computed by [`dspcc_isa`].
//!
//! After modification the RTs are self-describing: the scheduler needs no
//! knowledge of either the datapath or the instruction set beyond the
//! usage maps.

pub mod lower;
pub mod modify;

pub use lower::{lower, Immediate, LowerError, LowerOptions, Lowering, RamLayout, VIRTUAL_BASE};
pub use modify::{apply_instruction_set, apply_merge_plan, ModifyError};
