//! RT modification (compiler step 2, paper section 4): resource merging
//! and instruction-set imposition.
//!
//! "In step 2 the core specification is taken into account. This means two
//! things, first the register files and busses can be merged and secondly
//! the instruction set is taken into account. Both aspects are realized by
//! modification of the RTs."

use std::collections::BTreeMap;
use std::fmt;

use dspcc_arch::merge::{MergeError, MergePlan};
use dspcc_arch::Datapath;
use dspcc_ir::{Program, Resource, Usage};
use dspcc_isa::{ArtificialResource, Classification};

use crate::lower::Lowering;

/// RT-modification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ModifyError {
    /// The merge plan itself is invalid.
    Merge(MergeError),
    /// Merging maps two differently-used resources of one RT together —
    /// the RT would conflict with itself and can never execute.
    SelfConflict {
        /// The RT's diagnostic name.
        rt: String,
        /// The merged resource.
        resource: String,
    },
}

impl fmt::Display for ModifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModifyError::Merge(e) => write!(f, "merge plan: {e}"),
            ModifyError::SelfConflict { rt, resource } => write!(
                f,
                "merging makes RT `{rt}` conflict with itself on `{resource}`"
            ),
        }
    }
}

impl std::error::Error for ModifyError {}

impl From<MergeError> for ModifyError {
    fn from(e: MergeError) -> Self {
        ModifyError::Merge(e)
    }
}

/// Applies a merge plan to a lowering: rewrites every RT's resources and
/// register references, updates usage arguments that name buses, installs
/// multiplexer usages that merging made necessary, and returns the merged
/// datapath.
///
/// # Errors
///
/// Returns [`ModifyError`] if the plan is invalid or an RT becomes
/// self-conflicting.
pub fn apply_merge_plan(
    lowering: &mut Lowering,
    dp: &Datapath,
    plan: &MergePlan,
) -> Result<Datapath, ModifyError> {
    let merged = plan.apply(dp)?;
    let map: BTreeMap<String, String> = plan.rename_map(dp)?;
    // Resolve the rename map to interned ids once; the per-RT rename is
    // then an integer-keyed lookup.
    let id_map: std::collections::HashMap<Resource, Resource> = map
        .iter()
        .map(|(from, to)| (Resource::new(from), Resource::new(to)))
        .collect();
    let rename = |r: &Resource| -> Resource { id_map.get(r).copied().unwrap_or(*r) };
    // Driving bus per OPU in the merged datapath.
    let opu_bus: BTreeMap<String, String> = merged
        .opus()
        .iter()
        .filter_map(|o| o.output_bus().map(|b| (o.name().to_owned(), b.to_owned())))
        .collect();

    for id in lowering.program.rt_ids().collect::<Vec<_>>() {
        let rt = lowering.program.rt_mut(id);
        rt.rename_resources(rename)
            .map_err(|resource| ModifyError::SelfConflict {
                rt: String::new(),
                resource: resource.name().to_owned(),
            })?;
        // Rewrite bus names inside usage arguments (mux `pass(bus)`).
        let rewrites: Vec<(String, Usage)> = rt
            .usages()
            .filter_map(|(res, usage)| match usage {
                Usage::Apply { op, args } if args.iter().any(|a| map.contains_key(a.as_str())) => {
                    let new_args: Vec<String> = args
                        .iter()
                        .map(|a| map.get(a.as_str()).cloned().unwrap_or_else(|| a.clone()))
                        .collect();
                    Some((res.name().to_owned(), Usage::apply(op, new_args)))
                }
                _ => None,
            })
            .collect();
        for (res, usage) in rewrites {
            rt.add_usage(res.as_str(), usage);
        }
        // Install mux usages that merging created: a destination register
        // file that now has several source buses needs its mux claimed.
        let driving_bus = rt
            .usages()
            .find_map(|(res, _)| opu_bus.get(res.name()))
            .cloned();
        if let Some(bus) = driving_bus {
            let dest_rfs: Vec<String> = rt
                .dests()
                .iter()
                .map(|d| d.rf().name().to_owned())
                .collect();
            for rf in dest_rfs {
                let spec = merged
                    .register_file(&rf)
                    .expect("dest register file exists after merge");
                let mux = Datapath::mux_name(&rf);
                if spec.has_mux() && rt.usage_of(&mux).is_none() {
                    rt.add_usage(mux.as_str(), Usage::apply("pass", [bus.as_str()]));
                }
            }
        }
    }
    // Fix the diagnostic name in any self-conflict error (done above with
    // an empty name; fill it in when it occurs — handled via map_err since
    // rt borrow ends there).
    if let Some((rf, _)) = map.get_key_value(&lowering.fp_reg.0) {
        lowering.fp_reg.0 = map[rf].clone();
    }
    Ok(merged)
}

/// Imposes the instruction set on a program: installs the artificial
/// resources (paper section 6.3) and returns the resource names added —
/// the list a baseline can strip to measure the ISA's effect.
pub fn apply_instruction_set(
    program: &mut Program,
    classification: &Classification,
    resources: &[ArtificialResource],
) -> Vec<String> {
    dspcc_isa::apply_artificial_resources(program, classification, resources);
    resources.iter().map(|r| r.name().to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use dspcc_arch::{DatapathBuilder, OpuKind};
    use dspcc_dfg::{parse, Dfg};
    use dspcc_isa::{artificial_resources, CoverStrategy, InstructionSet};

    /// Intermediate-style core: two ALUs with dedicated RFs and buses.
    fn unmerged_core() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_a1_x", 8)
            .register_file("rf_a1_y", 8)
            .register_file("rf_a2_x", 8)
            .register_file("rf_a2_y", 8)
            .register_file("rf_out", 4)
            .opu(OpuKind::Input, "ipb", &[("read", 1)])
            .output("ipb", "bus_ipb")
            .opu(OpuKind::Output, "opb", &[("write", 1)])
            .inputs("opb", &["rf_out"])
            .opu(OpuKind::Alu, "alu_1", &[("add", 1), ("pass", 1)])
            .inputs("alu_1", &["rf_a1_x", "rf_a1_y"])
            .output("alu_1", "bus_alu_1")
            .opu(OpuKind::Alu, "alu_2", &[("add", 1), ("pass", 1)])
            .inputs("alu_2", &["rf_a2_x", "rf_a2_y"])
            .output("alu_2", "bus_alu_2")
            .write_port("rf_a1_x", &["bus_ipb", "bus_alu_1", "bus_alu_2"])
            .write_port("rf_a1_y", &["bus_ipb", "bus_alu_1", "bus_alu_2"])
            .write_port("rf_a2_x", &["bus_ipb", "bus_alu_1", "bus_alu_2"])
            .write_port("rf_a2_y", &["bus_ipb", "bus_alu_1", "bus_alu_2"])
            .write_port("rf_out", &["bus_alu_1", "bus_alu_2"])
            .build()
            .unwrap()
    }

    fn lowered() -> (Lowering, Datapath) {
        let dp = unmerged_core();
        let dfg =
            Dfg::build(&parse("input u; output y; y = add(add(u, u), pass(u));").unwrap()).unwrap();
        let l = lower(&dfg, &dp, &LowerOptions::default()).unwrap();
        (l, dp)
    }

    #[test]
    fn merge_renames_rt_resources() {
        let (mut l, dp) = lowered();
        let mut plan = MergePlan::new();
        plan.merge_buses(&["bus_alu_1", "bus_alu_2"], "bus_alu");
        let merged = apply_merge_plan(&mut l, &dp, &plan).unwrap();
        assert!(merged.bus("bus_alu").is_some());
        for (_, rt) in l.program.rts() {
            assert!(rt.usage_of("bus_alu_1").is_none());
            assert!(rt.usage_of("bus_alu_2").is_none());
        }
        // At least one RT drives the merged bus.
        assert!(l
            .program
            .rts()
            .any(|(_, rt)| rt.usage_of("bus_alu").is_some()));
    }

    #[test]
    fn merge_rewrites_mux_arguments() {
        let (mut l, dp) = lowered();
        let mut plan = MergePlan::new();
        plan.merge_buses(&["bus_alu_1", "bus_alu_2"], "bus_alu");
        apply_merge_plan(&mut l, &dp, &plan).unwrap();
        for (_, rt) in l.program.rts() {
            for (res, usage) in rt.usages() {
                if res.name().starts_with("mux_") {
                    if let Usage::Apply { args, .. } = usage {
                        for a in args {
                            assert_ne!(a, "bus_alu_1", "stale bus name in {rt}");
                            assert_ne!(a, "bus_alu_2", "stale bus name in {rt}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rf_merge_rewrites_register_references() {
        let (mut l, dp) = lowered();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_a1_x", "rf_a2_x"], "rf_x");
        let merged = apply_merge_plan(&mut l, &dp, &plan).unwrap();
        assert_eq!(merged.register_file("rf_x").unwrap().size(), 16);
        for (_, rt) in l.program.rts() {
            for reg in rt.dests().iter().chain(rt.operands()) {
                assert_ne!(reg.rf().name(), "rf_a1_x");
                assert_ne!(reg.rf().name(), "rf_a2_x");
            }
        }
    }

    #[test]
    fn merged_schedule_still_valid_but_longer_or_equal() {
        use dspcc_sched::deps::DependenceGraph;
        use dspcc_sched::list::{list_schedule, ListConfig};

        let (l_before, dp) = lowered();
        let deps_before =
            DependenceGraph::build_with_edges(&l_before.program, &l_before.sequence_edges).unwrap();
        let before =
            list_schedule(&l_before.program, &deps_before, &ListConfig::default()).unwrap();
        before.verify(&l_before.program, &deps_before).unwrap();

        let (mut l_after, _) = lowered();
        let mut plan = MergePlan::new();
        plan.merge_buses(&["bus_alu_1", "bus_alu_2"], "bus_alu");
        apply_merge_plan(&mut l_after, &dp, &plan).unwrap();
        let deps_after =
            DependenceGraph::build_with_edges(&l_after.program, &l_after.sequence_edges).unwrap();
        let after = list_schedule(&l_after.program, &deps_after, &ListConfig::default()).unwrap();
        after.verify(&l_after.program, &deps_after).unwrap();
        assert!(
            after.length() >= before.length(),
            "sharing cannot speed things up: {} vs {}",
            after.length(),
            before.length()
        );
    }

    #[test]
    fn apply_instruction_set_returns_added_names() {
        let (mut l, dp) = lowered();
        let classification = Classification::identify(&dp);
        let _ = dp;
        // Force alu_1-add and alu_2-add into conflicting classes.
        let a1 = classification
            .classes()
            .iter()
            .position(|c| c.opu().name() == "alu_1" && c.matches("alu_1", "add"))
            .unwrap();
        let a2 = classification
            .classes()
            .iter()
            .position(|c| c.opu().name() == "alu_2" && c.matches("alu_2", "add"))
            .unwrap();
        let n = classification.len();
        // Everything compatible except a1–a2.
        let all_but: Vec<usize> = (0..n).filter(|&c| c != a2).collect();
        let rest: Vec<usize> = (0..n).filter(|&c| c != a1).collect();
        let iset = InstructionSet::closure(n, &[all_but, rest]);
        let ars = artificial_resources(&iset, &classification, CoverStrategy::GreedyMaximal);
        assert!(!ars.is_empty());
        let names = apply_instruction_set(&mut l.program, &classification, &ars);
        assert_eq!(names.len(), ars.len());
        // Some RT now carries the artificial resource.
        assert!(l
            .program
            .rts()
            .any(|(_, rt)| names.iter().any(|n| rt.usage_of(n).is_some())));
    }

    #[test]
    fn invalid_plan_propagates() {
        let (mut l, dp) = lowered();
        let mut plan = MergePlan::new();
        plan.merge_rfs(&["rf_ghost"], "rf_x");
        let err = apply_merge_plan(&mut l, &dp, &plan).unwrap_err();
        assert!(matches!(err, ModifyError::Merge(_)));
        assert!(err.to_string().contains("rf_ghost"));
    }
}
