//! RT generation: signal-flow graph → register transfers on a datapath.
//!
//! # Delay-line model
//!
//! All tapped signals live in one data RAM as circular regions of a common
//! power-of-two length `M` (the deepest tap + 1, rounded up), each aligned
//! to a multiple of `M`. A single *frame pointer* `fp` (register 0 of the
//! ACU's base register file) decrements once per frame:
//! `fp ← (fp + M−1) mod M` — itself an ordinary `addmod`.
//!
//! An access to signal `s` uses a combined immediate `V = base(s) + k`
//! (`k` = tap depth, `0` for the frame's write); the ACU computes
//!
//! ```text
//! addr = (V & !(M−1)) | ((fp + V) & (M−1))
//! ```
//!
//! so the value written at frame `t` is found at tap depth `k` in frame
//! `t+k` — no per-signal pointers, one ACU operation per RAM access plus
//! one per frame, matching the resource mix of the paper's audio core
//! (ACU one busier than RAM, figure 9).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use dspcc_arch::{Datapath, OpuKind};
use dspcc_dfg::{Dfg, DfgOp, NodeId};
use dspcc_ir::{Program, RegRef, Resource, Rt, RtId, Usage, UsageId, ValueId};

/// Virtual register indices start here; smaller indices are pre-colored
/// physical registers (the frame pointer). Register allocation (in
/// `dspcc-encode`) maps virtual indices to physical ones after scheduling.
pub const VIRTUAL_BASE: u32 = 1 << 20;

/// Options for [`lower`].
#[derive(Debug, Clone)]
pub struct LowerOptions {
    /// Merge constant fetches (ROM and program constants) with identical
    /// values into one RT with multiple destinations. Keeps the
    /// program-constant unit occupation at (not above) the ACU's.
    pub cse_constants: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            cse_constants: true,
        }
    }
}

/// An immediate carried by a constant-producing RT, resolved to bits at
/// encode time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Immediate {
    /// Raw integer word (ACU address offsets).
    Raw(i64),
    /// Fixed-point value, converted via the core's word format.
    Fixed(f64),
    /// Address into the coefficient ROM.
    RomAddr(u32),
}

/// Placement of the tapped signals in data RAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RamLayout {
    /// Common circular-region length `M` (power of two).
    pub region_size: u32,
    /// Base address per signal index (`u32::MAX` for untapped signals).
    pub bases: Vec<u32>,
    /// Words used.
    pub total_words: u32,
}

/// The result of RT generation.
#[derive(Debug, Clone)]
pub struct Lowering {
    /// The RT program.
    pub program: Program,
    /// Ordering constraints invisible to value flow:
    /// `(from, to, min_separation)`.
    pub sequence_edges: Vec<(RtId, RtId, u32)>,
    /// Loop-carried dependences `(from, to, distance)` for loop folding.
    pub loop_edges: Vec<(RtId, RtId, u32)>,
    /// RAM placement of the delay lines.
    pub ram_layout: RamLayout,
    /// Coefficient ROM image (values by address), to be fixed-point
    /// converted at encode time.
    pub rom_image: Vec<f64>,
    /// Immediates per constant-producing RT.
    pub immediates: BTreeMap<RtId, Immediate>,
    /// Output writes in emission order: `(output OPU name, DFG port)` —
    /// the contract between the simulator's output stream and the
    /// reference interpreter's port order.
    pub output_order: Vec<(String, usize)>,
    /// Input reads per input OPU in issue order: `(input OPU name, DFG
    /// port)` — tells the simulator which sample each read consumes.
    pub input_order: Vec<(String, usize)>,
    /// The pinned frame-pointer register `(register file, index)`.
    pub fp_reg: (String, u32),
}

/// An IO order: `(OPU name, DFG port)` pairs in issue order.
pub type IoOrder = Vec<(String, usize)>;

impl Lowering {
    /// Clones the IO orders — the microcode's contract with the simulator.
    ///
    /// The staged pipeline shares one immutable `Lowering` across many
    /// schedule/encode variants (`Arc`-held stage artifacts), so the
    /// encoder copies these two small vectors instead of `mem::take`ing
    /// them out of a uniquely-owned lowering.
    pub fn io_orders(&self) -> (IoOrder, IoOrder) {
        (self.output_order.clone(), self.input_order.clone())
    }
}

/// RT-generation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// No OPU supports the operation.
    NoOpuFor(String),
    /// The datapath lacks a unit kind the program needs (e.g. taps without
    /// an ACU or RAM).
    MissingUnit(&'static str),
    /// A value cannot be routed into any input register file of the
    /// operation's OPU, even via one pass-through.
    NoRoute {
        /// The value's diagnostic name.
        value: String,
        /// The operation needing it.
        op: String,
        /// The register file it must reach.
        rf: String,
    },
    /// The delay lines do not fit the RAM.
    RamOverflow {
        /// Words required.
        needed: u32,
        /// Words available.
        available: u32,
    },
    /// A coefficient address lies beyond the ROM image.
    ///
    /// Caught at RT generation rather than encode time: the address field
    /// is `ceil(log2(size))` bits wide, so an address can fit the *field*
    /// while still lying past the *image* — executing it would read
    /// outside the ROM (found by the conformance fleet on generated cores
    /// with small ROMs).
    RomOverflow {
        /// Words required (highest fetched address + 1).
        needed: u32,
        /// Words available.
        available: u32,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NoOpuFor(op) => write!(f, "no OPU supports operation `{op}`"),
            LowerError::MissingUnit(kind) => write!(f, "datapath has no {kind} unit"),
            LowerError::NoRoute { value, op, rf } => write!(
                f,
                "value `{value}` cannot be routed into `{rf}` for `{op}` \
                 (no bus path, and no pass-through found)"
            ),
            LowerError::RamOverflow { needed, available } => {
                write!(
                    f,
                    "delay lines need {needed} RAM words, only {available} available"
                )
            }
            LowerError::RomOverflow { needed, available } => {
                write!(
                    f,
                    "coefficients need {needed} ROM words, only {available} available"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a signal-flow graph onto a datapath.
///
/// # Errors
///
/// Returns [`LowerError`] when the datapath cannot host the program; the
/// error is the feedback that drives the source/architecture iteration of
/// figure 1.
pub fn lower(dfg: &Dfg, dp: &Datapath, opts: &LowerOptions) -> Result<Lowering, LowerError> {
    Ctx::new(dfg, dp, opts)?.run()
}

/// One planned RT, recorded before destinations are known.
#[derive(Debug, Clone)]
struct Plan {
    name: String,
    opu: String,
    op: String,
    /// Value operands with the register file each is read from; `None`
    /// rf means the pinned fp register (handled specially).
    operands: Vec<(Option<ValueId>, String, u32)>,
    def: Option<ValueId>,
    immediate: Option<Immediate>,
    /// For output writes: the DFG port.
    output_port: Option<usize>,
    /// Pre-colored destination (the fp update writes a physical register).
    physical_dest: Option<(String, u32)>,
}

/// Interned symbols of one OPU: resource, buffer, output bus, and one
/// token usage per operation — resolved once per datapath so RT emission
/// never re-interns a name (see the `dspcc_ir::SymbolTable` docs).
struct OpuSyms {
    res: Resource,
    buf: Resource,
    bus: Option<Resource>,
}

/// Interned symbols of one register file.
struct RfSyms {
    res: Resource,
    wp: Resource,
    mux: Option<Resource>,
    write_buses: Vec<Resource>,
}

/// The per-datapath symbol cache: every resource name and every reusable
/// usage value of the target, interned exactly once at the lowering
/// boundary.
struct SymCache {
    write_token: UsageId,
    opus: HashMap<String, OpuSyms>,
    rfs: HashMap<String, RfSyms>,
    /// Operation name → `Usage::Token(op)` id (all datapath ops).
    tokens: HashMap<String, UsageId>,
    /// Bus → `pass(<bus>)` id for multiplexer inputs.
    pass_of_bus: HashMap<Resource, UsageId>,
}

impl SymCache {
    fn build(dp: &Datapath) -> SymCache {
        let mut opus = HashMap::new();
        let mut tokens: HashMap<String, UsageId> = HashMap::new();
        let mut pass_of_bus = HashMap::new();
        for opu in dp.opus() {
            let bus = opu.output_bus().map(Resource::new);
            if let Some(b) = bus {
                pass_of_bus
                    .entry(b)
                    .or_insert_with(|| UsageId::of(&Usage::apply("pass", [b.name()])));
            }
            for (op, _) in opu.ops() {
                if !tokens.contains_key(op) {
                    tokens.insert(op.to_owned(), UsageId::of(&Usage::token(op)));
                }
            }
            opus.insert(
                opu.name().to_owned(),
                OpuSyms {
                    res: Resource::new(opu.name()),
                    buf: Resource::new(&Datapath::buffer_name(opu.name())),
                    bus,
                },
            );
        }
        let rfs = dp
            .register_files()
            .iter()
            .map(|rf| {
                (
                    rf.name().to_owned(),
                    RfSyms {
                        res: Resource::new(rf.name()),
                        wp: Resource::new(&Datapath::wp_name(rf.name())),
                        mux: rf
                            .has_mux()
                            .then(|| Resource::new(&Datapath::mux_name(rf.name()))),
                        write_buses: rf.write_buses().iter().map(|b| Resource::new(b)).collect(),
                    },
                )
            })
            .collect();
        SymCache {
            write_token: UsageId::of(&Usage::token("write")),
            opus,
            rfs,
            tokens,
            pass_of_bus,
        }
    }

    fn token(&self, op: &str) -> UsageId {
        self.tokens
            .get(op)
            .copied()
            .unwrap_or_else(|| UsageId::of(&Usage::token(op)))
    }
}

struct Ctx<'a> {
    dfg: &'a Dfg,
    dp: &'a Datapath,
    opts: &'a LowerOptions,
    syms: SymCache,
    program: Program,
    plans: Vec<Plan>,
    /// value → producing bus (dense by value id; None: not yet produced /
    /// no bus).
    value_bus: Vec<Option<Resource>>,
    /// value → register files it must be written into (dense by value id).
    demand: Vec<Vec<Resource>>,
    /// Writes routed into each register file so far — balanced across
    /// alternative operand ports, since every write port is a 1-per-cycle
    /// resource.
    wp_load: HashMap<Resource, usize>,
    /// RTs planned per OPU so far (the load-balancing key of
    /// `compute_node`), maintained incrementally instead of recounting
    /// all plans per node.
    opu_load: HashMap<String, usize>,
    /// DFG node → value carrying its result.
    node_value: Vec<Option<ValueId>>,
    layout: RamLayout,
    rom_image: Vec<f64>,
    /// CSE tables.
    const_cache: BTreeMap<u64, usize>,
    coeff_cache: BTreeMap<u32, usize>,
    /// plan index → rt id is the identity; bookkeeping for edges.
    input_reads: BTreeMap<String, Vec<usize>>,
    output_writes: BTreeMap<String, Vec<usize>>,
    fp_readers: Vec<usize>,
    /// per signal: (write plan index, Vec<(tap read plan, depth)>).
    signal_writes: BTreeMap<usize, usize>,
    signal_taps: BTreeMap<usize, Vec<(usize, u32)>>,
    output_order: Vec<(String, usize)>,
    fp_rf: String,
    off_rf: String,
    acu: String,
    ram: String,
}

impl<'a> Ctx<'a> {
    fn new(dfg: &'a Dfg, dp: &'a Datapath, opts: &'a LowerOptions) -> Result<Self, LowerError> {
        let needs_ram = dfg.signals().iter().any(|s| s.max_tap_depth > 0);
        let (acu, ram, fp_rf, off_rf, layout) = if needs_ram {
            let acu = dp
                .opus()
                .iter()
                .find(|o| o.kind() == OpuKind::Acu && o.supports("addmod"))
                .ok_or(LowerError::MissingUnit("ACU (addmod)"))?;
            let ram = dp
                .opus()
                .iter()
                .find(|o| o.kind() == OpuKind::Ram)
                .ok_or(LowerError::MissingUnit("RAM"))?;
            if acu.inputs().len() < 2 {
                return Err(LowerError::MissingUnit("ACU with base+offset inputs"));
            }
            let max_depth = dfg
                .signals()
                .iter()
                .map(|s| s.max_tap_depth)
                .max()
                .unwrap_or(0);
            let region = (max_depth + 1).next_power_of_two();
            let mut bases = Vec::new();
            let mut next = 0u32;
            for s in dfg.signals() {
                if s.max_tap_depth > 0 {
                    bases.push(next);
                    next += region;
                } else {
                    bases.push(u32::MAX);
                }
            }
            if next > ram.memory_size() {
                return Err(LowerError::RamOverflow {
                    needed: next,
                    available: ram.memory_size(),
                });
            }
            (
                acu.name().to_owned(),
                ram.name().to_owned(),
                acu.inputs()[0].clone(),
                acu.inputs()[1].clone(),
                RamLayout {
                    region_size: region,
                    bases,
                    total_words: next,
                },
            )
        } else {
            (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                RamLayout {
                    region_size: 1,
                    bases: vec![u32::MAX; dfg.signals().len()],
                    total_words: 0,
                },
            )
        };
        Ok(Ctx {
            dfg,
            dp,
            opts,
            syms: SymCache::build(dp),
            program: Program::new(),
            plans: Vec::new(),
            value_bus: Vec::new(),
            demand: Vec::new(),
            wp_load: HashMap::new(),
            opu_load: HashMap::new(),
            node_value: vec![None; dfg.nodes().len()],
            layout,
            rom_image: dfg.coeffs().iter().map(|(_, v)| *v).collect(),
            const_cache: BTreeMap::new(),
            coeff_cache: BTreeMap::new(),
            input_reads: BTreeMap::new(),
            output_writes: BTreeMap::new(),
            fp_readers: Vec::new(),
            signal_writes: BTreeMap::new(),
            signal_taps: BTreeMap::new(),
            output_order: Vec::new(),
            fp_rf,
            off_rf,
            acu,
            ram,
        })
    }

    fn run(mut self) -> Result<Lowering, LowerError> {
        for id in self.dfg.node_ids() {
            self.node(id)?;
        }
        // Inputs referenced only through taps (`u@2` with no bare `u`)
        // still consume one sample per frame into their delay line.
        for port in 0..self.dfg.input_ports().len() {
            let name = self.dfg.input_ports()[port].clone();
            let signal = self
                .dfg
                .signals()
                .iter()
                .position(|s| s.name == name)
                .expect("inputs are signals");
            if self.dfg.signals()[signal].max_tap_depth > 0
                && !self.signal_writes.contains_key(&signal)
            {
                let inputs: Vec<String> = self
                    .dp
                    .opus()
                    .iter()
                    .filter(|o| o.kind() == OpuKind::Input)
                    .map(|o| o.name().to_owned())
                    .collect();
                if inputs.is_empty() {
                    return Err(LowerError::MissingUnit("input port (IPB)"));
                }
                let opu_name = inputs[port % inputs.len()].clone();
                let value = self.program.add_value(name.clone());
                let bus = self.syms.opus[&opu_name]
                    .bus
                    .expect("input ports drive a bus");
                self.set_bus(value, bus);
                let idx = self.plan(Plan {
                    name: format!("in_{name}"),
                    opu: opu_name.clone(),
                    op: "read".to_owned(),
                    operands: Vec::new(),
                    def: Some(value),
                    immediate: None,
                    output_port: Some(port),
                    physical_dest: None,
                });
                self.input_reads.entry(opu_name).or_default().push(idx);
                let write = self.ram_access(signal, 0, Some(value), None)?;
                self.signal_writes.insert(signal, write);
            }
        }
        // Reads on one physical input port happen in port order (samples
        // interleave on the wire); sort before chaining sequence edges.
        for reads in self.input_reads.values_mut() {
            let plans = &self.plans;
            reads.sort_by_key(|&i| plans[i].output_port.unwrap_or(0));
        }
        // Frame-pointer update, once per frame, after all address
        // computations of the frame (enforced by zero-separation edges).
        let fp_update = if !self.fp_readers.is_empty() {
            let m = self.layout.region_size as i64;
            let off = self.constant(Immediate::Raw(m - 1), "fp_step")?;
            self.route(off, &self.off_rf.clone(), "addmod")?;
            let fp_rf = self.fp_rf.clone();
            let off_rf = self.off_rf.clone();
            let acu = self.acu.clone();
            Some(self.plan(Plan {
                name: "fp_update".to_owned(),
                opu: acu,
                op: "addmod".to_owned(),
                operands: vec![(None, fp_rf.clone(), 0), (Some(off), off_rf, 0)],
                def: None,
                immediate: None,
                output_port: None,
                physical_dest: Some((fp_rf, 0)),
            }))
        } else {
            None
        };

        // Materialise the RTs.
        for plan in &self.plans {
            let rt = self.emit(plan);
            self.program.add_rt(rt);
        }

        // Edges.
        let mut sequence_edges = Vec::new();
        for reads in self.input_reads.values() {
            for w in reads.windows(2) {
                sequence_edges.push((RtId(w[0] as u32), RtId(w[1] as u32), 1));
            }
        }
        for writes in self.output_writes.values() {
            for w in writes.windows(2) {
                sequence_edges.push((RtId(w[0] as u32), RtId(w[1] as u32), 1));
            }
        }
        let mut loop_edges = Vec::new();
        if let Some(fp) = fp_update {
            for &reader in &self.fp_readers {
                if reader != fp {
                    sequence_edges.push((RtId(reader as u32), RtId(fp as u32), 0));
                    loop_edges.push((RtId(fp as u32), RtId(reader as u32), 1));
                }
            }
        }
        for (&signal, &write) in &self.signal_writes {
            if let Some(taps) = self.signal_taps.get(&signal) {
                for &(read, depth) in taps {
                    loop_edges.push((RtId(write as u32), RtId(read as u32), depth));
                }
            }
        }

        let fp_reg = (self.fp_rf.clone(), 0);
        let input_order: Vec<(String, usize)> = self
            .input_reads
            .iter()
            .flat_map(|(opu, reads)| {
                reads
                    .iter()
                    .map(|&i| (opu.clone(), self.plans[i].output_port.unwrap_or(0)))
                    .collect::<Vec<_>>()
            })
            .collect();
        Ok(Lowering {
            program: self.program,
            sequence_edges,
            loop_edges,
            ram_layout: self.layout,
            rom_image: self.rom_image,
            immediates: self
                .plans
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.immediate.map(|imm| (RtId(i as u32), imm)))
                .collect(),
            output_order: self.output_order,
            input_order,
            fp_reg,
        })
    }

    fn plan(&mut self, plan: Plan) -> usize {
        match self.opu_load.get_mut(&plan.opu) {
            Some(n) => *n += 1,
            None => {
                self.opu_load.insert(plan.opu.clone(), 1);
            }
        }
        self.plans.push(plan);
        self.plans.len() - 1
    }

    /// Records the bus that produces `value` (dense by value id).
    fn set_bus(&mut self, value: ValueId, bus: Resource) {
        let i = value.0 as usize;
        if self.value_bus.len() <= i {
            self.value_bus.resize(i + 1, None);
        }
        self.value_bus[i] = Some(bus);
    }

    /// The bus producing `value`, if recorded.
    fn bus_of(&self, value: ValueId) -> Option<Resource> {
        self.value_bus.get(value.0 as usize).copied().flatten()
    }

    /// The register files `value` must be written into (dense by value id).
    fn demand_mut(&mut self, value: ValueId) -> &mut Vec<Resource> {
        let i = value.0 as usize;
        if self.demand.len() <= i {
            self.demand.resize_with(i + 1, Vec::new);
        }
        &mut self.demand[i]
    }

    fn rf_syms(&self, rf: &str) -> &RfSyms {
        self.syms
            .rfs
            .get(rf)
            .unwrap_or_else(|| unreachable!("rf `{rf}` exists in validated datapath"))
    }

    fn value_for(&mut self, node: NodeId) -> ValueId {
        match self.node_value[node.0 as usize] {
            Some(v) => v,
            None => {
                let name = self.dfg.node(node).name.clone();
                let v = self.program.add_value(&name);
                self.node_value[node.0 as usize] = Some(v);
                v
            }
        }
    }

    /// Whether `value` can be written into `rf` (a bus path exists), with
    /// no side effects.
    fn can_route(&self, value: ValueId, rf: &str) -> bool {
        match self.bus_of(value) {
            Some(bus) => self.rf_syms(rf).write_buses.contains(&bus),
            None => false,
        }
    }

    /// Whether `value` is already demanded into `rf` (a free re-read).
    fn already_routed(&self, value: ValueId, rf: Resource) -> bool {
        self.demand
            .get(value.0 as usize)
            .map(|rfs| rfs.contains(&rf))
            .unwrap_or(false)
    }

    /// Records that `value` must be written into `rf`; checks the bus
    /// path exists.
    fn route(&mut self, value: ValueId, rf: &str, op: &str) -> Result<(), LowerError> {
        if !self.can_route(value, rf) {
            return Err(LowerError::NoRoute {
                value: self.program.value(value).name().to_owned(),
                op: op.to_owned(),
                rf: rf.to_owned(),
            });
        }
        let rf_res = self.rf_syms(rf).res;
        let rfs = self.demand_mut(value);
        if !rfs.contains(&rf_res) {
            rfs.push(rf_res);
            *self.wp_load.entry(rf_res).or_default() += 1;
        }
        Ok(())
    }

    /// Routes `value` into `rf`, inserting a single pass-through RT when
    /// there is no direct bus path.
    fn route_or_pass(&mut self, value: ValueId, rf: &str, op: &str) -> Result<ValueId, LowerError> {
        if self.route(value, rf, op).is_ok() {
            return Ok(value);
        }
        // Find a pass-capable OPU bridging the producer's bus to `rf`.
        let bus = self.bus_of(value);
        for opu in self.dp.opus() {
            if !opu.supports("pass") || opu.inputs().is_empty() {
                continue;
            }
            let in_rf = &opu.inputs()[0];
            if !self.syms.rfs.contains_key(in_rf.as_str()) {
                continue;
            }
            let out_bus = match self.syms.opus[opu.name()].bus {
                Some(b) => b,
                None => continue,
            };
            if bus.is_some_and(|b| self.rf_syms(in_rf).write_buses.contains(&b))
                && self.rf_syms(rf).write_buses.contains(&out_bus)
            {
                // value → (pass) → bridged.
                self.route(value, in_rf, "pass")?;
                let name = format!("route_{}", self.program.value(value).name());
                let bridged = self.program.add_value(name.clone());
                let in_rf = in_rf.clone();
                let opu_name = opu.name().to_owned();
                let plan = Plan {
                    name,
                    opu: opu_name,
                    op: "pass".to_owned(),
                    operands: vec![(Some(value), in_rf, 0)],
                    def: Some(bridged),
                    immediate: None,
                    output_port: None,
                    physical_dest: None,
                };
                self.plan(plan);
                self.set_bus(bridged, out_bus);
                self.route(bridged, rf, op)?;
                return Ok(bridged);
            }
        }
        Err(LowerError::NoRoute {
            value: self.program.value(value).name().to_owned(),
            op: op.to_owned(),
            rf: rf.to_owned(),
        })
    }

    /// Emits (or reuses, under CSE) a constant-producing RT and returns
    /// its value.
    fn constant(&mut self, imm: Immediate, name: &str) -> Result<ValueId, LowerError> {
        let (kind, cache_key): (OpuKind, Option<u64>) = match imm {
            Immediate::Raw(v) => (OpuKind::ProgConst, Some(v as u64)),
            Immediate::Fixed(v) => (
                OpuKind::ProgConst,
                Some(v.to_bits() ^ 0x8000_0000_0000_0000),
            ),
            Immediate::RomAddr(_) => (OpuKind::Rom, None),
        };
        if self.opts.cse_constants {
            if let Some(key) = cache_key {
                if let Some(&plan_idx) = self.const_cache.get(&key) {
                    return Ok(self.plans[plan_idx].def.expect("const defines"));
                }
            }
            if let Immediate::RomAddr(a) = imm {
                if let Some(&plan_idx) = self.coeff_cache.get(&a) {
                    return Ok(self.plans[plan_idx].def.expect("const defines"));
                }
            }
        }
        let opu = self
            .dp
            .opus()
            .iter()
            .find(|o| o.kind() == kind && o.supports("const"))
            .ok_or(LowerError::MissingUnit(match kind {
                OpuKind::Rom => "coefficient ROM",
                _ => "program-constant unit",
            }))?;
        if let Immediate::RomAddr(a) = imm {
            if a >= opu.memory_size() {
                return Err(LowerError::RomOverflow {
                    needed: a + 1,
                    available: opu.memory_size(),
                });
            }
        }
        let value = self.program.add_value(name);
        let bus = self.syms.opus[opu.name()]
            .bus
            .expect("constant units drive a bus");
        let opu = opu.name().to_owned();
        self.set_bus(value, bus);
        let idx = self.plan(Plan {
            name: name.to_owned(),
            opu,
            op: "const".to_owned(),
            operands: Vec::new(),
            def: Some(value),
            immediate: Some(imm),
            output_port: None,
            physical_dest: None,
        });
        if self.opts.cse_constants {
            if let Some(key) = cache_key {
                self.const_cache.insert(key, idx);
            }
            if let Immediate::RomAddr(a) = imm {
                self.coeff_cache.insert(a, idx);
            }
        }
        Ok(value)
    }

    /// Emits the ACU addmod + RAM access pair for signal `signal` at tap
    /// `depth` (0 = this frame's write). Returns the RAM-access plan index
    /// (a read defines `read_value`).
    fn ram_access(
        &mut self,
        signal: usize,
        depth: u32,
        write_data: Option<ValueId>,
        read_value: Option<ValueId>,
    ) -> Result<usize, LowerError> {
        let base = self.layout.bases[signal];
        debug_assert_ne!(base, u32::MAX, "untapped signal has no RAM region");
        let v = base as i64 + depth as i64;
        let sig_name = self.dfg.signals()[signal].name.clone();
        let off = self.constant(Immediate::Raw(v), &format!("addr_{sig_name}_{depth}"))?;
        self.route(off, &self.off_rf.clone(), "addmod")?;
        let addr = self.program.add_value(format!("a_{sig_name}_{depth}"));
        let acu_bus = self.syms.opus[&self.acu].bus.expect("acu drives a bus");
        self.set_bus(addr, acu_bus);
        let fp_rf = self.fp_rf.clone();
        let off_rf = self.off_rf.clone();
        let acu = self.acu.clone();
        let addmod = self.plan(Plan {
            name: format!("addmod_{sig_name}@{depth}"),
            opu: acu,
            op: "addmod".to_owned(),
            operands: vec![(None, fp_rf, 0), (Some(off), off_rf, 0)],
            def: Some(addr),
            immediate: None,
            output_port: None,
            physical_dest: None,
        });
        self.fp_readers.push(addmod);
        // Address into the RAM's address register file (port 0).
        let ram_spec = self.dp.opu(&self.ram).expect("ram exists");
        let addr_rf = ram_spec.inputs()[0].clone();
        self.route(addr, &addr_rf, "ram address")?;
        let ram = self.ram.clone();
        let access = if let Some(data) = write_data {
            let data_rf = ram_spec
                .inputs()
                .get(1)
                .cloned()
                .ok_or(LowerError::MissingUnit("RAM with a write-data input"))?;
            let data = self.route_or_pass(data, &data_rf, "ram write")?;
            self.plan(Plan {
                name: format!("st_{sig_name}"),
                opu: ram,
                op: "write".to_owned(),
                operands: vec![(Some(addr), addr_rf, 0), (Some(data), data_rf, 1)],
                def: None,
                immediate: None,
                output_port: None,
                physical_dest: None,
            })
        } else {
            let value = read_value.expect("read access defines a value");
            let bus = self.syms.opus[ram_spec.name()]
                .bus
                .expect("readable RAM drives a bus");
            self.set_bus(value, bus);
            self.plan(Plan {
                name: format!("ld_{sig_name}@{depth}"),
                opu: ram,
                op: "read".to_owned(),
                operands: vec![(Some(addr), addr_rf, 0)],
                def: Some(value),
                immediate: None,
                output_port: None,
                physical_dest: None,
            })
        };
        Ok(access)
    }

    fn node(&mut self, id: NodeId) -> Result<(), LowerError> {
        let node = self.dfg.node(id);
        match node.op {
            DfgOp::Input { port } => {
                let inputs: Vec<_> = self
                    .dp
                    .opus()
                    .iter()
                    .filter(|o| o.kind() == OpuKind::Input)
                    .collect();
                if inputs.is_empty() {
                    return Err(LowerError::MissingUnit("input port (IPB)"));
                }
                let opu = inputs[port % inputs.len()];
                let value = self.value_for(id);
                let bus = self.syms.opus[opu.name()]
                    .bus
                    .expect("input ports drive a bus");
                self.set_bus(value, bus);
                let opu_name = opu.name().to_owned();
                let idx = self.plan(Plan {
                    name: format!("in_{}", node.name),
                    opu: opu_name.clone(),
                    op: "read".to_owned(),
                    operands: Vec::new(),
                    def: Some(value),
                    immediate: None,
                    output_port: Some(port),
                    physical_dest: None,
                });
                self.input_reads.entry(opu_name).or_default().push(idx);
                // Tapped inputs are also stored into their delay line.
                self.store_signal_if_tapped_by_port(port, value)?;
            }
            DfgOp::Tap { signal, depth } => {
                let value = self.value_for(id);
                let read = self.ram_access(signal, depth, None, Some(value))?;
                self.signal_taps
                    .entry(signal)
                    .or_default()
                    .push((read, depth));
            }
            DfgOp::Coeff { index } => {
                let v = self.constant(Immediate::RomAddr(index as u32), &node.name)?;
                self.node_value[id.0 as usize] = Some(v);
            }
            DfgOp::ProgConst { value } => {
                let v = self.constant(Immediate::Fixed(value), &node.name)?;
                self.node_value[id.0 as usize] = Some(v);
            }
            DfgOp::Mlt
            | DfgOp::Add
            | DfgOp::AddClip
            | DfgOp::Sub
            | DfgOp::Pass
            | DfgOp::PassClip => {
                self.compute_node(id, node)?;
            }
            DfgOp::Output { port } => {
                let outputs: Vec<_> = self
                    .dp
                    .opus()
                    .iter()
                    .filter(|o| o.kind() == OpuKind::Output)
                    .collect();
                if outputs.is_empty() {
                    return Err(LowerError::MissingUnit("output port (OPB)"));
                }
                let opu = outputs[port % outputs.len()];
                let rf = opu
                    .inputs()
                    .first()
                    .cloned()
                    .ok_or(LowerError::MissingUnit("output port with an input RF"))?;
                let src = self.node_value[node.inputs[0].0 as usize].expect("operand lowered");
                let src = self.route_or_pass(src, &rf, "output")?;
                let opu_name = opu.name().to_owned();
                let idx = self.plan(Plan {
                    name: format!("out_{}", node.name),
                    opu: opu_name.clone(),
                    op: "write".to_owned(),
                    operands: vec![(Some(src), rf, 0)],
                    def: None,
                    immediate: None,
                    output_port: Some(port),
                    physical_dest: None,
                });
                self.output_writes
                    .entry(opu_name.clone())
                    .or_default()
                    .push(idx);
                self.output_order.push((opu_name, port));
            }
            DfgOp::SignalWrite { signal } => {
                if self.dfg.signals()[signal].max_tap_depth == 0 {
                    return Ok(()); // dead state: nothing ever reads it
                }
                let data = self.node_value[node.inputs[0].0 as usize].expect("operand lowered");
                let write = self.ram_access(signal, 0, Some(data), None)?;
                self.signal_writes.insert(signal, write);
            }
        }
        Ok(())
    }

    /// Stores an input sample into its delay line when the input is
    /// tapped.
    fn store_signal_if_tapped_by_port(
        &mut self,
        port: usize,
        value: ValueId,
    ) -> Result<(), LowerError> {
        let name = &self.dfg.input_ports()[port];
        let signal = self
            .dfg
            .signals()
            .iter()
            .position(|s| &s.name == name)
            .expect("inputs are signals");
        if self.dfg.signals()[signal].max_tap_depth > 0 {
            let write = self.ram_access(signal, 0, Some(value), None)?;
            self.signal_writes.insert(signal, write);
        }
        Ok(())
    }

    fn compute_node(&mut self, id: NodeId, node: &dspcc_dfg::DfgNode) -> Result<(), LowerError> {
        let op = match node.op {
            DfgOp::Mlt => "mult",
            DfgOp::Add => "add",
            DfgOp::AddClip => "add_clip",
            DfgOp::Sub => "sub",
            DfgOp::Pass => "pass",
            DfgOp::PassClip => "pass_clip",
            _ => unreachable!("compute_node called on non-compute op"),
        };
        let commutative = matches!(node.op, DfgOp::Mlt | DfgOp::Add);
        let operand_values: Vec<ValueId> = node
            .inputs
            .iter()
            .map(|n| self.node_value[n.0 as usize].expect("operand lowered first"))
            .collect();

        // Candidate OPUs are borrowed straight from the datapath (its
        // lifetime outlives the context) — no per-node clone of names,
        // input lists, or buses.
        let candidates: Vec<&dspcc_arch::OpuSpec> = self
            .dp
            .opus_supporting(op)
            .into_iter()
            .filter(|o| o.inputs().len() >= operand_values.len() && o.output_bus().is_some())
            .collect();
        if candidates.is_empty() {
            return Err(LowerError::NoOpuFor(op.to_owned()));
        }
        // Prefer the least-loaded feasible candidate (the per-OPU load is
        // maintained incrementally as plans are created).
        let mut ordered = candidates.clone();
        ordered.sort_by_key(|o| self.opu_load.get(o.name()).copied().unwrap_or(0));

        for cand in ordered {
            let (opu, inputs) = (cand.name(), cand.inputs());
            let orders: Vec<Vec<usize>> = if operand_values.len() == 2 && commutative {
                vec![vec![0, 1], vec![1, 0]]
            } else {
                vec![(0..operand_values.len()).collect()]
            };
            // Among routable port assignments, prefer the one that adds
            // the least load to the busiest write port it touches:
            // write ports are 1-per-cycle resources, so imbalance turns
            // directly into schedule length.
            let mut best: Option<(usize, Vec<usize>)> = None;
            for order in orders {
                let mut routable = true;
                let mut cost = 0usize;
                for (port_idx, &operand_idx) in order.iter().enumerate() {
                    let v = operand_values[operand_idx];
                    let rf = &inputs[port_idx];
                    if !self.can_route(v, rf) {
                        routable = false;
                        break;
                    }
                    let rf_res = self.rf_syms(rf).res;
                    if !self.already_routed(v, rf_res) {
                        cost = cost.max(self.wp_load.get(&rf_res).copied().unwrap_or(0) + 1);
                    }
                }
                if routable && best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                    best = Some((cost, order));
                }
            }
            if let Some((_, order)) = best {
                let mut by_source: Vec<(Option<ValueId>, String, u32)> =
                    vec![(None, String::new(), 0); order.len()];
                for (port_idx, &operand_idx) in order.iter().enumerate() {
                    let v = operand_values[operand_idx];
                    let rf = &inputs[port_idx];
                    self.route(v, rf, op).expect("checked routable");
                    by_source[operand_idx] = (Some(v), rf.clone(), port_idx as u32);
                }
                let value = self.value_for(id);
                let bus = self.syms.opus[opu].bus.expect("compute unit drives a bus");
                self.set_bus(value, bus);
                self.plan(Plan {
                    name: format!("{op}_{}", node.name),
                    opu: opu.to_owned(),
                    op: op.to_owned(),
                    operands: by_source,
                    def: Some(value),
                    immediate: None,
                    output_port: None,
                    physical_dest: None,
                });
                return Ok(());
            }
        }
        // Direct routing failed everywhere: retry first candidate with
        // pass-insertion per operand.
        let cand = candidates[0];
        let (opu, inputs) = (cand.name(), cand.inputs());
        let mut operands: Vec<(Option<ValueId>, String, u32)> = Vec::new();
        for (port_idx, &v) in operand_values.iter().enumerate() {
            let rf = &inputs[port_idx];
            let routed = self.route_or_pass(v, rf, op)?;
            operands.push((Some(routed), rf.clone(), port_idx as u32));
        }
        let value = self.value_for(id);
        let bus = self.syms.opus[opu].bus.expect("compute unit drives a bus");
        self.set_bus(value, bus);
        self.plan(Plan {
            name: format!("{op}_{}", node.name),
            opu: opu.to_owned(),
            op: op.to_owned(),
            operands,
            def: Some(value),
            immediate: None,
            output_port: None,
            physical_dest: None,
        });
        Ok(())
    }

    /// Materialises a plan into an [`Rt`] with full usage specification.
    fn emit(&self, plan: &Plan) -> Rt {
        let mut rt = Rt::new(plan.name.clone());
        let opu_spec = self.dp.opu(&plan.opu).expect("validated opu");
        rt.set_latency(opu_spec.latency_of(&plan.op).unwrap_or(1));
        let opu = &self.syms.opus[&plan.opu];
        // Operands.
        for (value, rf, _) in &plan.operands {
            let rf_res = self.rf_syms(rf).res;
            match value {
                Some(v) => {
                    rt.add_operand(RegRef::new(rf_res, VIRTUAL_BASE + v.0));
                    rt.add_use(*v);
                }
                None => rt.add_operand(RegRef::new(rf_res, 0)), // pinned fp
            }
        }
        // OPU, buffer and bus usage. An RT that produces a result drives
        // the unit's buffer and bus, whose usage (tagged with the produced
        // value) disambiguates different transfers. Result-less operations
        // (RAM writes, output-port writes) leave the bus free — their OPU
        // usage carries the operand values instead, so two *different*
        // writes can never share the unit while identical ones still may.
        // All fixed symbols come interned from the per-datapath cache;
        // only the value tags are constructed here.
        let result_tag = match (&plan.def, &plan.physical_dest) {
            (Some(v), _) => Some(format!("v{}", v.0)),
            (None, Some(_)) => Some("fp".to_owned()),
            (None, None) => None,
        };
        match &result_tag {
            Some(tag) => {
                rt.add_usage_id(opu.res, self.syms.token(&plan.op));
                let bus = opu.bus.expect("result-producing unit drives a bus");
                rt.add_usage_id(opu.buf, self.syms.write_token);
                rt.add_usage_id(bus, UsageId::of_apply1(&plan.op, tag));
            }
            None => {
                let args: Vec<String> = plan
                    .operands
                    .iter()
                    .map(|(v, _, _)| match v {
                        Some(v) => format!("v{}", v.0),
                        None => "fp".to_owned(),
                    })
                    .collect();
                rt.add_usage_id(opu.res, UsageId::of(&Usage::apply(&plan.op, args)));
            }
        }
        // Destinations.
        if let Some(def) = plan.def {
            rt.add_def(def);
            let empty = Vec::new();
            let rfs = self.demand.get(def.0 as usize).unwrap_or(&empty);
            for &rf_res in rfs {
                rt.add_dest(RegRef::new(rf_res, VIRTUAL_BASE + def.0));
                self.dest_usage(&mut rt, rf_res, opu.bus, &format!("v{}", def.0));
            }
        }
        if let Some((rf, index)) = &plan.physical_dest {
            let rf_res = self.rf_syms(rf).res;
            rt.add_dest(RegRef::new(rf_res, *index));
            self.dest_usage(&mut rt, rf_res, opu.bus, "fp");
        }
        rt
    }

    fn dest_usage(&self, rt: &mut Rt, rf: Resource, bus: Option<Resource>, tag: &str) {
        let spec = &self.syms.rfs[rf.name()];
        if let Some(mux) = spec.mux {
            let bus = bus.expect("mux write implies a bus");
            rt.add_usage_id(mux, self.syms.pass_of_bus[&bus]);
        }
        rt.add_usage_id(spec.wp, UsageId::of_apply1("write", tag));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_arch::DatapathBuilder;
    use dspcc_dfg::parse;

    /// A small audio-style core: IPB, OPB, ACU+RAM, ROM, PRG_C, MULT, ALU.
    pub(crate) fn test_core() -> Datapath {
        DatapathBuilder::new()
            .register_file("rf_acu_base", 2)
            .register_file("rf_acu_off", 8)
            .register_file("rf_ram_addr", 8)
            .register_file("rf_ram_data", 8)
            .register_file("rf_mult_c", 8)
            .register_file("rf_mult_x", 8)
            .register_file("rf_alu_a", 8)
            .register_file("rf_alu_b", 8)
            .register_file("rf_opb_1", 4)
            .register_file("rf_opb_2", 4)
            .opu(OpuKind::Input, "ipb", &[("read", 1)])
            .output("ipb", "bus_ipb")
            .opu(OpuKind::Output, "opb_1", &[("write", 1)])
            .inputs("opb_1", &["rf_opb_1"])
            .opu(OpuKind::Output, "opb_2", &[("write", 1)])
            .inputs("opb_2", &["rf_opb_2"])
            .opu(OpuKind::Acu, "acu", &[("addmod", 1)])
            .inputs("acu", &["rf_acu_base", "rf_acu_off"])
            .output("acu", "bus_acu")
            .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
            .memory("ram", 64)
            .inputs("ram", &["rf_ram_addr", "rf_ram_data"])
            .output("ram", "bus_ram")
            .opu(OpuKind::Rom, "rom", &[("const", 1)])
            .memory("rom", 64)
            .output("rom", "bus_rom")
            .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
            .output("prgc", "bus_prgc")
            .opu(OpuKind::Mult, "mult", &[("mult", 1)])
            .inputs("mult", &["rf_mult_c", "rf_mult_x"])
            .output("mult", "bus_mult")
            .opu(
                OpuKind::Alu,
                "alu",
                &[
                    ("add", 1),
                    ("add_clip", 1),
                    ("sub", 1),
                    ("pass", 1),
                    ("pass_clip", 1),
                ],
            )
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .write_port("rf_acu_base", &["bus_acu"])
            .write_port("rf_acu_off", &["bus_prgc"])
            .write_port("rf_ram_addr", &["bus_acu"])
            .write_port("rf_ram_data", &["bus_alu", "bus_ipb"])
            .write_port("rf_mult_c", &["bus_rom", "bus_prgc"])
            .write_port("rf_mult_x", &["bus_ram", "bus_ipb", "bus_alu"])
            .write_port(
                "rf_alu_a",
                &["bus_mult", "bus_ram", "bus_ipb", "bus_prgc", "bus_alu"],
            )
            .write_port("rf_alu_b", &["bus_alu", "bus_mult", "bus_ram"])
            .write_port("rf_opb_1", &["bus_alu"])
            .write_port("rf_opb_2", &["bus_alu"])
            .build()
            .unwrap()
    }

    fn lower_src(src: &str) -> Lowering {
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        lower(&dfg, &test_core(), &LowerOptions::default()).unwrap()
    }

    #[test]
    fn passthrough_lowers_to_three_rts() {
        let l = lower_src("input u; output y; y = pass(u);");
        // in → pass → out.
        assert_eq!(l.program.rt_count(), 3);
        l.program.validate().unwrap();
        let names: Vec<&str> = l.program.rts().map(|(_, rt)| rt.name()).collect();
        assert!(names[0].starts_with("in_"));
        assert!(names[1].starts_with("pass_"));
        assert!(names[2].starts_with("out_"));
    }

    #[test]
    fn usage_specification_matches_figure_2_shape() {
        let l = lower_src("input u; output y; y = pass(u);");
        let pass_rt = l.program.rt(RtId(1));
        assert_eq!(pass_rt.usage_of("alu"), Some(&Usage::token("pass")));
        assert_eq!(pass_rt.usage_of("buf_alu"), Some(&Usage::token("write")));
        assert!(pass_rt.usage_of("bus_alu").is_some());
        // Dest rf_opb_1 has a single write bus → no mux, only a write port.
        assert!(pass_rt.usage_of("wp_rf_opb_1").is_some());
        assert!(pass_rt.usage_of("mux_rf_opb_1").is_none());
    }

    #[test]
    fn tap_generates_const_addmod_read() {
        let l = lower_src("input u; output y; y = pass(u@1);");
        // in, store chain (const+addmod+write), tap chain (const+addmod+read),
        // pass, out; fp update + its const.
        let names: Vec<&str> = l.program.rts().map(|(_, rt)| rt.name()).collect();
        assert!(names.iter().any(|n| n.starts_with("addmod_u")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("st_u")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("ld_u@1")), "{names:?}");
        assert!(names.contains(&"fp_update"), "{names:?}");
        l.program.validate().unwrap();
    }

    #[test]
    fn fp_update_is_ordered_after_address_computations() {
        let l = lower_src("input u; output y; y = pass(u@1);");
        let fp = l
            .program
            .rts()
            .find(|(_, rt)| rt.name() == "fp_update")
            .map(|(id, _)| id)
            .unwrap();
        let zero_edges: Vec<_> = l
            .sequence_edges
            .iter()
            .filter(|&&(_, to, sep)| to == fp && sep == 0)
            .collect();
        assert_eq!(zero_edges.len(), 2, "2 addmods must precede fp_update");
        // fp_update writes the pinned physical register.
        let rt = l.program.rt(fp);
        assert_eq!(rt.dests()[0].rf().name(), "rf_acu_base");
        assert_eq!(rt.dests()[0].index(), 0);
        assert_eq!(l.fp_reg, ("rf_acu_base".to_owned(), 0));
    }

    #[test]
    fn ram_layout_uses_power_of_two_regions() {
        let l = lower_src(
            "input u; signal v; output y;
             v = add(u, v@1); y = pass(u@3);",
        );
        // max depth 3 → region 4; two tapped signals (u and v).
        assert_eq!(l.ram_layout.region_size, 4);
        assert_eq!(l.ram_layout.total_words, 8);
        let bases: Vec<u32> = l
            .ram_layout
            .bases
            .iter()
            .filter(|&&b| b != u32::MAX)
            .copied()
            .collect();
        assert_eq!(bases, vec![0, 4]);
    }

    #[test]
    fn immediates_encode_base_plus_depth() {
        let l = lower_src("input u; output y; y = pass(u@2);");
        // Region size 4 (depth 2 → next pow2 = 4), base 0: store offset 0,
        // tap offset 2, fp step 3.
        let imms: Vec<Immediate> = l.immediates.values().copied().collect();
        assert!(imms.contains(&Immediate::Raw(0)));
        assert!(imms.contains(&Immediate::Raw(2)));
        assert!(imms.contains(&Immediate::Raw(3)));
    }

    #[test]
    fn coefficients_become_rom_fetches() {
        let l = lower_src("input u; coeff k = 0.5; output y; y = mlt(k, u);");
        assert_eq!(l.rom_image, vec![0.5]);
        let rom_rts: Vec<_> = l
            .program
            .rts()
            .filter(|(_, rt)| rt.usage_of("rom").is_some())
            .collect();
        assert_eq!(rom_rts.len(), 1);
        let (id, _) = rom_rts[0];
        assert_eq!(l.immediates.get(&id), Some(&Immediate::RomAddr(0)));
    }

    #[test]
    fn cse_merges_identical_constants() {
        let src = "input u; output y; output z;
                   y = mlt(0.5, u); z = mlt(0.5, u);";
        let with = lower_src(src);
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let without = lower(
            &dfg,
            &test_core(),
            &LowerOptions {
                cse_constants: false,
            },
        )
        .unwrap();
        let count = |l: &Lowering| {
            l.program
                .rts()
                .filter(|(_, rt)| rt.usage_of("prgc").is_some())
                .count()
        };
        assert_eq!(count(&with), 1);
        assert_eq!(count(&without), 2);
        with.program.validate().unwrap();
        without.program.validate().unwrap();
    }

    #[test]
    fn multi_consumer_value_gets_multiple_dests() {
        // u feeds both mult (rf_mult_x) and alu (rf_alu_a).
        let l = lower_src("input u; coeff k = 0.5; output y; y = add(mlt(k, u), u);");
        let in_rt = l
            .program
            .rts()
            .find(|(_, rt)| rt.name().starts_with("in_"))
            .map(|(_, rt)| rt)
            .unwrap();
        let dest_rfs: Vec<&str> = in_rt.dests().iter().map(|d| d.rf().name()).collect();
        assert!(dest_rfs.contains(&"rf_mult_x"), "{dest_rfs:?}");
        assert!(dest_rfs.contains(&"rf_alu_a") || dest_rfs.contains(&"rf_alu_b"));
        // Multi-dest RTs use one write port per destination.
        assert!(in_rt.usage_of("wp_rf_mult_x").is_some());
    }

    #[test]
    fn mux_usage_emitted_for_multi_bus_rfs() {
        let l = lower_src("input u; coeff k = 0.5; output y; y = mlt(k, u);");
        // rf_mult_x has 3 write buses → mux; the IPB read writing it must
        // claim the mux input for bus_ipb.
        let in_rt = l
            .program
            .rts()
            .find(|(_, rt)| rt.name().starts_with("in_"))
            .map(|(_, rt)| rt)
            .unwrap();
        assert_eq!(
            in_rt.usage_of("mux_rf_mult_x"),
            Some(&Usage::apply("pass", ["bus_ipb"]))
        );
    }

    #[test]
    fn input_reads_are_sequenced() {
        let l = lower_src("input l; input r; output y; y = add(l, r);");
        assert!(
            l.sequence_edges
                .iter()
                .any(|&(a, b, sep)| sep == 1 && a.0 < b.0),
            "two IPB reads must be ordered: {:?}",
            l.sequence_edges
        );
    }

    #[test]
    fn outputs_round_robin_over_opbs_and_record_order() {
        let l = lower_src(
            "input u; output a; output b; output c;
             a = pass(u); b = pass(u); c = pass(u);",
        );
        let opbs: Vec<&str> = l.output_order.iter().map(|(o, _)| o.as_str()).collect();
        assert_eq!(opbs, vec!["opb_1", "opb_2", "opb_1"]);
        let ports: Vec<usize> = l.output_order.iter().map(|(_, p)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2]);
    }

    #[test]
    fn loop_edges_connect_writes_to_taps() {
        let l = lower_src("input u; signal v; output y; v = add(u, v@2); y = v;");
        // Write of v → tap v@2 at distance 2.
        let has = l.loop_edges.iter().any(|&(from, to, d)| {
            d == 2
                && l.program.rt(from).name().starts_with("st_v")
                && l.program.rt(to).name().starts_with("ld_v@2")
        });
        assert!(has, "{:?}", l.loop_edges);
        // fp update → every fp reader at distance 1.
        assert!(l
            .loop_edges
            .iter()
            .any(|&(from, _, d)| { d == 1 && l.program.rt(from).name() == "fp_update" }));
    }

    #[test]
    fn commutative_swap_routes_mult_operands() {
        // mlt(u, k): u (bus_ipb) cannot reach rf_mult_c, but swapping
        // puts k (bus_rom) there and u in rf_mult_x.
        let l = lower_src("input u; coeff k = 0.5; output y; y = mlt(u, k);");
        let mult_rt = l
            .program
            .rts()
            .find(|(_, rt)| rt.usage_of("mult").is_some())
            .map(|(_, rt)| rt)
            .unwrap();
        let rfs: Vec<&str> = mult_rt.operands().iter().map(|o| o.rf().name()).collect();
        assert_eq!(rfs.len(), 2);
        assert!(rfs.contains(&"rf_mult_c"));
        assert!(rfs.contains(&"rf_mult_x"));
    }

    #[test]
    fn pass_inserted_for_unroutable_path() {
        // mult result → RAM data needs a pass through the ALU
        // (rf_ram_data accepts only bus_alu and bus_ipb).
        let l = lower_src(
            "input u; coeff k = 0.5; signal v; output y;
             v = mlt(k, u); y = pass(v@1);",
        );
        let names: Vec<&str> = l.program.rts().map(|(_, rt)| rt.name()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("route_")),
            "expected a routing pass: {names:?}"
        );
        l.program.validate().unwrap();
    }

    #[test]
    fn ram_overflow_detected() {
        let src = "input u; output y; y = pass(u@60);"; // region 64 > 64? 64 fits exactly
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let result = lower(&dfg, &test_core(), &LowerOptions::default());
        assert!(result.is_ok()); // 64-word region fits the 64-word RAM
        let src = "input u; signal v; output y; v = pass(u@60); y = v@33;";
        let dfg = Dfg::build(&parse(src).unwrap()).unwrap();
        let err = lower(&dfg, &test_core(), &LowerOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                LowerError::RamOverflow {
                    needed: 128,
                    available: 64
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn rom_overflow_detected() {
        // 65 distinct coefficients on a 64-word ROM: address 64 fits the
        // 7-bit field width_for(64) derives but lies past the image, so
        // the lowering must reject it (the simulator would otherwise trap
        // at runtime — the conformance-fleet bug this check pins).
        let mut src = String::from("input u; output y;\n");
        for i in 0..65 {
            src.push_str(&format!("coeff k{i} = 0.{:03};\n", i + 1));
        }
        src.push_str("acc0 := mlt(k0, u);\n");
        for i in 1..65 {
            src.push_str(&format!("acc{i} := add(acc{}, mlt(k{i}, u));\n", i - 1));
        }
        src.push_str("y = pass_clip(acc64);\n");
        let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
        let err = lower(&dfg, &test_core(), &LowerOptions::default()).unwrap_err();
        assert_eq!(
            err,
            LowerError::RomOverflow {
                needed: 65,
                available: 64
            },
            "{err}"
        );
        assert!(err.to_string().contains("ROM words"));
    }

    #[test]
    fn missing_unit_reported() {
        let tiny = DatapathBuilder::new()
            .register_file("rf_alu_a", 4)
            .register_file("rf_alu_b", 4)
            .opu(OpuKind::Alu, "alu", &[("add", 1), ("pass", 1)])
            .inputs("alu", &["rf_alu_a", "rf_alu_b"])
            .output("alu", "bus_alu")
            .opu(OpuKind::Input, "ipb", &[("read", 1)])
            .output("ipb", "bus_ipb")
            .write_port("rf_alu_a", &["bus_alu", "bus_ipb"])
            .write_port("rf_alu_b", &["bus_alu", "bus_ipb"])
            .build()
            .unwrap();
        let dfg = Dfg::build(&parse("input u; output y; y = pass(u@1);").unwrap()).unwrap();
        let err = lower(&dfg, &tiny, &LowerOptions::default()).unwrap_err();
        assert!(matches!(err, LowerError::MissingUnit(_)), "{err}");
        // And without outputs hardware:
        let dfg2 = Dfg::build(&parse("input u; output y; y = pass(u);").unwrap()).unwrap();
        let err2 = lower(&dfg2, &tiny, &LowerOptions::default()).unwrap_err();
        assert_eq!(err2, LowerError::MissingUnit("output port (OPB)"));
    }

    #[test]
    fn operand_order_preserved_for_sub() {
        let l = lower_src("input u; output y; y = sub(u, 0.25);");
        let sub_rt = l
            .program
            .rts()
            .find(|(_, rt)| rt.usage_of("alu") == Some(&Usage::token("sub")))
            .map(|(_, rt)| rt)
            .unwrap();
        // Operand 0 must be u (minuend), operand 1 the constant.
        assert_eq!(sub_rt.operands().len(), 2);
        let uses = sub_rt.uses();
        let u_name = l.program.value(uses[0]).name().to_owned();
        assert_eq!(u_name, "u");
    }

    #[test]
    fn virtual_register_indices_above_base() {
        let l = lower_src("input u; output y; y = pass(u);");
        for (_, rt) in l.program.rts() {
            for reg in rt.dests().iter().chain(rt.operands()) {
                assert!(
                    reg.index() >= VIRTUAL_BASE || reg.rf().name() == "rf_acu_base",
                    "unexpected physical register {reg}"
                );
            }
        }
    }

    #[test]
    fn error_display() {
        let e = LowerError::NoRoute {
            value: "v".into(),
            op: "mult".into(),
            rf: "rf_x".into(),
        };
        assert!(e.to_string().contains("cannot be routed"));
        assert!(LowerError::NoOpuFor("fft".into())
            .to_string()
            .contains("fft"));
    }
}
