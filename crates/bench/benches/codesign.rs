//! Co-design benchmarks: what one HW/SW Pareto sweep costs.
//!
//! `union_cores` is one cross-core structural union plus ISA
//! re-derivation — the fixed overhead of every union candidate.
//! `hw_cost` is the hardware-cost model on a generated core (datapath
//! walk + encoder field layout). `sweep_4x2` is a whole small sweep —
//! 4 seeds + 2 adjacent unions + merge moves × 2 apps, every point
//! differentially verified — the unit CI's codesign-smoke job runs; its
//! throughput decides how much of the design space each change explores
//! per CI-minute.

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::codesign::{Codesign, HwCost};
use dspcc::{apps, cores};

fn bench_codesign(c: &mut Criterion) {
    let mut group = c.benchmark_group("codesign");
    group.sample_size(10);

    group.bench_function("union_cores", |b| {
        // Rotate the pair so the interner's warm path is what's measured;
        // adjacent generated cores union cleanly (pinned by the fleet).
        let mut seed = 0u64;
        b.iter(|| {
            seed = (seed + 2) % 32;
            cores::merged_core(seed, seed + 1).expect("backbone pair unions")
        })
    });

    let core = cores::generated_core(1);
    group.bench_function("hw_cost", |b| {
        b.iter(|| {
            let cost = HwCost::of(&core);
            assert!(cost.scalar() > 0);
            cost
        })
    });

    let sweep = Codesign::new()
        .seed_range(0..4)
        .union_adjacent()
        .app("fir8", apps::fir(8))
        .app("sop6", apps::sum_of_products(6))
        .frames(4)
        .threads(1);
    group.bench_function("sweep_4x2", |b| {
        b.iter(|| {
            let report = sweep.run();
            assert_eq!(report.mismatches().count(), 0);
            assert!(!report.frontier.is_empty());
            report
        })
    });

    group.finish();
}

criterion_group!(benches, bench_codesign);
criterion_main!(benches);
