//! Scheduler runtime: list scheduling, insertion scheduling, compaction,
//! and folding on generated DSP workloads of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspcc::dfg::{parse, Dfg};
use dspcc::rtgen::{lower, LowerOptions, Lowering};
use dspcc::sched::bounds::length_lower_bound;
use dspcc::sched::compact::schedule_and_compact;
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::folding::fold_schedule;
use dspcc::sched::list::{
    best_effort_schedule_threaded, insertion_schedule, list_schedule, ListConfig,
};
use dspcc::sched::ConflictMatrix;
use dspcc::{apps, cores};

fn lowered_fir(taps: usize) -> (Lowering, DependenceGraph) {
    let core = cores::audio_core();
    let dfg = Dfg::build(&parse(&apps::fir(taps)).unwrap()).unwrap();
    let lowering = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    let deps =
        DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
    (lowering, deps)
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    for taps in [8usize, 16, 32] {
        let (lowering, deps) = lowered_fir(taps);
        let matrix = ConflictMatrix::build(&lowering.program);
        group.bench_with_input(BenchmarkId::new("list", taps), &taps, |b, _| {
            b.iter(|| list_schedule(&lowering.program, &deps, &ListConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("insertion", taps), &taps, |b, _| {
            b.iter(|| {
                insertion_schedule(&lowering.program, &deps, &matrix, &ListConfig::default())
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("compacted", taps), &taps, |b, _| {
            b.iter(|| schedule_and_compact(&lowering.program, &deps, None, 2).unwrap())
        });
    }
    // Folding on a feedback cascade.
    let core = cores::audio_core();
    let dfg = Dfg::build(&parse(&apps::biquad_cascade(6)).unwrap()).unwrap();
    let lowering = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    let deps =
        DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
    let edges: Vec<dspcc::sched::folding::LoopEdge> = lowering
        .loop_edges
        .iter()
        .map(|&(from, to, distance)| dspcc::sched::folding::LoopEdge { from, to, distance })
        .collect();
    group.bench_function("fold_biquad6", |b| {
        b.iter(|| fold_schedule(&lowering.program, &deps, &edges, 64).unwrap())
    });
    group.finish();
}

/// The bound-aware restart engine: how much the provable lower bound
/// costs to compute, and what the full restart roster costs serially vs
/// on worker threads (bit-identical output either way).
fn bench_bound_cutoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_cutoff");
    for taps in [16usize, 32] {
        let (lowering, deps) = lowered_fir(taps);
        let matrix = ConflictMatrix::build(&lowering.program);
        group.bench_with_input(BenchmarkId::new("bound_compute", taps), &taps, |b, _| {
            b.iter(|| length_lower_bound(&lowering.program, &deps, &matrix))
        });
        group.bench_with_input(BenchmarkId::new("restarts_serial", taps), &taps, |b, _| {
            b.iter(|| best_effort_schedule_threaded(&lowering.program, &deps, None, 4, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("restarts_auto", taps), &taps, |b, _| {
            b.iter(|| best_effort_schedule_threaded(&lowering.program, &deps, None, 4, 0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_bound_cutoff);
criterion_main!(benches);
