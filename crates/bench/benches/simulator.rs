//! Cycle-accurate simulation throughput: frames per second of the audio
//! core running the figure-7 application, and the reference interpreter
//! for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::dfg::Interpreter;
use dspcc::{apps, cores, Compiler};

fn bench_simulator(c: &mut Criterion) {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::audio_application())
        .expect("audio application compiles");
    let mut group = c.benchmark_group("simulator");
    group.bench_function("audio_frame/cycle_accurate", |b| {
        let mut sim = compiled.simulator().unwrap();
        b.iter(|| sim.step_frame(&[1000, -1000]).unwrap())
    });
    group.bench_function("audio_frame/interpreter", |b| {
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        b.iter(|| interp.step(&[1000, -1000]))
    });
    group.finish();
}

/// Pre-decoded fast path vs the retained decode-per-cycle reference —
/// the direct measurement of what construction-time decoding buys.
fn bench_sim_predecoded(c: &mut Criterion) {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::audio_application())
        .expect("audio application compiles");
    let mut group = c.benchmark_group("sim_predecoded");
    group.bench_function("audio_frame/predecoded", |b| {
        let mut sim = compiled.simulator().unwrap();
        b.iter(|| sim.step_frame(&[1000, -1000]).unwrap())
    });
    group.bench_function("audio_frame/reference", |b| {
        let mut sim =
            dspcc::sim::reference::ReferenceSim::new(&core.datapath, &compiled.microcode).unwrap();
        b.iter(|| sim.step_frame(&[1000, -1000]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_sim_predecoded);
criterion_main!(benches);
