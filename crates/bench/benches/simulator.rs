//! Cycle-accurate simulation throughput: frames per second of the audio
//! core running the figure-7 application, and the reference interpreter
//! for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::dfg::Interpreter;
use dspcc::{apps, cores, Compiler};

fn bench_simulator(c: &mut Criterion) {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::audio_application())
        .expect("audio application compiles");
    let mut group = c.benchmark_group("simulator");
    group.bench_function("audio_frame/cycle_accurate", |b| {
        let mut sim = compiled.simulator().unwrap();
        b.iter(|| sim.step_frame(&[1000, -1000]).unwrap())
    });
    group.bench_function("audio_frame/interpreter", |b| {
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        b.iter(|| interp.step(&[1000, -1000]))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
