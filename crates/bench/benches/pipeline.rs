//! Whole-compiler runtime (figure 1b, all stages) on the paper's audio
//! application and on FIR filters of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspcc::{apps, cores, Compiler};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let audio = cores::audio_core();
    let audio_src = apps::audio_application();
    group.bench_function("audio_application", |b| {
        b.iter(|| {
            Compiler::new(&audio)
                .restarts(2)
                .compile(&audio_src)
                .unwrap()
        })
    });
    let tiny = cores::tiny_core();
    for n in [4usize, 8, 16] {
        let src = apps::sum_of_products(n);
        group.bench_with_input(BenchmarkId::new("sum_of_products", n), &src, |b, src| {
            b.iter(|| Compiler::new(&tiny).compile(src).unwrap())
        });
    }
    group.finish();
}

/// End-to-end `Compiler::compile` throughput — the serving metric: how many
/// compile requests per second one core can sustain, across workload sizes.
/// Everything the bitset rewrite touched (conflict graph, clique cover,
/// scheduler restarts) sits on this path.
fn bench_compile_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_throughput");
    group.sample_size(10);
    let audio = cores::audio_core();
    group.bench_function("audio_application", |b| {
        let src = apps::audio_application();
        b.iter(|| Compiler::new(&audio).restarts(1).compile(&src).unwrap())
    });
    for taps in [8usize, 16, 32] {
        let src = apps::fir(taps);
        group.bench_with_input(BenchmarkId::new("fir", taps), &src, |b, src| {
            b.iter(|| Compiler::new(&audio).restarts(1).compile(src).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_compile_throughput);
criterion_main!(benches);
