//! Whole-compiler runtime (figure 1b, all stages) on the paper's audio
//! application and on FIR filters of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspcc::{apps, cores, Compiler};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let audio = cores::audio_core();
    let audio_src = apps::audio_application();
    group.bench_function("audio_application", |b| {
        b.iter(|| {
            Compiler::new(&audio)
                .restarts(2)
                .compile(&audio_src)
                .unwrap()
        })
    });
    let tiny = cores::tiny_core();
    for n in [4usize, 8, 16] {
        let src = apps::sum_of_products(n);
        group.bench_with_input(BenchmarkId::new("sum_of_products", n), &src, |b, src| {
            b.iter(|| Compiler::new(&tiny).compile(src).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
