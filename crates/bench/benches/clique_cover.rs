//! E8 (runtime side) — edge-clique-cover algorithms on conflict graphs:
//! the paper's figure-6 graph plus random graphs of growing size, and the
//! bitset-vs-naive comparison that measures the word-packed rewrite
//! (`greedy_vs_naive` / `maximal_cliques` groups; see DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspcc::graph::cliques::{maximal_cliques, CliqueScratch};
use dspcc::graph::cover::{
    greedy_edge_clique_cover, minimum_edge_clique_cover, per_edge_clique_cover,
};
use dspcc::graph::naive::{naive_greedy_edge_clique_cover, naive_maximal_cliques};
use dspcc::graph::UndirectedGraph;

fn paper_graph() -> UndirectedGraph {
    let mut g = UndirectedGraph::new(6);
    for &(a, b) in &[
        (0, 4),
        (0, 5),
        (1, 2),
        (1, 3),
        (1, 4),
        (1, 5),
        (2, 4),
        (2, 5),
        (3, 4),
        (3, 5),
    ] {
        g.add_edge(a, b);
    }
    g
}

/// Deterministic pseudo-random conflict graph with ~40% density.
fn random_graph(n: usize, seed: u64) -> UndirectedGraph {
    let mut g = UndirectedGraph::new(n);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for a in 0..n {
        for b in (a + 1)..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 10 < 4 {
                g.add_edge(a, b);
            }
        }
    }
    g
}

fn bench_covers(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_cover");
    let paper = paper_graph();
    group.bench_function("paper_fig6/per_edge", |b| {
        b.iter(|| per_edge_clique_cover(&paper))
    });
    group.bench_function("paper_fig6/greedy", |b| {
        b.iter(|| greedy_edge_clique_cover(&paper))
    });
    group.bench_function("paper_fig6/exact_minimum", |b| {
        b.iter(|| minimum_edge_clique_cover(&paper))
    });
    for n in [8usize, 12, 16, 24, 64, 128, 256] {
        let g = random_graph(n, 42);
        group.bench_with_input(BenchmarkId::new("greedy_random", n), &g, |b, g| {
            b.iter(|| greedy_edge_clique_cover(g))
        });
    }
    for n in [8usize, 10, 12] {
        let g = random_graph(n, 42);
        group.bench_with_input(BenchmarkId::new("exact_random", n), &g, |b, g| {
            b.iter(|| minimum_edge_clique_cover(g))
        });
    }
    group.finish();
}

/// The rewrite's headline numbers: bitset greedy cover vs the retained
/// naive reference on the same random conflict graphs (the acceptance
/// target is ≥5× at n = 128).
fn bench_greedy_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_vs_naive");
    for n in [64usize, 128] {
        let g = random_graph(n, 42);
        group.bench_with_input(BenchmarkId::new("bitset", n), &g, |b, g| {
            b.iter(|| greedy_edge_clique_cover(g))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &g, |b, g| {
            b.iter(|| naive_greedy_edge_clique_cover(g))
        });
    }
    group.finish();
}

/// Maximal clique enumeration through the allocation-free bitset path vs
/// the Vec-churning reference, on an n = 64 random conflict graph.
fn bench_maximal_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_cliques");
    let g = random_graph(64, 42);
    group.bench_function("bitset/64", |b| b.iter(|| maximal_cliques(&g)));
    group.bench_function("bitset_scratch_reuse/64", |b| {
        let mut scratch = CliqueScratch::new(64);
        b.iter(|| {
            let mut count = 0usize;
            maximal_cliques_count(&g, &mut scratch, &mut count);
            count
        })
    });
    group.bench_function("naive/64", |b| b.iter(|| naive_maximal_cliques(&g)));
    group.finish();
}

fn maximal_cliques_count(g: &UndirectedGraph, scratch: &mut CliqueScratch, count: &mut usize) {
    dspcc::graph::cliques::maximal_cliques_with(g, scratch, |_| *count += 1);
}

criterion_group!(
    benches,
    bench_covers,
    bench_greedy_vs_naive,
    bench_maximal_cliques
);
criterion_main!(benches);
