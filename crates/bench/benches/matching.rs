//! E6 (runtime side) — Hopcroft–Karp vs the Kuhn oracle on bipartite
//! interval graphs like those of the execution-interval analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspcc::graph::matching::{maximum_matching_kuhn, BipartiteGraph};

/// RTs × cycles interval graph: RT i may go to cycles [i/2, i/2 + span).
fn interval_graph(n: usize, span: usize) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(n, n + span);
    for i in 0..n {
        for t in 0..span {
            g.add_edge(i, i / 2 + t);
        }
    }
    g
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for n in [32usize, 128, 512] {
        let g = interval_graph(n, 8);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &g, |b, g| {
            b.iter(|| g.maximum_matching())
        });
        group.bench_with_input(BenchmarkId::new("kuhn", n), &g, |b, g| {
            b.iter(|| maximum_matching_kuhn(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
