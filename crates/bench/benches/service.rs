//! Compile-service throughput: what the queue + worker-pool layer
//! costs over calling the session directly.
//!
//! `round_trip_warm` measures one submit → wait round trip through a
//! fully warmed service (every stage a memo hit), i.e. pure dispatch
//! overhead: admission control, queueing, worker hand-off, and outcome
//! signalling. `burst_corpus` pushes one warmed request per corpus app
//! and waits for all of them — the interleaved steady-state the CI soak
//! exercises at scale. `round_trip_disk` round-trips through a service
//! whose session memo is cleared each iteration but whose persistent
//! disk cache stays hot, measuring the deserialize-and-validate path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::conform::standard_corpus;
use dspcc::{
    apps, cores, CompileOptions, CompileService, CompileSession, DiskCache, ServiceConfig,
    ServiceOutcome,
};

fn expect_served(outcome: ServiceOutcome) {
    match outcome {
        ServiceOutcome::Served { .. } => {}
        other => panic!("expected Served, got {other:?}"),
    }
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    let core = Arc::new(cores::audio_core());
    let options = CompileOptions {
        restarts: 2,
        sched_threads: 1,
        ..CompileOptions::default()
    };

    let warm = CompileService::new(Arc::new(CompileSession::new()), ServiceConfig::default());
    let fir = apps::fir(8);
    expect_served(warm.submit(&core, &fir, options.clone()).unwrap().wait());
    group.bench_function("round_trip_warm", |b| {
        b.iter(|| {
            let ticket = warm.submit(&core, &fir, options.clone()).unwrap();
            expect_served(ticket.wait());
        })
    });

    let corpus = standard_corpus();
    for (_, src) in &corpus {
        expect_served(warm.submit(&core, src, options.clone()).unwrap().wait());
    }
    group.bench_function("burst_corpus", |b| {
        b.iter(|| {
            let tickets: Vec<_> = corpus
                .iter()
                .map(|(_, src)| warm.submit(&core, src, options.clone()).unwrap())
                .collect();
            for ticket in tickets {
                expect_served(ticket.wait());
            }
        })
    });

    // Disk tier: a fresh (cold-memo) session every iteration over a hot
    // on-disk cache — schedule and encode deserialize + checksum instead
    // of recomputing.
    let dir = std::env::temp_dir().join(format!("dspcc-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(DiskCache::new(&dir));
    expect_served(
        CompileService::new(
            Arc::new(CompileSession::with_disk_cache(Arc::clone(&cache))),
            ServiceConfig::default(),
        )
        .submit(&core, &fir, options.clone())
        .unwrap()
        .wait(),
    );
    group.bench_function("round_trip_disk", |b| {
        b.iter(|| {
            let service = CompileService::new(
                Arc::new(CompileSession::with_disk_cache(Arc::clone(&cache))),
                ServiceConfig::default(),
            );
            let ticket = service.submit(&core, &fir, options.clone()).unwrap();
            expect_served(ticket.wait());
        })
    });
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
