//! Conformance-fleet benchmarks: the cost of opening the architecture
//! axis as a routine test dimension.
//!
//! `generate_core` is one seeded architecture + ISA derivation — the
//! fixed per-seed overhead of a fleet. `cell_fir8` is one complete
//! conformance cell (compile + 8 differentially verified frames) on a
//! feasible generated core. `fleet_16x2` is a whole small fleet — 16
//! seeds × 2 apps through one shared session — the unit CI's
//! conform-smoke job runs; its throughput is what decides how many
//! architectures every future scheduler/encoder change gets checked
//! against per CI-minute.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::conform::{conform_cell, ConformFleet};
use dspcc::{apps, cores, CellOutcome, CompileOptions, CompileSession};

fn bench_conformance(c: &mut Criterion) {
    let mut group = c.benchmark_group("conformance");
    group.sample_size(10);

    group.bench_function("generate_core", |b| {
        // Rotate seeds so the interner's warm path (not a single hot
        // string set) is what's measured.
        let mut seed = 0u64;
        b.iter(|| {
            seed = (seed + 1) % 64;
            cores::generated_core(seed)
        })
    });

    // Seed 1 compiles fir8 on the default config (pinned by the fleet
    // tests); panic here means the block drifted, not a perf change.
    let core = Arc::new(cores::generated_core(1));
    let fir = apps::fir(8);
    let opts = CompileOptions {
        restarts: 2,
        sched_threads: 1,
        ..CompileOptions::default()
    };
    group.bench_function("cell_fir8", |b| {
        b.iter(|| {
            let session = CompileSession::new();
            let out = conform_cell(&session, &core, 1, "fir8", &fir, 8, &opts);
            assert!(matches!(out, CellOutcome::Pass { .. }), "{out:?}");
            out
        })
    });

    let fleet = ConformFleet::new()
        .seed_range(0..16)
        .app("fir8", apps::fir(8))
        .app("sop6", apps::sum_of_products(6))
        .frames(8)
        .threads(1);
    group.bench_function("fleet_16x2", |b| {
        b.iter(|| {
            let report = fleet.run();
            assert_eq!(report.mismatches().count(), 0);
            report
        })
    });

    group.finish();
}

criterion_group!(benches, bench_conformance);
criterion_main!(benches);
