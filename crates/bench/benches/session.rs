//! Session-reuse benchmarks: what the artifact-cached pipeline buys the
//! paper's design-iteration loop.
//!
//! `cold_compile` runs the full pipeline through a fresh session every
//! iteration (parse → lower → modify → deps+matrix → schedule → regalloc
//! → encode). `warm_reschedule` re-compiles the same application through
//! one shared warmed session with a *different budget each iteration*, so
//! the schedule, register allocation, and encoding genuinely recompute
//! while the frontend and analysis stages are served from cache — the
//! honest cost of one lap of the iteration cycle. `warm_full_hit` repeats
//! an identical variant: every stage hits, measuring pure session
//! overhead (key hashing + memo lookups).
//!
//! Both cold and warm use the same scheduler configuration, so the ratio
//! isolates exactly the cached work.

use std::cell::Cell;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::{apps, cores, CompileOptions, CompileSession};

fn bench_session_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_reuse");
    group.sample_size(10);
    let core = Arc::new(cores::audio_core());
    let src = apps::audio_application();
    // One greedy list pass (no compaction restarts): the scheduler setup
    // of a quick feasibility lap, where frontend + analysis dominate.
    let base = CompileOptions {
        compaction: false,
        ..CompileOptions::default()
    };

    group.bench_function("cold_compile", |b| {
        b.iter(|| CompileSession::new().compile(&core, &src, &base).unwrap())
    });

    let session = CompileSession::new();
    session.compile(&core, &src, &base).unwrap();
    // Budgets start well above the schedule length (they clamp to the
    // controller cap, so every iteration does identical schedule work)
    // but each is a distinct cache key: schedule/regalloc/encode rerun.
    // The session memo grows by 3 artifacts per iteration; the shim's
    // 5 ms sample target bounds this bench to ~100 iterations total, so
    // peak retention stays in the tens of MB.
    let budget = Cell::new(10_000u32);
    group.bench_function("warm_reschedule", |b| {
        b.iter(|| {
            budget.set(budget.get() + 1);
            let opts = CompileOptions {
                budget: Some(budget.get()),
                ..base.clone()
            };
            let compiled = session.compile(&core, &src, &opts).unwrap();
            assert_eq!(compiled.stats.cache_hits, 4);
            compiled
        })
    });

    let hit_session = CompileSession::new();
    hit_session.compile(&core, &src, &base).unwrap();
    group.bench_function("warm_full_hit", |b| {
        b.iter(|| hit_session.compile(&core, &src, &base).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_session_reuse);
criterion_main!(benches);
