//! Per-stage benchmarks for the interned-symbol pipeline: the win of
//! string-free hot paths is measured where it lands — RT generation and
//! modification at the front, register allocation and encoding at the
//! back — not just in the end-to-end `compile_throughput` numbers.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use dspcc::dfg::{parse, Dfg};
use dspcc::encode::{allocate_registers, encode, FieldLayout};
use dspcc::isa::artificial_resources;
use dspcc::rtgen::{apply_instruction_set, lower, LowerOptions};
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::ConflictMatrix;
use dspcc::{apps, cores, Compiler};

/// RT generation + RT modification + dependence/conflict analysis on the
/// audio application — the front half of figure 1b.
fn bench_frontend_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend_lowering");
    group.sample_size(10);
    let core = cores::audio_core();
    let src = apps::audio_application();
    let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
    let opts = LowerOptions::default();
    group.bench_function("parse_audio", |b| b.iter(|| parse(&src).unwrap()));
    group.bench_function("lower_audio", |b| {
        b.iter(|| lower(&dfg, &core.datapath, &opts).unwrap())
    });
    let classification = core.classification.clone().unwrap();
    let iset = core.instruction_set.clone().unwrap();
    let ars = artificial_resources(&iset, &classification, core.cover);
    let lowered = lower(&dfg, &core.datapath, &opts).unwrap();
    group.bench_function("modify_audio", |b| {
        b.iter(|| {
            let mut program = lowered.program.clone();
            apply_instruction_set(&mut program, &classification, &ars)
        })
    });
    let mut modified = lower(&dfg, &core.datapath, &opts).unwrap();
    apply_instruction_set(&mut modified.program, &classification, &ars);
    group.bench_function("deps_audio", |b| {
        b.iter(|| {
            DependenceGraph::build_with_edges(&modified.program, &modified.sequence_edges).unwrap()
        })
    });
    group.bench_function("conflict_matrix_audio", |b| {
        b.iter(|| ConflictMatrix::build(&modified.program))
    });
    group.finish();
}

/// Register allocation + instruction encoding of the scheduled audio
/// application — the back half of figure 1b.
fn bench_encode_regalloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_regalloc");
    group.sample_size(10);
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(1)
        .compile(&apps::audio_application())
        .unwrap();
    let program = &compiled.lowering.program;
    let schedule = &compiled.schedule;
    let pinned = vec![compiled.lowering.fp_reg.clone()];
    group.bench_function("regalloc_audio", |b| {
        b.iter(|| allocate_registers(program, schedule, &core.datapath, &pinned).unwrap())
    });
    let assignment = allocate_registers(program, schedule, &core.datapath, &pinned).unwrap();
    group.bench_function("layout_derive_audio", |b| {
        b.iter(|| FieldLayout::derive(&core.datapath, core.format))
    });
    let layout = FieldLayout::derive(&core.datapath, core.format);
    let immediates: BTreeMap<_, _> = compiled.lowering.immediates.clone();
    group.bench_function("encode_audio", |b| {
        b.iter(|| {
            encode(
                &assignment.program,
                schedule,
                &layout,
                &immediates,
                core.format,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontend_lowering, bench_encode_regalloc);
criterion_main!(benches);
