//! Benchmark harness and figure/experiment regeneration for the `dspcc`
//! reproduction of *Efficient Code Generation for In-House DSP-Cores*
//! (DATE 1995).
//!
//! Each binary in `src/bin/` regenerates one figure or in-text result of
//! the paper (see DESIGN.md's experiment index); the Criterion benches in
//! `benches/` measure the runtime of the algorithms themselves.

use dspcc::sched::report::OccupationReport;
use dspcc::Compiled;

/// The figure-9 row layout: display label and RT resource name, in the
/// paper's order.
pub const FIG9_ROWS: [(&str, &str); 9] = [
    ("PRG_CNST", "prgc"),
    ("ROM", "rom"),
    ("MULT", "mult"),
    ("ALU", "alu"),
    ("ACU", "acu"),
    ("RAM", "ram"),
    ("IPB", "ipb"),
    ("OPB_1", "opb_1"),
    ("OPB_2", "opb_2"),
];

/// Computes the figure-9 occupation report of a compiled audio program.
pub fn fig9_report(compiled: &Compiled) -> OccupationReport {
    compiled.occupation(&FIG9_ROWS)
}

/// Renders a small paper-vs-measured table row.
pub fn compare_row(name: &str, paper: &str, measured: &str) -> String {
    format!("{name:<24} paper: {paper:<16} measured: {measured}")
}

/// Bench-result parsing and regression comparison for the
/// `bench_compare` gate (see DESIGN.md's "Benchmark baseline" section).
pub mod compare {
    use std::collections::BTreeMap;

    /// One benchmark that got slower than the baseline allows.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// Benchmark name (`group/bench/param`).
        pub name: String,
        /// Baseline median, nanoseconds.
        pub baseline_ns: f64,
        /// Fresh median, nanoseconds.
        pub fresh_ns: f64,
    }

    impl Regression {
        /// Slowdown as a percentage over the baseline (e.g. `37.5`).
        pub fn slowdown_pct(&self) -> f64 {
            (self.fresh_ns / self.baseline_ns - 1.0) * 100.0
        }
    }

    /// Parses benchmark medians from either supported format:
    ///
    /// * the baseline map (`BENCH_baseline.json`): `"name": 123.4,` lines
    ///   inside one JSON object;
    /// * the criterion-shim `BENCH_JSON` append log: one
    ///   `{"name": "...", "median_ns": 123.4}` object per line.
    ///
    /// Unrecognised lines are skipped, so both whole files parse with the
    /// same routine. A name appearing twice keeps the **last** value (a
    /// re-run appended to the same log supersedes the first run).
    pub fn parse_results(text: &str) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let entry = if line.starts_with('{') && line.contains("\"median_ns\"") {
                parse_log_line(line)
            } else {
                parse_map_line(line)
            };
            if let Some((name, median)) = entry {
                out.insert(name, median);
            }
        }
        out
    }

    /// `{"name": "group/bench", "median_ns": 123.4}`
    fn parse_log_line(line: &str) -> Option<(String, f64)> {
        let name = field_str(line, "\"name\"")?;
        let median = field_num(line, "\"median_ns\"")?;
        Some((name, median))
    }

    /// `"group/bench": 123.4`
    fn parse_map_line(line: &str) -> Option<(String, f64)> {
        let rest = line.strip_prefix('"')?;
        let (name, rest) = rest.split_once('"')?;
        let value = rest.trim().strip_prefix(':')?.trim();
        Some((name.to_owned(), value.parse().ok()?))
    }

    fn field_str(line: &str, key: &str) -> Option<String> {
        let after = line.split(key).nth(1)?.trim_start().strip_prefix(':')?;
        let after = after.trim_start().strip_prefix('"')?;
        Some(after.split('"').next()?.to_owned())
    }

    fn field_num(line: &str, key: &str) -> Option<f64> {
        let after = line.split(key).nth(1)?.trim_start().strip_prefix(':')?;
        let digits: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        digits.parse().ok()
    }

    /// Outcome of a baseline comparison.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct Comparison {
        /// Benchmarks slower than the threshold allows, sorted by name.
        pub regressions: Vec<Regression>,
        /// Baseline names absent from the fresh run (bench rot: a renamed
        /// or deleted benchmark silently stops guarding its group).
        pub missing: Vec<String>,
        /// Fresh names absent from the baseline (a new benchmark is
        /// ungated until the baseline is refreshed).
        pub ungated: Vec<String>,
    }

    /// Median per-benchmark delta (percent, negative = faster) for each
    /// benchmark group, where the group is the name up to the first `/`.
    /// Reported by `bench_compare` so speedups are as visible as
    /// regressions — a perf PR's wins land in specific groups, and the
    /// gate output should say where.
    pub fn group_deltas(
        baseline: &BTreeMap<String, f64>,
        fresh: &BTreeMap<String, f64>,
    ) -> Vec<(String, f64, usize)> {
        let mut per_group: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for (name, &base) in baseline {
            if let Some(&now) = fresh.get(name) {
                if base > 0.0 {
                    let group = name.split('/').next().unwrap_or(name);
                    per_group
                        .entry(group)
                        .or_default()
                        .push((now / base - 1.0) * 100.0);
                }
            }
        }
        per_group
            .into_iter()
            .map(|(group, mut deltas)| {
                deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite deltas"));
                let n = deltas.len();
                let median = if n % 2 == 1 {
                    deltas[n / 2]
                } else {
                    (deltas[n / 2 - 1] + deltas[n / 2]) / 2.0
                };
                (group.to_owned(), median, n)
            })
            .collect()
    }

    /// Compares `fresh` medians against `baseline`: a benchmark regresses
    /// when it is more than `threshold_pct` percent slower. Names on only
    /// one side are reported, not failed — see [`Comparison`].
    pub fn find_regressions(
        baseline: &BTreeMap<String, f64>,
        fresh: &BTreeMap<String, f64>,
        threshold_pct: f64,
    ) -> Comparison {
        let mut out = Comparison::default();
        for (name, &base) in baseline {
            match fresh.get(name) {
                Some(&now) if now > base * (1.0 + threshold_pct / 100.0) => {
                    out.regressions.push(Regression {
                        name: name.clone(),
                        baseline_ns: base,
                        fresh_ns: now,
                    });
                }
                Some(_) => {}
                None => out.missing.push(name.clone()),
            }
        }
        out.ungated = fresh
            .keys()
            .filter(|name| !baseline.contains_key(*name))
            .cloned()
            .collect();
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_baseline_map_format() {
            let text = "{\n  \"a/b/8\": 542.1,\n  \"c/d\": 1534406.5\n}\n";
            let r = parse_results(text);
            assert_eq!(r.len(), 2);
            assert_eq!(r["a/b/8"], 542.1);
            assert_eq!(r["c/d"], 1534406.5);
        }

        #[test]
        fn parses_bench_json_log_format_last_wins() {
            let text = "{\"name\": \"g/x\", \"median_ns\": 100.0}\n\
                        {\"name\": \"g/y\", \"median_ns\": 7.5}\n\
                        {\"name\": \"g/x\", \"median_ns\": 90.0}\n";
            let r = parse_results(text);
            assert_eq!(r.len(), 2);
            assert_eq!(r["g/x"], 90.0);
            assert_eq!(r["g/y"], 7.5);
        }

        #[test]
        fn mixed_and_malformed_lines_are_skipped() {
            let text = "{\n\"a\": 1.0,\nnot json at all\n\
                        {\"name\": \"b\", \"median_ns\": 2.0}\n}\n";
            let r = parse_results(text);
            assert_eq!(r.len(), 2);
        }

        #[test]
        fn regression_threshold_is_exclusive() {
            let baseline = parse_results("\"g/a\": 100.0\n\"g/b\": 100.0\n\"g/gone\": 5.0");
            let fresh = parse_results("\"g/a\": 125.0\n\"g/b\": 125.1\n\"g/new\": 7.0");
            let cmp = find_regressions(&baseline, &fresh, 25.0);
            assert_eq!(cmp.regressions.len(), 1);
            assert_eq!(cmp.regressions[0].name, "g/b");
            assert!((cmp.regressions[0].slowdown_pct() - 25.1).abs() < 0.2);
            assert_eq!(cmp.missing, vec!["g/gone".to_owned()]);
            assert_eq!(cmp.ungated, vec!["g/new".to_owned()]);
        }

        #[test]
        fn group_deltas_report_speedups_and_regressions() {
            let baseline =
                parse_results("\"g/a\": 100.0\n\"g/b\": 200.0\n\"g/c\": 50.0\n\"h/x\": 10.0");
            let fresh =
                parse_results("\"g/a\": 50.0\n\"g/b\": 100.0\n\"g/c\": 100.0\n\"h/x\": 11.0");
            let deltas = group_deltas(&baseline, &fresh);
            assert_eq!(deltas.len(), 2);
            // g: deltas −50, −50, +100 → median −50.
            assert_eq!(deltas[0].0, "g");
            assert!((deltas[0].1 - -50.0).abs() < 1e-9, "{:?}", deltas);
            assert_eq!(deltas[0].2, 3);
            // h: single +10%.
            assert_eq!(deltas[1].0, "h");
            assert!((deltas[1].1 - 10.0).abs() < 1e-9);
        }

        #[test]
        fn group_deltas_skip_one_sided_benches() {
            let baseline = parse_results("\"g/a\": 100.0\n\"g/gone\": 5.0");
            let fresh = parse_results("\"g/a\": 120.0\n\"g/new\": 7.0");
            let deltas = group_deltas(&baseline, &fresh);
            assert_eq!(deltas.len(), 1);
            assert_eq!(deltas[0].2, 1);
            assert!((deltas[0].1 - 20.0).abs() < 1e-9);
        }

        #[test]
        fn improvements_never_regress() {
            let baseline = parse_results("\"g/a\": 100.0");
            let fresh = parse_results("\"g/a\": 10.0");
            let cmp = find_regressions(&baseline, &fresh, 25.0);
            assert_eq!(cmp, Comparison::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc::{apps, cores, Compiler};

    #[test]
    fn fig9_rows_cover_every_audio_opu() {
        let core = cores::audio_core();
        for (_, resource) in FIG9_ROWS {
            assert!(
                core.datapath.opu(resource).is_some(),
                "row {resource} is not an OPU of the audio core"
            );
        }
    }

    #[test]
    fn audio_application_meets_budget_when_folded() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .restarts(4)
            .compile(&apps::audio_application())
            .unwrap();
        // Flat heuristic schedule: bounded below by 63 (window bound).
        assert!(compiled.cycles() >= 63);
        // Folded with one iteration of overlap the frame meets the
        // paper's 64-cycle real-time budget.
        let folded = compiled.fold(2, 16).unwrap();
        assert!(folded.ii() <= 64, "II = {}", folded.ii());
        // The paper's headline: RAM, MULT and ALU all above 90% (in the
        // kernel).
        let report = compiled.folded_occupation(&folded, &FIG9_ROWS);
        for unit in ["RAM", "MULT", "ALU"] {
            assert!(
                report.row(unit).unwrap().percent() >= 90,
                "{unit} occupation {}% below the paper's >90%",
                report.row(unit).unwrap().percent()
            );
        }
        let _ = fig9_report(&compiled);
    }
}
