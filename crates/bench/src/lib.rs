//! Benchmark harness and figure/experiment regeneration for the `dspcc`
//! reproduction of *Efficient Code Generation for In-House DSP-Cores*
//! (DATE 1995).
//!
//! Each binary in `src/bin/` regenerates one figure or in-text result of
//! the paper (see DESIGN.md's experiment index); the Criterion benches in
//! `benches/` measure the runtime of the algorithms themselves.

use dspcc::sched::report::OccupationReport;
use dspcc::Compiled;

/// The figure-9 row layout: display label and RT resource name, in the
/// paper's order.
pub const FIG9_ROWS: [(&str, &str); 9] = [
    ("PRG_CNST", "prgc"),
    ("ROM", "rom"),
    ("MULT", "mult"),
    ("ALU", "alu"),
    ("ACU", "acu"),
    ("RAM", "ram"),
    ("IPB", "ipb"),
    ("OPB_1", "opb_1"),
    ("OPB_2", "opb_2"),
];

/// Computes the figure-9 occupation report of a compiled audio program.
pub fn fig9_report(compiled: &Compiled) -> OccupationReport {
    compiled.occupation(&FIG9_ROWS)
}

/// Renders a small paper-vs-measured table row.
pub fn compare_row(name: &str, paper: &str, measured: &str) -> String {
    format!("{name:<24} paper: {paper:<16} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc::{apps, cores, Compiler};

    #[test]
    fn fig9_rows_cover_every_audio_opu() {
        let core = cores::audio_core();
        for (_, resource) in FIG9_ROWS {
            assert!(
                core.datapath.opu(resource).is_some(),
                "row {resource} is not an OPU of the audio core"
            );
        }
    }

    #[test]
    fn audio_application_meets_budget_when_folded() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .restarts(4)
            .compile(&apps::audio_application())
            .unwrap();
        // Flat heuristic schedule: bounded below by 63 (window bound).
        assert!(compiled.cycles() >= 63);
        // Folded with one iteration of overlap the frame meets the
        // paper's 64-cycle real-time budget.
        let folded = compiled.fold(2, 16).unwrap();
        assert!(folded.ii() <= 64, "II = {}", folded.ii());
        // The paper's headline: RAM, MULT and ALU all above 90% (in the
        // kernel).
        let report = compiled.folded_occupation(&folded, &FIG9_ROWS);
        for unit in ["RAM", "MULT", "ALU"] {
            assert!(
                report.row(unit).unwrap().percent() >= 90,
                "{unit} occupation {}% below the paper's >90%",
                report.row(unit).unwrap().percent()
            );
        }
        let _ = fig9_report(&compiled);
    }
}
