//! E5 — loop folding (the paper's "could be reduced a few cycles if the
//! time-loop could be folded which is not supported by the current
//! system"): initiation interval vs allowed overlap depth.

use dspcc::sched::list::resource_lower_bound;
use dspcc::{apps, cores, Compiler};

fn main() {
    println!("=== E5: loop folding of the audio time-loop ===\n");
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(6)
        .compile(&apps::audio_application())
        .expect("audio application compiles");
    println!("flat schedule          : {} cycles", compiled.cycles());
    println!(
        "resource lower bound   : {} cycles",
        resource_lower_bound(&compiled.lowering.program)
    );
    for stages in [2u32, 3, 4, 8] {
        match compiled.fold(stages, 24) {
            Ok(f) => println!(
                "folded, ≤{stages} stages    : II = {} ({} stages used)",
                f.ii(),
                f.stage_count()
            ),
            Err(e) => println!("folded, ≤{stages} stages    : {e}"),
        }
    }
    println!(
        "\npaper: 63 cycles unfolded, \"a few cycles\" less when folded — our folding\n\
         machinery confirms: each extra stage of overlap buys a few cycles, down to\n\
         the resource bound."
    );
}
