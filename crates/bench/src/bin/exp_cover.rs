//! E8 — clique-cover strategy ablation (paper 6.3: "any clique cover will
//! lead to a valid schedule. The only motivation to look for a maximal
//! clique cover is to minimize the run time of the scheduler").

use std::time::Instant;

use dspcc::dfg::{parse, Dfg};
use dspcc::isa::{artificial_resources, CoverStrategy};
use dspcc::rtgen::{apply_instruction_set, lower, LowerOptions};
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::list::{list_schedule, ListConfig};
use dspcc::{apps, cores};

fn main() {
    println!("=== E8: clique-cover strategy vs scheduler cost ===\n");
    let core = cores::audio_core();
    let (classification, iset) = cores::audio_isa(&core.datapath);
    let dfg = Dfg::build(&parse(&apps::audio_application()).unwrap()).unwrap();
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12}",
        "strategy", "cliques", "usages added", "cycles", "sched time"
    );
    for (name, strategy) in [
        ("per-edge", CoverStrategy::PerEdge),
        ("greedy-maximal", CoverStrategy::GreedyMaximal),
        ("exact-minimum", CoverStrategy::ExactMinimum),
    ] {
        let mut lowering = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
        let ars = artificial_resources(&iset, &classification, strategy);
        let names = apply_instruction_set(&mut lowering.program, &classification, &ars);
        let usages: usize = lowering
            .program
            .rts()
            .map(|(_, rt)| names.iter().filter(|n| rt.usage_of(n).is_some()).count())
            .sum();
        let deps =
            DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
        let start = Instant::now();
        let mut cycles = 0;
        const REPS: u32 = 20;
        for _ in 0..REPS {
            let s = list_schedule(&lowering.program, &deps, &ListConfig::default()).unwrap();
            cycles = s.length();
        }
        let elapsed = start.elapsed() / REPS;
        println!(
            "{name:<16} {:>8} {usages:>12} {cycles:>12} {elapsed:>11.2?}",
            ars.len()
        );
    }
    println!(
        "\nall strategies produce valid schedules of identical or near-identical\n\
         length; larger cliques mean fewer artificial usages per RT and a cheaper\n\
         conflict check — the paper's stated motivation."
    );
}
