//! E7 — feasibility vs cycle budget: the fixed-budget methodology of the
//! paper ("for our application domains the cycle budget is specified by
//! the user").

use dspcc::{apps, cores, Compiler};

fn main() {
    println!("=== E7: cycle-budget sweep (audio application, flat + folded) ===\n");
    let core = cores::audio_core();
    let source = apps::audio_application();
    let compiled = Compiler::new(&core)
        .restarts(6)
        .compile(&source)
        .expect("compiles without budget");
    let flat = compiled.cycles();
    println!(
        "{:<8} {:>12} {:>14}",
        "budget", "flat fits?", "folded fits?"
    );
    for budget in [56u32, 58, 60, 62, 63, 64, 66, 68, 70, 72, 74, 76, 80] {
        let flat_ok = flat <= budget;
        let folded_ok = compiled
            .fold(2, 16)
            .map(|f| f.ii() <= budget)
            .unwrap_or(false);
        println!(
            "{budget:<8} {:>12} {:>14}",
            if flat_ok { "yes" } else { "no" },
            if folded_ok { "yes" } else { "no" }
        );
    }
    println!(
        "\nflat schedule: {flat} cycles; the paper's 64-cycle budget is met by the\n\
         2-stage folded schedule (II ≤ 64). Budgets below the 59-cycle resource\n\
         bound are infeasible for any scheduler."
    );
}
