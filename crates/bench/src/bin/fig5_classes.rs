//! E1 — regenerates figure 5 / the section-7 class table: RT class
//! identification for the audio core, then the merge down to 9 classes.

use dspcc::cores::{audio_datapath, audio_isa};
use dspcc::isa::Classification;

fn main() {
    let dp = audio_datapath();
    println!("=== E1 / figure 5: RT class identification (audio core) ===\n");
    let raw = Classification::identify(&dp);
    println!(
        "raw classes: {} (paper: 13 — ours adds `sub` on the ALU)",
        raw.len()
    );
    println!("{}", raw.to_table());
    let (merged, _) = audio_isa(&dp);
    println!(
        "after merging (RAM read/write → X, ALU ops → Y): {} classes (paper: 9)",
        merged.len()
    );
    println!("{}", merged.to_table());
}
