//! E2 — regenerates the section-6 worked example and figure 6: the
//! instruction set `I`, its conflict graph, and clique covers.

use dspcc::graph::cover::{
    greedy_edge_clique_cover, minimum_edge_clique_cover, per_edge_clique_cover, validate_cover,
};
use dspcc::isa::iset::InstructionSet;

const NAMES: [&str; 6] = ["S", "T", "U", "V", "X", "Y"];

fn show(set: &[usize]) -> String {
    let names: Vec<&str> = set.iter().map(|&c| NAMES[c]).collect();
    format!("{{{}}}", names.join(","))
}

fn main() {
    println!("=== E2 / section 6 + figure 6: instruction set I ===\n");
    // Desired types {S,T}, {S,U,V}, {X,Y} over classes S..Y.
    let iset = InstructionSet::closure(6, &[vec![0, 1], vec![0, 2, 3], vec![4, 5]]);
    iset.validate().expect("closure satisfies rules 1-4");
    let types = iset.types();
    println!(
        "closure of {{S,T}}, {{S,U,V}}, {{X,Y}} has {} instruction types (paper: 13):",
        types.len()
    );
    for t in &types {
        let ids: Vec<usize> = t.iter().map(|c| c.0).collect();
        if ids.is_empty() {
            print!("NOP ");
        } else {
            print!("{} ", show(&ids));
        }
    }
    println!("\n");

    let g = iset.conflict_graph();
    println!(
        "conflict graph edges ({} — paper figure 6 has 10):",
        g.edge_count()
    );
    for (a, b) in g.edges() {
        print!("{}-{} ", NAMES[a], NAMES[b]);
    }
    println!("\n");

    let paper_cover: Vec<Vec<usize>> = vec![
        vec![0, 4],
        vec![0, 5],
        vec![1, 2, 5],
        vec![1, 3, 4],
        vec![2, 4],
        vec![3, 5],
    ];
    validate_cover(&g, &paper_cover).expect("the paper's cover is valid");
    println!(
        "paper's clique cover (6 cliques): {{S,X}} {{S,Y}} {{T,U,Y}} {{T,V,X}} {{U,X}} {{V,Y}}"
    );

    for (name, cover) in [
        ("per-edge", per_edge_clique_cover(&g)),
        ("greedy-maximal", greedy_edge_clique_cover(&g)),
        ("exact-minimum", minimum_edge_clique_cover(&g)),
    ] {
        validate_cover(&g, &cover).expect("cover valid");
        let rendered: Vec<String> = cover.iter().map(|c| show(c)).collect();
        println!(
            "{name:<15}: {} cliques  {}",
            cover.len(),
            rendered.join(" ")
        );
    }
    println!("\nany clique cover yields a valid schedule (paper 6.3); the cover size only");
    println!("controls how many artificial resources each RT carries (experiment E8).");
}
