//! E6 — execution-interval analysis (paper section 8 / Timmer & Jess
//! EDAC'95): search-node counts of the exact scheduler with and without
//! bipartite-matching pruning.

use dspcc::dfg::{parse, Dfg};
use dspcc::rtgen::{lower, LowerOptions};
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::exact::{exact_schedule, ExactConfig};
use dspcc::{apps, cores};

fn main() {
    println!("=== E6: bipartite-matching interval pruning (exact scheduler) ===\n");
    let core = cores::tiny_core();
    println!(
        "{:<14} {:>7} {:>16} {:>16} {:>9}",
        "workload", "budget", "nodes (pruned)", "nodes (blind)", "speedup"
    );
    for taps in [3usize, 4, 5, 6] {
        let src = apps::sum_of_products(taps);
        let dfg = Dfg::build(&parse(&src).unwrap()).unwrap();
        let lowering = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
        let deps =
            DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges).unwrap();
        // One cycle below feasible: the provers must exhaust the space.
        let feasible = {
            let mut cfg = ExactConfig::new(200);
            cfg.prune = true;
            exact_schedule(&lowering.program, &deps, &cfg)
                .schedule
                .expect("loose budget feasible")
                .length()
        };
        let budget = feasible - 1;
        let mut pruned_cfg = ExactConfig::new(budget);
        pruned_cfg.prune = true;
        pruned_cfg.max_nodes = 50_000_000;
        let pruned = exact_schedule(&lowering.program, &deps, &pruned_cfg);
        let mut blind_cfg = ExactConfig::new(budget);
        blind_cfg.prune = false;
        blind_cfg.max_nodes = 50_000_000;
        let blind = exact_schedule(&lowering.program, &deps, &blind_cfg);
        let speedup = blind.nodes_explored as f64 / pruned.nodes_explored.max(1) as f64;
        println!(
            "sop({taps:<2})        {budget:>7} {:>16} {:>16} {:>8.1}x{}",
            pruned.nodes_explored,
            blind.nodes_explored,
            speedup,
            if pruned.complete && blind.complete {
                ""
            } else {
                "  (limit hit)"
            },
        );
    }
    println!(
        "\npaper section 8: \"a promising technique is being developed using execution\n\
         interval analysis to prune the search space of the scheduler\" [Timmer & Jess].\n\
         The matching cut proves infeasibility without enumerating permutations."
    );
}
