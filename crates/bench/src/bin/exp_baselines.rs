//! E10 — codegen-quality baselines (paper section 2: "existing compilers
//! generate code of which the efficiency is not sufficient").

use dspcc::sched::baseline::{
    count_illegal_instructions, sequential_schedule, strip_artificial_resources,
};
use dspcc::sched::compact::schedule_and_compact;
use dspcc::sched::deps::DependenceGraph;
use dspcc::sched::list::{list_schedule, ListConfig, Priority};
use dspcc::{apps, cores, Compiler};

fn main() {
    println!("=== E10: scheduler baselines on the audio application ===\n");
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(6)
        .compile(&apps::audio_application())
        .expect("audio application compiles");
    let program = &compiled.lowering.program;
    let deps = &compiled.deps;

    let sequential = sequential_schedule(program, deps);
    println!(
        "{:<36} {:>8} {:>14}",
        "scheduler", "cycles", "illegal instrs"
    );
    println!(
        "{:<36} {:>8} {:>14}",
        "sequential (1 RT/cycle)",
        sequential.length(),
        count_illegal_instructions(program, &sequential)
    );
    let greedy = list_schedule(
        program,
        deps,
        &ListConfig {
            budget: None,
            priority: Priority::SourceOrder,
            jitter_seed: 0,
        },
    )
    .unwrap();
    println!(
        "{:<36} {:>8} {:>14}",
        "greedy list (source order)",
        greedy.length(),
        count_illegal_instructions(program, &greedy)
    );
    let full = schedule_and_compact(program, deps, None, 6).unwrap();
    println!(
        "{:<36} {:>8} {:>14}",
        "list + restarts + justification",
        full.length(),
        count_illegal_instructions(program, &full)
    );
    let folded = compiled.fold(2, 16).unwrap();
    println!(
        "{:<36} {:>8} {:>14}",
        "modulo (2-stage fold)",
        folded.ii(),
        0
    );

    // ISA-unaware scheduling packs instructions the encoding cannot express.
    let names: Vec<&str> = compiled
        .artificial_names
        .iter()
        .map(|s| s.as_str())
        .collect();
    let stripped = strip_artificial_resources(program, &names);
    let stripped_deps =
        DependenceGraph::build_with_edges(&stripped, &compiled.lowering.sequence_edges).unwrap();
    let unaware = schedule_and_compact(&stripped, &stripped_deps, None, 6).unwrap();
    println!(
        "{:<36} {:>8} {:>14}",
        "ISA-unaware (ABC stripped)",
        unaware.length(),
        count_illegal_instructions(program, &unaware)
    );
    println!(
        "\nthe sequential baseline is what a non-packing compiler emits ({}x slower\n\
         than the folded kernel); the ISA-unaware schedule packs IO operations the\n\
         instruction word cannot encode — the conflicts the paper's artificial\n\
         resources exist to prevent.",
        sequential.length() / folded.ii()
    );
}
