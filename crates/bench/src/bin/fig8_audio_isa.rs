//! E3 — the audio core's instruction set (section 7): the three desired
//! full-parallel instruction types close into a set whose conflict graph
//! is the IO triangle, covered by the single artificial resource `ABC`.

use dspcc::cores::{audio_datapath, audio_isa};
use dspcc::isa::{artificial_resources, CoverStrategy};
use dspcc::{apps, cores, Compiler};

fn main() {
    println!("=== E3 / section 7: the audio instruction set ===\n");
    let dp = audio_datapath();
    let (classification, iset) = audio_isa(&dp);
    iset.validate()
        .expect("audio instruction set satisfies rules 1-4");
    println!(
        "instruction types (incl. sub-instructions): {}",
        iset.types().len()
    );
    let g = iset.conflict_graph();
    println!(
        "conflict graph edges: {} (paper: the IO classes A, B, C pairwise)",
        g.edge_count()
    );
    let ars = artificial_resources(&iset, &classification, CoverStrategy::GreedyMaximal);
    println!(
        "artificial resources: {} (paper: \"A single artificial resource 'ABC' is required\")",
        ars.len()
    );
    for ar in &ars {
        println!("  {}", ar.name());
    }

    // Install on the real application and count affected RTs.
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::audio_application())
        .expect("audio application compiles");
    let carrying = compiled
        .lowering
        .program
        .rts()
        .filter(|(_, rt)| rt.usage_of("ABC").is_some())
        .count();
    println!(
        "\nRTs carrying ABC in the compiled application: {carrying} \
         (2 IPB reads + 8 OPB writes = 10)"
    );
}
