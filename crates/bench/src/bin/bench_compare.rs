//! Regression gate: diffs a fresh bench run against `BENCH_baseline.json`.
//!
//! ```text
//! BENCH_JSON=/tmp/fresh.json cargo bench -p dspcc-bench
//! cargo run -p dspcc-bench --bin bench_compare -- /tmp/fresh.json
//! ```
//!
//! Accepts both the baseline map format and the criterion shim's
//! `BENCH_JSON` line format on either side. Exits non-zero when any
//! benchmark present in both files is more than the threshold slower
//! (default 25%). Missing baseline entries are reported but don't fail —
//! refresh the baseline (see DESIGN.md) when benchmarks are added or
//! renamed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use dspcc_bench::compare::{find_regressions, group_deltas, parse_results};

fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench results `{path}`: {e}"));
    let results = parse_results(&text);
    assert!(
        !results.is_empty(),
        "no benchmark results found in `{path}`"
    );
    results
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut fresh_path = None;
    let mut baseline_path = "BENCH_baseline.json".to_owned();
    let mut threshold = 25.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a percentage");
            }
            "--baseline" => {
                baseline_path = args.next().expect("--baseline needs a path");
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare <fresh.json> [--baseline BENCH_baseline.json] \
                     [--threshold 25]"
                );
                return ExitCode::SUCCESS;
            }
            path if fresh_path.is_none() => fresh_path = Some(path.to_owned()),
            other => panic!("unexpected argument `{other}`"),
        }
    }
    let fresh_path = fresh_path.expect("usage: bench_compare <fresh.json> (see --help)");
    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let cmp = find_regressions(&baseline, &fresh, threshold);
    // Per-group median delta: speedups deserve the same visibility as
    // regressions — this is where a perf PR's wins (or losses) land.
    for (group, median, n) in group_deltas(&baseline, &fresh) {
        println!(
            "group {group:<24} median {median:+7.1}% vs baseline ({n} benchmark{})",
            if n == 1 { "" } else { "s" }
        );
    }
    for name in &cmp.missing {
        println!("missing: `{name}` is in the baseline but not in the fresh run");
    }
    for name in &cmp.ungated {
        println!("ungated: `{name}` is not in the baseline — refresh it to gate this benchmark");
    }
    let compared = baseline.len() - cmp.missing.len();
    if cmp.regressions.is_empty() {
        println!("ok: {compared} benchmarks within {threshold}% of baseline");
        return ExitCode::SUCCESS;
    }
    for r in &cmp.regressions {
        println!(
            "REGRESSION {:<48} {:>12.1} ns -> {:>12.1} ns  (+{:.1}%)",
            r.name,
            r.baseline_ns,
            r.fresh_ns,
            r.slowdown_pct()
        );
    }
    println!(
        "{} of {compared} benchmarks regressed more than {threshold}%",
        cmp.regressions.len()
    );
    ExitCode::FAILURE
}
