//! E9 — resource merging (paper sections 4–5): "these resources can be
//! shared at the cost of reduction of parallelism".

use dspcc::arch::merge::MergePlan;
use dspcc::dfg::{parse, Dfg};
use dspcc::rtgen::{apply_merge_plan, lower, LowerOptions};
use dspcc::sched::compact::schedule_and_compact;
use dspcc::sched::deps::DependenceGraph;
use dspcc::{apps, cores};

fn schedule_cycles(l: &dspcc::rtgen::Lowering) -> u32 {
    let deps = DependenceGraph::build_with_edges(&l.program, &l.sequence_edges).unwrap();
    let s = schedule_and_compact(&l.program, &deps, None, 4).unwrap();
    s.verify(&l.program, &deps).unwrap();
    s.length()
}

fn main() {
    println!("=== E9: merging register files and buses ===\n");
    let core = cores::unmerged_intermediate();
    let dfg = Dfg::build(&parse(&apps::add_tree(12)).unwrap()).unwrap();

    // Unmerged intermediate architecture: two ALUs, dedicated buses.
    let unmerged = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    let base = schedule_cycles(&unmerged);
    println!("{:<28} {:>8}", "architecture", "cycles");
    println!("{:<28} {base:>8}", "intermediate (unmerged)");

    // Merge the two result buses.
    let mut bus_merged = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    let mut plan = MergePlan::new();
    plan.merge_buses(&["bus_alu_1", "bus_alu_2"], "bus_alu");
    apply_merge_plan(&mut bus_merged, &core.datapath, &plan).unwrap();
    let bus_cycles = schedule_cycles(&bus_merged);
    println!("{:<28} {bus_cycles:>8}", "buses merged");

    // Merge buses and the X-side register files.
    let mut rf_merged = lower(&dfg, &core.datapath, &LowerOptions::default()).unwrap();
    let mut plan = MergePlan::new();
    plan.merge_buses(&["bus_alu_1", "bus_alu_2"], "bus_alu");
    plan.merge_rfs(&["rf_a1_x", "rf_a2_x"], "rf_x");
    apply_merge_plan(&mut rf_merged, &core.datapath, &plan).unwrap();
    let rf_cycles = schedule_cycles(&rf_merged);
    println!("{:<28} {rf_cycles:>8}", "buses + register files merged");

    assert!(bus_cycles >= base, "sharing cannot speed a schedule up");
    println!(
        "\nmerging reduces silicon (fewer buses/files) and monotonically lengthens\n\
         the schedule — the flexibility/efficiency dial of the paper's section 5."
    );
}
