//! E4 — regenerates figure 9: the occupation distribution of the audio
//! application's schedule, plus the headline cycle count.
//!
//! The paper reports 63 cycles inside the 64-cycle real-time budget
//! (2.8 MHz / 44 kHz) with RAM/MULT/ALU above 90%. Its figure-9 chart
//! spans cycles −2…65 — activity spills across the time-loop boundary, so
//! the schedule wraps the pipeline fill/drain into adjacent iterations.
//! We therefore report three regimes:
//!
//! * **flat** — no boundary overlap (strictly linear): our heuristic
//!   scheduler's result, with the window-based lower bound for context;
//! * **folded, 2 stages** — one iteration of overlap (what the paper's
//!   chart shape shows): the initiation interval is the cycles-per-frame;
//! * **folded, unbounded** — the resource-bound limit.

use dspcc::sched::list::resource_lower_bound;
use dspcc::{apps, cores, Compiler};
use dspcc_bench::{compare_row, fig9_report, FIG9_ROWS};

fn main() {
    let core = cores::audio_core();
    let source = apps::audio_application();
    let compiled = Compiler::new(&core)
        .restarts(10)
        .compile(&source)
        .expect("audio application compiles");

    println!("=== E4 / figure 9: audio application on the figure-8 core ===\n");
    println!("real-time budget   : 64 cycles (2.8 MHz / 44 kHz, paper section 7)");
    println!(
        "RTs                : {}",
        compiled.lowering.program.rt_count()
    );
    println!(
        "resource bound     : {} cycles (busiest unit: ACU, 59 ops)",
        resource_lower_bound(&compiled.lowering.program)
    );
    println!(
        "flat schedule      : {} cycles (paper: 63)",
        compiled.cycles()
    );

    let folded2 = compiled.fold(2, 24).expect("2-stage folding succeeds");
    println!(
        "folded, 2 stages   : {} cycles/frame (paper's chart spans -2..65: ~2 stages)",
        folded2.ii()
    );
    if let Ok(folded3) = compiled.fold(3, 24) {
        println!("folded, 3 stages   : {} cycles/frame", folded3.ii());
    }
    if let Ok(folded) = compiled.fold(64, 24) {
        println!(
            "folded, unbounded  : {} cycles/frame ({} stages)",
            folded.ii(),
            folded.stage_count()
        );
    }

    println!(
        "\n--- figure 9 chart: folded kernel (II = {}) ---\n",
        folded2.ii()
    );
    let kernel_report = compiled.folded_occupation(&folded2, &FIG9_ROWS);
    println!("{}", kernel_report.chart());

    println!(
        "--- flat schedule chart ({} cycles) ---\n",
        compiled.cycles()
    );
    let flat_report = fig9_report(&compiled);
    println!("{}", flat_report.chart());

    println!("--- paper vs measured occupation (folded kernel | flat) ---");
    let paper = [
        ("PRG_CNST", 92),
        ("ROM", 92),
        ("MULT", 92),
        ("ALU", 92),
        ("ACU", 93),
        ("RAM", 92),
        ("IPB", 3),
        ("OPB_1", 6),
        ("OPB_2", 6),
    ];
    for (name, expected) in paper {
        let folded_pct = kernel_report.row(name).map(|r| r.percent()).unwrap_or(0);
        let flat_pct = flat_report.row(name).map(|r| r.percent()).unwrap_or(0);
        println!(
            "{}",
            compare_row(
                name,
                &format!("{expected}%"),
                &format!("{folded_pct}% | {flat_pct}%")
            )
        );
    }
    println!(
        "\n{}",
        compare_row(
            "cycles/frame",
            "63",
            &format!("{} folded | {} flat", folded2.ii(), compiled.cycles())
        )
    );
    println!(
        "{}",
        compare_row(
            "meets 64-cycle budget",
            "yes",
            if folded2.ii() <= 64 {
                "yes (folded)"
            } else {
                "no"
            }
        )
    );
    println!(
        "{}",
        compare_row(
            "parallelism",
            "~5.7 RTs/instr",
            &format!(
                "{:.2} RTs/instr (folded kernel)",
                compiled.lowering.program.rt_count() as f64 / folded2.ii() as f64
            )
        )
    );
}
