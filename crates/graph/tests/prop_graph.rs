//! Property-based tests for the graph substrate.

use dspcc_graph::cliques::{maximal_cliques, maximum_clique};
use dspcc_graph::cover::{
    greedy_edge_clique_cover, minimum_edge_clique_cover, per_edge_clique_cover, validate_cover,
};
use dspcc_graph::dag::Dag;
use dspcc_graph::matching::{maximum_matching_kuhn, BipartiteGraph};
use dspcc_graph::naive::{
    naive_greedy_edge_clique_cover, naive_maximal_cliques, naive_maximum_clique,
};
use dspcc_graph::{Bitset, UndirectedGraph};
use proptest::prelude::*;

/// Strategy: a random undirected graph on up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * n)).prop_map(move |pairs| {
            let mut g = UndirectedGraph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

/// Strategy: a random DAG where edges always go from lower to higher index.
fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1i64..5), 0..(n * 2)).prop_map(move |triples| {
            let mut d = Dag::new(n);
            for (a, b, w) in triples {
                if a < b {
                    d.add_edge(a, b, w);
                }
            }
            d
        })
    })
}

fn arb_bipartite(max_n: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1..=max_n, 1..=max_n).prop_flat_map(|(l, r)| {
        proptest::collection::vec((0..l, 0..r), 0..(l * r)).prop_map(move |edges| {
            let mut g = BipartiteGraph::new(l, r);
            for (a, b) in edges {
                g.add_edge(a, b);
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn all_covers_are_valid(g in arb_graph(10)) {
        validate_cover(&g, &per_edge_clique_cover(&g)).unwrap();
        validate_cover(&g, &greedy_edge_clique_cover(&g)).unwrap();
    }

    #[test]
    fn minimum_cover_is_valid_and_no_worse_than_greedy(g in arb_graph(7)) {
        let greedy = greedy_edge_clique_cover(&g);
        let minimum = minimum_edge_clique_cover(&g);
        validate_cover(&g, &minimum).unwrap();
        prop_assert!(minimum.len() <= greedy.len());
    }

    #[test]
    fn maximal_cliques_are_cliques_and_maximal(g in arb_graph(9)) {
        for c in maximal_cliques(&g) {
            prop_assert!(g.is_clique(&c));
            for v in 0..g.node_count() {
                if !c.contains(&v) {
                    prop_assert!(!c.iter().all(|&u| g.has_edge(u, v)));
                }
            }
        }
    }

    #[test]
    fn maximum_clique_is_largest(g in arb_graph(8)) {
        let max = maximum_clique(&g);
        for c in maximal_cliques(&g) {
            prop_assert!(c.len() <= max.len().max(1));
        }
    }

    #[test]
    fn complement_twice_is_identity(g in arb_graph(10)) {
        prop_assert_eq!(g.complement().complement(), g);
    }

    #[test]
    fn compatibility_cliques_are_conflict_independent_sets(g in arb_graph(8)) {
        // A clique of the complement (compatibility) graph contains no
        // conflict edge — the core soundness fact behind instruction types.
        let compat = g.complement();
        for c in maximal_cliques(&compat) {
            for (i, &a) in c.iter().enumerate() {
                for &b in &c[i + 1..] {
                    prop_assert!(!g.has_edge(a, b));
                }
            }
        }
    }

    #[test]
    fn topo_order_is_consistent(d in arb_dag(12)) {
        let order = d.topological_order().unwrap();
        prop_assert_eq!(order.len(), d.node_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; d.node_count()];
            for (i, &v) in order.iter().enumerate() { p[v] = i; }
            p
        };
        for v in 0..d.node_count() {
            for &(s, _) in d.successors(v) {
                prop_assert!(pos[v] < pos[s]);
            }
        }
    }

    #[test]
    fn asap_never_exceeds_alap_at_critical_deadline(d in arb_dag(12)) {
        let asap = d.asap();
        let alap = d.alap(d.critical_path_length());
        for v in 0..d.node_count() {
            prop_assert!(asap[v] <= alap[v]);
        }
    }

    #[test]
    fn asap_respects_precedence(d in arb_dag(12)) {
        let asap = d.asap();
        for v in 0..d.node_count() {
            for &(s, w) in d.successors(v) {
                prop_assert!(asap[s] >= asap[v] + w);
            }
        }
    }

    /// The bitset Bron–Kerbosch finds exactly the same maximal cliques as
    /// the retained naive reference.
    #[test]
    fn bitset_bk_matches_naive_reference(g in arb_graph(12)) {
        let mut fast = maximal_cliques(&g);
        let mut slow = naive_maximal_cliques(&g);
        fast.sort();
        slow.sort();
        prop_assert_eq!(fast, slow);
    }

    /// The bitset greedy cover is valid, all-maximal, and the naive
    /// reference cover stays valid too (differential sanity).
    #[test]
    fn bitset_greedy_cover_matches_naive_reference(g in arb_graph(12)) {
        let fast = greedy_edge_clique_cover(&g);
        validate_cover(&g, &fast).unwrap();
        for c in &fast {
            // Every clique the greedy cover emits is maximal in g.
            for v in 0..g.node_count() {
                if !c.contains(&v) {
                    prop_assert!(!c.iter().all(|&u| g.has_edge(u, v)));
                }
            }
        }
        let slow = naive_greedy_edge_clique_cover(&g);
        validate_cover(&g, &slow).unwrap();
    }

    /// Branch-and-bound maximum clique agrees in cardinality with the
    /// enumerate-everything reference and returns a real maximal clique.
    #[test]
    fn maximum_clique_matches_naive_reference(g in arb_graph(11)) {
        let fast = maximum_clique(&g);
        prop_assert!(g.is_clique(&fast));
        prop_assert_eq!(fast.len(), naive_maximum_clique(&g).len());
        for v in 0..g.node_count() {
            if !fast.is_empty() && !fast.contains(&v) {
                prop_assert!(!fast.iter().all(|&u| g.has_edge(u, v)));
            }
        }
    }

    /// Packed adjacency rows stay consistent with has_edge/degree under
    /// arbitrary interleavings of add_edge and remove_edge.
    #[test]
    fn bitset_rows_consistent_under_add_remove(
        (n, ops) in (2usize..70).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n, any::<bool>()), 0..(3 * n)))
        }),
    ) {
        let mut g = UndirectedGraph::new(n);
        for (a, b, add) in ops {
            if add { g.add_edge(a, b); } else { g.remove_edge(a, b); }
        }
        let mut edges = 0usize;
        for a in 0..n {
            let mask = g.neighbors_mask(a);
            let row_degree: usize =
                mask.iter().map(|w| w.count_ones() as usize).sum();
            prop_assert_eq!(row_degree, g.degree(a));
            for b in 0..n {
                let in_mask = mask[b / 64] & (1 << (b % 64)) != 0;
                prop_assert_eq!(in_mask, g.has_edge(a, b), "row {} bit {}", a, b);
                prop_assert_eq!(in_mask, g.neighbors(a).contains(&b));
                if in_mask && a < b {
                    edges += 1;
                }
            }
        }
        prop_assert_eq!(edges, g.edge_count());
    }

    /// Bitset behaves like a BTreeSet model under insert/remove.
    #[test]
    fn bitset_matches_set_model(
        (cap, ops) in (1usize..200).prop_flat_map(|cap| {
            (Just(cap), proptest::collection::vec((0..cap, any::<bool>()), 0..64))
        }),
    ) {
        let mut bs = Bitset::new(cap);
        let mut model = std::collections::BTreeSet::new();
        for (v, add) in ops {
            if add {
                prop_assert_eq!(bs.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(bs.count(), model.len());
        prop_assert_eq!(bs.to_vec(), model.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(bs.first(), model.first().copied());
    }

    #[test]
    fn hopcroft_karp_agrees_with_kuhn(g in arb_bipartite(8)) {
        prop_assert_eq!(g.maximum_matching().len(), maximum_matching_kuhn(&g));
    }

    #[test]
    fn matching_is_injective_both_sides(g in arb_bipartite(9)) {
        let m = g.maximum_matching();
        let mut ls: Vec<_> = m.iter().map(|&(l, _)| l).collect();
        let mut rs: Vec<_> = m.iter().map(|&(_, r)| r).collect();
        ls.sort_unstable();
        rs.sort_unstable();
        let before = (ls.len(), rs.len());
        ls.dedup();
        rs.dedup();
        prop_assert_eq!(before, (ls.len(), rs.len()));
    }
}
