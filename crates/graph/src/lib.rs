//! Graph algorithms substrate for the `dspcc` DSP-core code generator.
//!
//! This crate provides the graph machinery that the rest of the compiler is
//! built on:
//!
//! * [`Bitset`] — word-packed sets; the shared representation behind all
//!   hot combinatorial kernels (64 membership tests per AND + popcount).
//! * [`UndirectedGraph`] — a small dense undirected graph used for the
//!   *conflict graphs* of instruction-set modelling (paper section 6.3),
//!   backed by packed adjacency rows.
//! * [`cliques`] — Bron–Kerbosch enumeration of maximal cliques over
//!   bitsets with a preallocated scratch pool (no per-recursion
//!   allocation), plus branch-and-bound maximum clique.
//! * [`cover`] — *edge clique covers*: sets of cliques such that every edge
//!   of the graph is covered. The paper installs one artificial scheduler
//!   resource per clique, so cover quality directly controls scheduler
//!   run-time (but never correctness).
//! * [`matching`] — Hopcroft–Karp maximum bipartite matching, the engine of
//!   the execution-interval feasibility analysis (paper section 8, ref.
//!   \[11\]: Timmer & Jess, "Exact Scheduling Strategies based on Bipartite
//!   Graph Matching", EDAC'95).
//! * [`dag`] — directed acyclic graph utilities (topological order, longest
//!   paths, ASAP/ALAP times) used by the dependence analysis of the
//!   scheduler.
//! * [`naive`] — the retained pre-bitset reference implementations, used
//!   by property tests and benchmarks as the comparison baseline.
//!
//! # Example
//!
//! Build the conflict graph of the paper's instruction set `I`
//! (section 6.2) and cover its edges with cliques:
//!
//! ```
//! use dspcc_graph::{UndirectedGraph, cover::greedy_edge_clique_cover};
//!
//! // Nodes 0..6 stand for the RT classes S,T,U,V,X,Y.
//! let mut g = UndirectedGraph::new(6);
//! for &(a, b) in &[(0, 4), (0, 5), (1, 2), (1, 3), (1, 4), (1, 5),
//!                  (2, 4), (2, 5), (3, 4), (3, 5)] {
//!     g.add_edge(a, b);
//! }
//! let cover = greedy_edge_clique_cover(&g);
//! // Every edge of the conflict graph is inside at least one clique.
//! for (a, b) in g.edges() {
//!     assert!(cover.iter().any(|c| c.contains(&a) && c.contains(&b)));
//! }
//! ```

mod bitset;
pub mod cliques;
pub mod cover;
pub mod dag;
pub mod matching;
pub mod naive;
mod undirected;

pub use bitset::{Bitset, Ones};
pub use undirected::UndirectedGraph;
