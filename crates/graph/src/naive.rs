//! Retained pre-bitset reference implementations.
//!
//! These are the original `Vec<usize>`-churning kernels that the
//! word-packed bitset implementations in [`crate::cliques`] and
//! [`crate::cover`] replaced. They are kept for two reasons:
//!
//! 1. **Property testing** — `tests/prop_graph.rs` checks the bitset
//!    kernels against these on random graphs (same maximal-clique sets,
//!    valid covers, same maximum-clique cardinality).
//! 2. **Benchmarking** — `dspcc-bench`'s `clique_cover` bench measures the
//!    bitset speedup against this baseline (the E8-style runtime
//!    comparison; see DESIGN.md).
//!
//! Do not use these on hot paths.

use crate::UndirectedGraph;

/// Reference Bron–Kerbosch with pivoting, carrying P/X as `Vec<usize>` and
/// allocating fresh candidate vectors at every recursion step.
pub fn naive_maximal_cliques(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut r = Vec::new();
    let p: Vec<usize> = (0..g.node_count()).collect();
    let x = Vec::new();
    bron_kerbosch(g, &mut r, p, x, &mut out);
    out
}

/// Reference maximum clique: materializes *all* maximal cliques and takes
/// the largest — the behaviour `cliques::maximum_clique` had before the
/// branch-and-bound rewrite.
pub fn naive_maximum_clique(g: &UndirectedGraph) -> Vec<usize> {
    naive_maximal_cliques(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// Reference greedy maximal extension by per-pair `has_edge` scans.
///
/// # Panics
///
/// Panics if `clique` is not a clique of `g`.
pub fn naive_extend_to_maximal(g: &UndirectedGraph, clique: &[usize]) -> Vec<usize> {
    assert!(g.is_clique(clique), "input must be a clique");
    let mut result: Vec<usize> = clique.to_vec();
    for v in 0..g.node_count() {
        if result.contains(&v) {
            continue;
        }
        if result.iter().all(|&u| g.has_edge(u, v)) {
            result.push(v);
        }
    }
    result.sort_unstable();
    result
}

/// Reference greedy edge clique cover: tracks covered edges in a second
/// graph and extends each uncovered edge with [`naive_extend_to_maximal`].
pub fn naive_greedy_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let mut cover: Vec<Vec<usize>> = Vec::new();
    let mut covered = UndirectedGraph::new(g.node_count());
    for (a, b) in g.edges() {
        if covered.has_edge(a, b) {
            continue;
        }
        let clique = naive_extend_to_maximal(g, &[a, b]);
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                covered.add_edge(u, v);
            }
        }
        cover.push(clique);
    }
    cover
}

fn bron_kerbosch(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            let mut clique = r.clone();
            clique.sort_unstable();
            out.push(clique);
        }
        return;
    }
    // Pivot on the vertex of P ∪ X with the most neighbours in P; only
    // vertices outside its neighbourhood need to be branched on.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| g.has_edge(u, v)).count())
        .expect("p or x nonempty");
    let candidates: Vec<usize> = p
        .iter()
        .copied()
        .filter(|&v| !g.has_edge(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let p_next: Vec<usize> = p.iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        let x_next: Vec<usize> = x.iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        bron_kerbosch(g, r, p_next, x_next, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::validate_cover;

    fn graph(n: usize, edges: &[(usize, usize)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn naive_cliques_on_triangle_plus_edge() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut cliques = naive_maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
        assert_eq!(naive_maximum_clique(&g), vec![0, 1, 2]);
    }

    #[test]
    fn naive_greedy_cover_is_valid() {
        let g = graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let cover = naive_greedy_edge_clique_cover(&g);
        validate_cover(&g, &cover).unwrap();
    }

    #[test]
    fn naive_extend_grows_edge() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert_eq!(naive_extend_to_maximal(&g, &[0, 1]), vec![0, 1, 2]);
        assert_eq!(naive_extend_to_maximal(&g, &[3]), vec![2, 3]);
    }
}
