//! Word-packed bitsets — the representation behind the hot combinatorial
//! kernels (adjacency rows, Bron–Kerbosch P/X sets, covered-edge masks).
//!
//! A [`Bitset`] stores membership of `0..capacity` in `⌈capacity/64⌉`
//! machine words, so set intersection, union, difference, and cardinality
//! run word-parallel: one AND/OR/ANDN plus a popcount per 64 elements.
//! All binary operations are also available against raw `&[u64]` slices so
//! that callers holding packed *rows* (e.g. [`crate::UndirectedGraph`]
//! adjacency, [`Bitset::words`] of another set) can combine them without
//! constructing temporaries.

use std::fmt;

/// Number of elements per storage word.
const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` values in `0..capacity`, packed 64 per
/// word.
///
/// # Example
///
/// ```
/// use dspcc_graph::Bitset;
///
/// let mut s = Bitset::new(100);
/// s.insert(3);
/// s.insert(97);
/// assert!(s.contains(3) && !s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitset {
    nbits: usize,
    words: Vec<u64>,
}

/// Words needed to store `nbits` bits.
pub(crate) fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

impl Bitset {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Bitset {
            nbits: capacity,
            words: vec![0; words_for(capacity)],
        }
    }

    /// The universe size this set ranges over.
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index out of range");
        let (w, b) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        let newly = self.words[w] & b == 0;
        self.words[w] |= b;
        newly
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.nbits {
            return false;
        }
        let (w, b) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// Whether `i` is a member (out-of-range values are never members).
    pub fn contains(&self, i: usize) -> bool {
        i < self.nbits && self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every element of the universe.
    pub fn insert_all(&mut self) {
        self.words.fill(!0);
        self.mask_tail();
    }

    /// Zeroes the bits beyond `capacity` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.nbits % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of members (one popcount per word).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Removes and returns the smallest member.
    pub fn take_first(&mut self) -> Option<usize> {
        let v = self.first()?;
        self.remove(v);
        Some(v)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones::new(&self.words)
    }

    /// Members collected into a sorted vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The backing words (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words. Callers must not set bits at or
    /// beyond `capacity`.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Overwrites this set with the contents of `words` (same universe).
    pub fn copy_from_words(&mut self, words: &[u64]) {
        debug_assert_eq!(words.len(), self.words.len());
        self.words.copy_from_slice(words);
    }

    /// `self ∩= other` against a raw packed row.
    pub fn intersect_words(&mut self, other: &[u64]) {
        for (a, &b) in self.words.iter_mut().zip(other) {
            *a &= b;
        }
    }

    /// `self ∪= other` against a raw packed row.
    pub fn union_words(&mut self, other: &[u64]) {
        for (a, &b) in self.words.iter_mut().zip(other) {
            *a |= b;
        }
    }

    /// `self ∖= other` against a raw packed row.
    pub fn difference_words(&mut self, other: &[u64]) {
        for (a, &b) in self.words.iter_mut().zip(other) {
            *a &= !b;
        }
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &Bitset) {
        self.intersect_words(&other.words);
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &Bitset) {
        self.union_words(&other.words);
    }

    /// Whether `self ∩ other` is nonempty, without materializing it.
    pub fn intersects_words(&self, other: &[u64]) -> bool {
        self.words.iter().zip(other).any(|(&a, &b)| a & b != 0)
    }

    /// `|self ∩ other|` in one fused AND + popcount pass.
    pub fn intersection_count_words(&self, other: &[u64]) -> usize {
        self.words
            .iter()
            .zip(other)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for Bitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitset{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the set bits of a packed word slice, ascending.
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Ones<'a> {
    /// Iterates the set bits of `words` (bit `i` of word `w` is element
    /// `w * 64 + i`).
    pub fn new(words: &'a [u64]) -> Self {
        Ones {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = Bitset::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(130) && !s.contains(10_000));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn insert_all_masks_tail() {
        let mut s = Bitset::new(70);
        s.insert_all();
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        let mut exact = Bitset::new(128);
        exact.insert_all();
        assert_eq!(exact.count(), 128);
    }

    #[test]
    fn iter_ascending_across_words() {
        let mut s = Bitset::new(200);
        for v in [199, 0, 63, 64, 65, 127, 128] {
            s.insert(v);
        }
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn word_parallel_ops() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for v in [1, 50, 80] {
            a.insert(v);
        }
        for v in [50, 80, 99] {
            b.insert(v);
        }
        assert_eq!(a.intersection_count_words(b.words()), 2);
        assert!(a.intersects_words(b.words()));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![50, 80]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 50, 80, 99]);
        let mut d = a.clone();
        d.difference_words(b.words());
        assert_eq!(d.to_vec(), vec![1]);
    }

    #[test]
    fn first_and_take_first() {
        let mut s = Bitset::new(128);
        assert_eq!(s.first(), None);
        s.insert(70);
        s.insert(90);
        assert_eq!(s.first(), Some(70));
        assert_eq!(s.take_first(), Some(70));
        assert_eq!(s.take_first(), Some(90));
        assert_eq!(s.take_first(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn zero_capacity() {
        let mut s = Bitset::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert!(!s.contains(0));
        s.insert_all();
        assert!(s.is_empty());
        assert_eq!(s.iter().next(), None);
    }

    #[test]
    fn debug_format() {
        let mut s = Bitset::new(10);
        s.insert(2);
        s.insert(7);
        assert_eq!(format!("{s:?}"), "Bitset{2, 7}");
    }
}
