//! Maximum bipartite matching (Hopcroft–Karp).
//!
//! Execution-interval analysis (paper section 8, ref. \[11\]: Timmer & Jess,
//! EDAC'95) prunes the exact scheduler by checking that the RTs competing
//! for a resource can be injectively assigned to the cycles still available
//! to them — a maximum-matching feasibility question on the bipartite graph
//! *RTs × cycles*. If the maximum matching is smaller than the number of
//! RTs, the partial schedule cannot be completed and the branch is cut.

/// A bipartite graph between `left_count` left nodes and `right_count`
/// right nodes, with adjacency stored on the left side.
///
/// # Example
///
/// ```
/// use dspcc_graph::matching::BipartiteGraph;
///
/// // Two RTs, two cycles; RT 0 can only go to cycle 0, RT 1 to both.
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// g.add_edge(1, 1);
/// assert_eq!(g.maximum_matching().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    left_count: usize,
    right_count: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        BipartiteGraph {
            left_count,
            right_count,
            adj: vec![Vec::new(); left_count],
        }
    }

    /// Number of left nodes.
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right nodes.
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Adds an edge between left node `l` and right node `r`.
    ///
    /// Parallel edges are tolerated (they cannot change the matching).
    ///
    /// # Panics
    ///
    /// Panics if `l` or `r` is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left_count, "left node out of range");
        assert!(r < self.right_count, "right node out of range");
        self.adj[l].push(r);
    }

    /// Neighbours of left node `l`.
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }

    /// Computes a maximum matching with Hopcroft–Karp in
    /// O(E · √V). Returns `(left, right)` pairs.
    pub fn maximum_matching(&self) -> Vec<(usize, usize)> {
        const NIL: usize = usize::MAX;
        let n = self.left_count;
        let mut match_l = vec![NIL; n];
        let mut match_r = vec![NIL; self.right_count];
        let mut dist = vec![0usize; n];

        loop {
            // BFS phase: layer free left vertices.
            let mut queue = std::collections::VecDeque::new();
            let mut found_augmenting = false;
            for l in 0..n {
                if match_l[l] == NIL {
                    dist[l] = 0;
                    queue.push_back(l);
                } else {
                    dist[l] = usize::MAX;
                }
            }
            while let Some(l) = queue.pop_front() {
                for &r in &self.adj[l] {
                    let next = match_r[r];
                    if next == NIL {
                        found_augmenting = true;
                    } else if dist[next] == usize::MAX {
                        dist[next] = dist[l] + 1;
                        queue.push_back(next);
                    }
                }
            }
            if !found_augmenting {
                break;
            }
            // DFS phase: find vertex-disjoint shortest augmenting paths.
            fn dfs(
                l: usize,
                adj: &[Vec<usize>],
                match_l: &mut [usize],
                match_r: &mut [usize],
                dist: &mut [usize],
            ) -> bool {
                for i in 0..adj[l].len() {
                    let r = adj[l][i];
                    let next = match_r[r];
                    let ok = if next == NIL {
                        true
                    } else if dist[next] == dist[l] + 1 {
                        dfs(next, adj, match_l, match_r, dist)
                    } else {
                        false
                    };
                    if ok {
                        match_l[l] = r;
                        match_r[r] = l;
                        return true;
                    }
                }
                dist[l] = usize::MAX;
                false
            }
            for l in 0..n {
                if match_l[l] == NIL {
                    dfs(l, &self.adj, &mut match_l, &mut match_r, &mut dist);
                }
            }
        }

        (0..n)
            .filter(|&l| match_l[l] != NIL)
            .map(|l| (l, match_l[l]))
            .collect()
    }

    /// Returns whether a *perfect matching on the left side* exists, i.e.
    /// every left node can be matched simultaneously.
    ///
    /// This is the feasibility test of execution-interval analysis: left
    /// nodes are the RTs bound to one resource, right nodes the cycles of
    /// the budget, edges the execution intervals.
    pub fn has_left_perfect_matching(&self) -> bool {
        self.maximum_matching().len() == self.left_count
    }
}

/// Brute-force maximum matching by recursive augmentation (Kuhn's
/// algorithm), used as a differential-testing oracle for Hopcroft–Karp.
pub fn maximum_matching_kuhn(g: &BipartiteGraph) -> usize {
    const NIL: usize = usize::MAX;
    let mut match_r = vec![NIL; g.right_count()];

    fn try_kuhn(l: usize, g: &BipartiteGraph, visited: &mut [bool], match_r: &mut [usize]) -> bool {
        for &r in g.neighbors(l) {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            if match_r[r] == usize::MAX || try_kuhn(match_r[r], g, visited, match_r) {
                match_r[r] = l;
                return true;
            }
        }
        false
    }

    let mut size = 0;
    for l in 0..g.left_count() {
        let mut visited = vec![false; g.right_count()];
        if try_kuhn(l, g, &mut visited, &mut match_r) {
            size += 1;
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteGraph::new(0, 0);
        assert!(g.maximum_matching().is_empty());
        assert!(g.has_left_perfect_matching());
    }

    #[test]
    fn no_edges_means_no_matching() {
        let g = BipartiteGraph::new(3, 3);
        assert!(g.maximum_matching().is_empty());
        assert!(!g.has_left_perfect_matching());
    }

    #[test]
    fn simple_perfect_matching() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        let m = g.maximum_matching();
        assert_eq!(m.len(), 2);
        assert!(g.has_left_perfect_matching());
    }

    #[test]
    fn augmenting_path_is_found() {
        // Greedy would match 0-0 and leave 1 unmatched; augmenting fixes it.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.maximum_matching().len(), 2);
    }

    #[test]
    fn matching_is_a_valid_matching() {
        let mut g = BipartiteGraph::new(4, 4);
        for (l, r) in [(0, 1), (0, 2), (1, 0), (1, 3), (2, 1), (3, 2), (3, 3)] {
            g.add_edge(l, r);
        }
        let m = g.maximum_matching();
        let mut ls: Vec<_> = m.iter().map(|&(l, _)| l).collect();
        let mut rs: Vec<_> = m.iter().map(|&(_, r)| r).collect();
        ls.sort_unstable();
        ls.dedup();
        rs.sort_unstable();
        rs.dedup();
        assert_eq!(ls.len(), m.len(), "left node matched twice");
        assert_eq!(rs.len(), m.len(), "right node matched twice");
        for &(l, r) in &m {
            assert!(g.neighbors(l).contains(&r), "matched pair is not an edge");
        }
    }

    #[test]
    fn infeasible_interval_set_detected() {
        // Three RTs all restricted to the same two cycles: no injective
        // assignment exists (pigeonhole) — the scheduler must backtrack.
        let mut g = BipartiteGraph::new(3, 2);
        for l in 0..3 {
            g.add_edge(l, 0);
            g.add_edge(l, 1);
        }
        assert_eq!(g.maximum_matching().len(), 2);
        assert!(!g.has_left_perfect_matching());
    }

    #[test]
    fn hopcroft_karp_matches_kuhn_on_fixed_cases() {
        type Case = (usize, usize, Vec<(usize, usize)>);
        let cases: Vec<Case> = vec![
            (3, 3, vec![(0, 0), (1, 0), (2, 0)]),
            (3, 4, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3)]),
            (5, 2, vec![(0, 0), (1, 1), (2, 0), (3, 1), (4, 0)]),
        ];
        for (ln, rn, edges) in cases {
            let mut g = BipartiteGraph::new(ln, rn);
            for (l, r) in edges {
                g.add_edge(l, r);
            }
            assert_eq!(g.maximum_matching().len(), maximum_matching_kuhn(&g));
        }
    }

    #[test]
    #[should_panic(expected = "left node out of range")]
    fn add_edge_checks_left_range() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "right node out of range")]
    fn add_edge_checks_right_range() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 1);
    }
}
