//! A small dense undirected graph over node indices `0..n`.
//!
//! Conflict graphs in instruction-set modelling have one node per *RT class*
//! (paper section 6.3); real instruction sets have tens of classes, so a
//! dense adjacency-matrix representation is both the simplest and the
//! fastest choice.

use std::fmt;

/// An undirected graph on nodes `0..n` without self loops or parallel edges.
///
/// Nodes are plain `usize` indices; callers that need labelled nodes (such
/// as RT classes) keep their own side table. The representation is a dense
/// adjacency matrix plus adjacency lists, so edge queries are O(1) and
/// neighbourhood iteration is O(degree).
///
/// # Example
///
/// ```
/// use dspcc_graph::UndirectedGraph;
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(0, 1);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone)]
pub struct UndirectedGraph {
    n: usize,
    adj_matrix: Vec<bool>,
    adj_lists: Vec<Vec<usize>>,
    edge_count: usize,
}

impl UndirectedGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            n,
            adj_matrix: vec![false; n * n],
            adj_lists: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `{a, b}`. Returns `true` if the edge was new.
    ///
    /// Self loops are ignored (an RT class never conflicts with itself: two
    /// RTs of the same class still conflict through their shared physical
    /// OPU resource, so the ISA never needs a self conflict).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "node index out of range");
        if a == b || self.adj_matrix[a * self.n + b] {
            return false;
        }
        self.adj_matrix[a * self.n + b] = true;
        self.adj_matrix[b * self.n + a] = true;
        self.adj_lists[a].push(b);
        self.adj_lists[b].push(a);
        self.edge_count += 1;
        true
    }

    /// Removes the undirected edge `{a, b}` if present; returns whether it
    /// was present.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n || a == b || !self.adj_matrix[a * self.n + b] {
            return false;
        }
        self.adj_matrix[a * self.n + b] = false;
        self.adj_matrix[b * self.n + a] = false;
        self.adj_lists[a].retain(|&x| x != b);
        self.adj_lists[b].retain(|&x| x != a);
        self.edge_count -= 1;
        true
    }

    /// Returns whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.adj_matrix[a * self.n + b]
    }

    /// Degree of node `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn degree(&self, a: usize) -> usize {
        self.adj_lists[a].len()
    }

    /// Neighbours of node `a` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: usize) -> &[usize] {
        &self.adj_lists[a]
    }

    /// Iterates over all edges as `(low, high)` pairs with `low < high`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| {
            self.adj_lists[a]
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Returns whether `nodes` induces a clique (every pair adjacent).
    ///
    /// The empty set and singletons are cliques.
    pub fn is_clique(&self, nodes: &[usize]) -> bool {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the complement graph (same nodes, complemented edge set).
    ///
    /// The *compatibility graph* of an instruction set is the complement of
    /// its conflict graph; allowed instruction types are exactly its cliques.
    pub fn complement(&self) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(self.n);
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if !self.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }
}

impl PartialEq for UndirectedGraph {
    /// Two graphs are equal when they have the same node count and edge
    /// set; adjacency-list insertion order is irrelevant.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.adj_matrix == other.adj_matrix
    }
}

impl Eq for UndirectedGraph {}

impl fmt::Debug for UndirectedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UndirectedGraph(n={}, edges=[", self.n)?;
        for (i, (a, b)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_empty() {
        let g = UndirectedGraph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_is_symmetric() {
        let mut g = UndirectedGraph::new(3);
        assert!(g.add_edge(0, 2));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn duplicate_edge_not_counted() {
        let mut g = UndirectedGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loop_is_ignored() {
        let mut g = UndirectedGraph::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.remove_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn edges_enumerates_each_once() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        g.add_edge(3, 0);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        assert!(g.is_clique(&[]));
        assert!(g.is_clique(&[3]));
        assert!(g.is_clique(&[0, 1]));
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
    }

    #[test]
    fn complement_inverts_edges() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        let c = g.complement();
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert!(c.has_edge(1, 2));
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn complement_twice_is_identity() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 4);
        g.add_edge(3, 1);
        let cc = g.complement().complement();
        assert_eq!(cc, g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(0, 2);
    }
}
