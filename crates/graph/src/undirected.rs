//! A small dense undirected graph over node indices `0..n`.
//!
//! Conflict graphs in instruction-set modelling have one node per *RT class*
//! (paper section 6.3); real instruction sets have tens of classes, so a
//! dense representation is both the simplest and the fastest choice. Since
//! the bitset rewrite, adjacency is stored as **word-packed rows**: row `a`
//! is a bitset over `0..n` whose bit `b` is set iff `{a, b}` is an edge.
//! The clique and cover kernels intersect these rows word-parallel
//! (64 adjacency tests per AND), which is what makes Bron–Kerbosch and the
//! greedy cover fast on graphs with hundreds of nodes.

use std::fmt;

use crate::bitset::{words_for, Ones};

/// An undirected graph on nodes `0..n` without self loops or parallel edges.
///
/// Nodes are plain `usize` indices; callers that need labelled nodes (such
/// as RT classes) keep their own side table. The representation is packed
/// adjacency rows plus cached adjacency lists, so edge queries are O(1),
/// neighbourhood iteration is O(degree), and whole-neighbourhood
/// intersection ([`UndirectedGraph::neighbors_mask`]) is O(n/64).
///
/// # Example
///
/// ```
/// use dspcc_graph::UndirectedGraph;
///
/// let mut g = UndirectedGraph::new(3);
/// g.add_edge(0, 1);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone)]
pub struct UndirectedGraph {
    n: usize,
    /// Words per adjacency row.
    stride: usize,
    /// `n * stride` words; bit `b` of row `a` set iff edge `{a, b}`.
    adj: Vec<u64>,
    /// Cached neighbour lists in insertion order (the `neighbors()` API).
    adj_lists: Vec<Vec<usize>>,
    edge_count: usize,
}

impl UndirectedGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        let stride = words_for(n);
        UndirectedGraph {
            n,
            stride,
            adj: vec![0; n * stride],
            adj_lists: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of `u64` words per packed adjacency row.
    pub fn words_per_row(&self) -> usize {
        self.stride
    }

    /// The packed adjacency row of node `a`: bit `b` is set iff `{a, b}` is
    /// an edge. Suitable for word-parallel intersection with
    /// [`crate::Bitset`] values over the same node universe.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors_mask(&self, a: usize) -> &[u64] {
        assert!(a < self.n, "node index out of range");
        &self.adj[a * self.stride..(a + 1) * self.stride]
    }

    #[inline]
    fn bit(&self, a: usize, b: usize) -> bool {
        self.adj[a * self.stride + b / 64] & (1 << (b % 64)) != 0
    }

    #[inline]
    fn set_bit(&mut self, a: usize, b: usize) {
        self.adj[a * self.stride + b / 64] |= 1 << (b % 64);
    }

    #[inline]
    fn clear_bit(&mut self, a: usize, b: usize) {
        self.adj[a * self.stride + b / 64] &= !(1 << (b % 64));
    }

    /// Adds the undirected edge `{a, b}`. Returns `true` if the edge was new.
    ///
    /// Self loops are ignored (an RT class never conflicts with itself: two
    /// RTs of the same class still conflict through their shared physical
    /// OPU resource, so the ISA never needs a self conflict).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "node index out of range");
        if a == b || self.bit(a, b) {
            return false;
        }
        self.set_bit(a, b);
        self.set_bit(b, a);
        self.adj_lists[a].push(b);
        self.adj_lists[b].push(a);
        self.edge_count += 1;
        true
    }

    /// Removes the undirected edge `{a, b}` if present; returns whether it
    /// was present.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n || a == b || !self.bit(a, b) {
            return false;
        }
        self.clear_bit(a, b);
        self.clear_bit(b, a);
        self.adj_lists[a].retain(|&x| x != b);
        self.adj_lists[b].retain(|&x| x != a);
        self.edge_count -= 1;
        true
    }

    /// Returns whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.bit(a, b)
    }

    /// Degree of node `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn degree(&self, a: usize) -> usize {
        self.adj_lists[a].len()
    }

    /// Neighbours of node `a` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: usize) -> &[usize] {
        &self.adj_lists[a]
    }

    /// Iterates over all edges as `(low, high)` pairs with `low < high`,
    /// ascending by `low` then `high` (packed-row bit order).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| {
            Ones::new(self.neighbors_mask(a))
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Returns whether `nodes` induces a clique (every pair adjacent).
    ///
    /// The empty set and singletons are cliques.
    pub fn is_clique(&self, nodes: &[usize]) -> bool {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the complement graph (same nodes, complemented edge set).
    ///
    /// The *compatibility graph* of an instruction set is the complement of
    /// its conflict graph; allowed instruction types are exactly its cliques.
    pub fn complement(&self) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(self.n);
        for a in 0..self.n {
            // Complement the row word-parallel, clear the diagonal bit,
            // then rebuild the derived state from the set bits.
            let (row, src) = (a * self.stride, a * self.stride);
            for w in 0..self.stride {
                g.adj[row + w] = !self.adj[src + w];
            }
            let tail = self.n % 64;
            if tail != 0 {
                g.adj[row + self.stride - 1] &= (1u64 << tail) - 1;
            }
            g.adj[row + a / 64] &= !(1 << (a % 64));
            g.adj_lists[a] = Ones::new(&g.adj[row..row + self.stride]).collect();
        }
        g.edge_count = self.n * self.n.saturating_sub(1) / 2 - self.edge_count;
        g
    }
}

impl PartialEq for UndirectedGraph {
    /// Two graphs are equal when they have the same node count and edge
    /// set; adjacency-list insertion order is irrelevant.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.adj == other.adj
    }
}

impl Eq for UndirectedGraph {}

impl fmt::Debug for UndirectedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UndirectedGraph(n={}, edges=[", self.n)?;
        for (i, (a, b)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_empty() {
        let g = UndirectedGraph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_is_symmetric() {
        let mut g = UndirectedGraph::new(3);
        assert!(g.add_edge(0, 2));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn duplicate_edge_not_counted() {
        let mut g = UndirectedGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loop_is_ignored() {
        let mut g = UndirectedGraph::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.remove_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn edges_enumerates_each_once() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        g.add_edge(3, 0);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        assert!(g.is_clique(&[]));
        assert!(g.is_clique(&[3]));
        assert!(g.is_clique(&[0, 1]));
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
    }

    #[test]
    fn complement_inverts_edges() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        let c = g.complement();
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert!(c.has_edge(1, 2));
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn complement_twice_is_identity() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 4);
        g.add_edge(3, 1);
        let cc = g.complement().complement();
        assert_eq!(cc, g);
    }

    #[test]
    fn complement_rebuilds_lists_and_degrees() {
        let mut g = UndirectedGraph::new(66);
        g.add_edge(0, 65);
        let c = g.complement();
        assert_eq!(c.degree(0), 64);
        assert!(!c.neighbors(0).contains(&65));
        assert!(!c.neighbors(0).contains(&0));
        assert_eq!(c.edge_count(), 66 * 65 / 2 - 1);
    }

    #[test]
    fn mask_matches_has_edge_across_words() {
        let mut g = UndirectedGraph::new(130);
        g.add_edge(0, 64);
        g.add_edge(0, 129);
        g.add_edge(128, 129);
        for a in [0usize, 64, 128, 129] {
            let mask = g.neighbors_mask(a);
            for b in 0..130 {
                let in_mask = mask[b / 64] & (1 << (b % 64)) != 0;
                assert_eq!(in_mask, g.has_edge(a, b), "row {a} bit {b}");
            }
        }
        assert_eq!(g.words_per_row(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(0, 2);
    }
}
