//! Maximal clique enumeration (Bron–Kerbosch with pivoting).
//!
//! The paper covers the edges of the instruction-set conflict graph with
//! cliques and prefers *maximal* cliques because every clique becomes one
//! artificial scheduler resource: fewer, larger cliques mean fewer conflict
//! checks at schedule time (section 6.3: "any clique cover will lead to a
//! valid schedule. The only motivation to look for a maximal clique cover is
//! to minimize the run time of the scheduler").

use crate::UndirectedGraph;

/// Enumerates all maximal cliques of `g`.
///
/// Uses Bron–Kerbosch with greedy pivoting. Each returned clique is sorted
/// ascending. Isolated nodes are returned as singleton cliques; the empty
/// graph on zero nodes yields no cliques.
///
/// # Example
///
/// ```
/// use dspcc_graph::{UndirectedGraph, cliques::maximal_cliques};
///
/// let mut g = UndirectedGraph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(0, 2);
/// g.add_edge(2, 3);
/// let mut cliques = maximal_cliques(&g);
/// cliques.sort();
/// assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
/// ```
pub fn maximal_cliques(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut r = Vec::new();
    let p: Vec<usize> = (0..g.node_count()).collect();
    let x = Vec::new();
    bron_kerbosch(g, &mut r, p, x, &mut out);
    out
}

/// Finds one maximum-cardinality clique of `g` (largest maximal clique).
///
/// Returns an empty vector for a graph with zero nodes.
pub fn maximum_clique(g: &UndirectedGraph) -> Vec<usize> {
    maximal_cliques(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// Extends `clique` to a maximal clique of `g` by greedily absorbing
/// compatible nodes in index order.
///
/// # Panics
///
/// Panics if `clique` is not a clique of `g`.
pub fn extend_to_maximal(g: &UndirectedGraph, clique: &[usize]) -> Vec<usize> {
    assert!(g.is_clique(clique), "input must be a clique");
    let mut result: Vec<usize> = clique.to_vec();
    for v in 0..g.node_count() {
        if result.contains(&v) {
            continue;
        }
        if result.iter().all(|&u| g.has_edge(u, v)) {
            result.push(v);
        }
    }
    result.sort_unstable();
    result
}

fn bron_kerbosch(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            let mut clique = r.clone();
            clique.sort_unstable();
            out.push(clique);
        }
        return;
    }
    // Pivot on the vertex of P ∪ X with the most neighbours in P; only
    // vertices outside its neighbourhood need to be branched on.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| g.has_edge(u, v)).count())
        .expect("p or x nonempty");
    let candidates: Vec<usize> = p
        .iter()
        .copied()
        .filter(|&v| !g.has_edge(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let p_next: Vec<usize> = p.iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        let x_next: Vec<usize> = x.iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        bron_kerbosch(g, r, p_next, x_next, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = UndirectedGraph::new(0);
        assert!(maximal_cliques(&g).is_empty());
        assert!(maximum_clique(&g).is_empty());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = UndirectedGraph::new(3);
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn triangle_is_single_maximal_clique() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(maximal_cliques(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn path_has_edge_cliques() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn paper_conflict_graph_maximal_cliques() {
        // Conflict graph of instruction set I (paper figure 6):
        // nodes S=0,T=1,U=2,V=3,X=4,Y=5.
        let g = graph(
            6,
            &[
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
            ],
        );
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        // The paper's cover uses the maximal cliques {T,U,Y} and {T,V,X};
        // both must be found here ({1,2,5} and {1,3,4}).
        assert!(cliques.contains(&vec![1, 2, 5]));
        assert!(cliques.contains(&vec![1, 3, 4]));
        for c in &cliques {
            assert!(g.is_clique(c));
        }
    }

    #[test]
    fn maximum_clique_of_k4_plus_pendant() {
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        assert_eq!(maximum_clique(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn extend_to_maximal_grows_edge() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert_eq!(extend_to_maximal(&g, &[0, 1]), vec![0, 1, 2]);
        assert_eq!(extend_to_maximal(&g, &[3]), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "must be a clique")]
    fn extend_to_maximal_rejects_non_clique() {
        let g = graph(3, &[(0, 1)]);
        extend_to_maximal(&g, &[0, 2]);
    }

    #[test]
    fn every_maximal_clique_is_maximal() {
        let g = graph(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2), (3, 5)],
        );
        for c in maximal_cliques(&g) {
            assert!(g.is_clique(&c));
            // No vertex outside c is adjacent to all of c.
            for v in 0..g.node_count() {
                if !c.contains(&v) {
                    assert!(
                        !c.iter().all(|&u| g.has_edge(u, v)),
                        "clique {c:?} not maximal, can add {v}"
                    );
                }
            }
        }
    }
}
